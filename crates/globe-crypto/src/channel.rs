//! [`SecureChannels`]: a per-connection table of gTLS sessions.
//!
//! Every GDN daemon that speaks gTLS over stream connections (object
//! servers, HTTPDs, the Naming Authority, moderator tools) keeps one
//! `SecureChannels` and routes stream events through it. The table maps
//! opaque connection ids (the transport's `ConnId` values) to
//! [`TlsSession`] state machines and aggregates their virtual CPU cost.

use std::collections::BTreeMap;

use globe_sim::{Rng, SimDuration};

use crate::cert::Certificate;
use crate::gtls::{SessionStats, TlsConfig, TlsError, TlsOutput, TlsSession};

/// A table of gTLS sessions keyed by connection id.
///
/// # Examples
///
/// ```
/// use globe_crypto::cert::{CertAuthority, Credentials, Role};
/// use globe_crypto::channel::SecureChannels;
/// use globe_crypto::gtls::{Mode, TlsConfig, TlsEvent};
/// use globe_sim::Rng;
///
/// let ca = CertAuthority::new("gdn-root", 1);
/// let creds = Credentials::issue(&ca, "gos-1", Role::Host, 2);
/// let roots = vec![ca.root_cert().clone()];
///
/// let mut rng = Rng::new(3);
/// let mut client_side = SecureChannels::new();
/// let mut server_side = SecureChannels::new();
///
/// // Connection id 7 exists on both sides (assigned by the transport).
/// let (hello, _cost) = client_side
///     .open_client(7, TlsConfig::client(Mode::AuthOnly, roots.clone()), &mut rng)
///     .unwrap();
/// server_side.accept(7, TlsConfig::server_auth(Mode::AuthOnly, creds, roots));
/// let (out, _cost) = server_side.on_message(7, &hello, &mut rng).unwrap();
/// let (out, _cost) = client_side.on_message(7, &out.replies[0], &mut rng).unwrap();
/// assert!(matches!(out.events[0], TlsEvent::Established { .. }));
/// ```
#[derive(Default)]
pub struct SecureChannels {
    sessions: BTreeMap<u64, TlsSession>,
}

impl SecureChannels {
    /// Creates an empty table.
    pub fn new() -> Self {
        SecureChannels::default()
    }

    /// Starts a client handshake on connection `id`; returns the
    /// ClientHello to transmit and the virtual CPU cost to charge.
    pub fn open_client(
        &mut self,
        id: u64,
        config: TlsConfig,
        rng: &mut Rng,
    ) -> Result<(Vec<u8>, SimDuration), TlsError> {
        let (mut session, hello) = TlsSession::client(config, rng)?;
        let cost = session.take_cost();
        self.sessions.insert(id, session);
        Ok((hello, cost))
    }

    /// Registers a server-side session for an incoming connection.
    pub fn accept(&mut self, id: u64, config: TlsConfig) {
        self.sessions.insert(id, TlsSession::server(config));
    }

    /// Feeds an inbound transport message to the session on `id`.
    ///
    /// Returns the session's events/replies and the CPU cost to charge
    /// before transmitting those replies.
    pub fn on_message(
        &mut self,
        id: u64,
        msg: &[u8],
        rng: &mut Rng,
    ) -> Result<(TlsOutput, SimDuration), TlsError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(TlsError::BadState("unknown connection"))?;
        let out = session.on_message(msg, rng)?;
        let cost = session.take_cost();
        Ok((out, cost))
    }

    /// Protects an application message for the session on `id`.
    pub fn seal(&mut self, id: u64, plaintext: &[u8]) -> Result<(Vec<u8>, SimDuration), TlsError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(TlsError::BadState("unknown connection"))?;
        let rec = session.seal(plaintext)?;
        let cost = session.take_cost();
        Ok((rec, cost))
    }

    /// Whether the session on `id` has completed its handshake.
    pub fn established(&self, id: u64) -> bool {
        self.sessions
            .get(&id)
            .map(|s| s.established())
            .unwrap_or(false)
    }

    /// The authenticated peer certificate on `id`, if any.
    pub fn peer(&self, id: u64) -> Option<&Certificate> {
        self.sessions.get(&id).and_then(|s| s.peer_identity())
    }

    /// Drops the session for a closed connection.
    pub fn remove(&mut self, id: u64) {
        self.sessions.remove(&id);
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Aggregated statistics over all live sessions.
    pub fn stats_total(&self) -> SessionStats {
        let mut total = SessionStats::default();
        for s in self.sessions.values() {
            let st = s.stats();
            total.bytes_maced += st.bytes_maced;
            total.bytes_encrypted += st.bytes_encrypted;
            total.records_sealed += st.records_sealed;
            total.records_opened += st.records_opened;
            total.handshake_msgs += st.handshake_msgs;
            total.cpu_ns += st.cpu_ns;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertAuthority, Credentials, Role};
    use crate::gtls::{Mode, TlsEvent};

    fn rig() -> (SecureChannels, SecureChannels, TlsConfig, TlsConfig) {
        let ca = CertAuthority::new("gdn-root", 1);
        let creds = Credentials::issue(&ca, "gos-1", Role::Host, 2);
        let roots = vec![ca.root_cert().clone()];
        (
            SecureChannels::new(),
            SecureChannels::new(),
            TlsConfig::client(Mode::AuthOnly, roots.clone()),
            TlsConfig::server_auth(Mode::AuthOnly, creds, roots),
        )
    }

    #[test]
    fn full_exchange_through_tables() {
        let (mut c, mut s, ccfg, scfg) = rig();
        let mut rng = Rng::new(5);
        let (hello, _) = c.open_client(1, ccfg, &mut rng).unwrap();
        s.accept(1, scfg);
        let (out, _) = s.on_message(1, &hello, &mut rng).unwrap();
        let (out, _) = c.on_message(1, &out.replies[0], &mut rng).unwrap();
        assert!(matches!(out.events[0], TlsEvent::Established { .. }));
        // Server requested (but did not require) a client certificate;
        // deliver the anonymous ClientFinish.
        let (sout, _) = s.on_message(1, &out.replies[0], &mut rng).unwrap();
        assert!(matches!(
            sout.events[0],
            TlsEvent::Established { peer: None }
        ));
        assert!(c.established(1));
        assert!(s.established(1));
        assert_eq!(c.peer(1).unwrap().subject, "gos-1");
        assert!(s.peer(1).is_none());

        let (rec, _) = c.seal(1, b"ping").unwrap();
        let (out, _) = s.on_message(1, &rec, &mut rng).unwrap();
        assert_eq!(out.events, vec![TlsEvent::Data(b"ping".to_vec())]);

        assert_eq!(c.len(), 1);
        c.remove(1);
        assert!(c.is_empty());
        assert!(!c.established(1));
    }

    #[test]
    fn unknown_connection_errors() {
        let (mut c, _, _, _) = rig();
        let mut rng = Rng::new(5);
        assert!(c.on_message(99, b"x", &mut rng).is_err());
        assert!(c.seal(99, b"x").is_err());
        assert!(c.peer(99).is_none());
    }

    #[test]
    fn independent_sessions_per_connection() {
        let (mut c, mut s, ccfg, scfg) = rig();
        let mut rng = Rng::new(5);
        for id in [10u64, 20] {
            let (hello, _) = c.open_client(id, ccfg.clone(), &mut rng).unwrap();
            s.accept(id, scfg.clone());
            let (out, _) = s.on_message(id, &hello, &mut rng).unwrap();
            let _ = c.on_message(id, &out.replies[0], &mut rng).unwrap();
        }
        // Sequence numbers are per-session: both start at 0 and a record
        // from one session cannot be replayed into the other.
        let (rec10, _) = c.seal(10, b"a").unwrap();
        let err = s.on_message(20, &rec10, &mut rng);
        // Either a MAC failure (different keys) — never silent acceptance.
        assert!(err.is_err());
        let stats = s.stats_total();
        assert_eq!(stats.records_opened, 0);
    }
}
