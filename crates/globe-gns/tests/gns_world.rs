//! End-to-end Globe Name Service tests: a moderator registers package
//! names through the Naming Authority (two-way gTLS, role-checked,
//! TSIG-signed DNS UPDATE, primary→secondary replication), after which
//! clients anywhere resolve `/apps/...` names to object identifiers via
//! their site's caching resolver.

use globe_crypto::cert::{CertAuthority, Credentials, Role};
use globe_crypto::gtls::{Mode, TlsConfig};
use globe_gls::ObjectId;
use globe_gns::{
    AuthServer, GnsClient, GnsConfig, GnsDeployment, GnsError, GnsEvent, NaClient, NaEvent,
    Resolver,
};
use globe_net::{
    impl_service_any, ports, ConnEvent, ConnId, Endpoint, HostId, NetParams, Service, ServiceCtx,
    Topology, World,
};
use globe_sim::{SimDuration, SimTime};

const SEED: u64 = 2024;

/// Moderator tool driver: sends a script of add/remove requests.
struct ModeratorTool {
    na: NaClient,
    script: Vec<(String, Option<ObjectId>)>,
    cursor: usize,
    pub results: Vec<NaEvent>,
}

impl ModeratorTool {
    fn new(na: NaClient, script: Vec<(String, Option<ObjectId>)>) -> Self {
        ModeratorTool {
            na,
            script,
            cursor: 0,
            results: Vec::new(),
        }
    }

    fn kick(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.cursor >= self.script.len() {
            return;
        }
        let (name, oid) = self.script[self.cursor].clone();
        let token = self.cursor as u64;
        match oid {
            Some(oid) => self.na.add(ctx, &name, oid, token),
            None => self.na.remove(ctx, &name, token),
        }
        self.cursor += 1;
    }
}

impl Service for ModeratorTool {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.kick(ctx);
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        if self.na.handle_conn_event(ctx, conn, &ev) {
            let events = self.na.take_events();
            let progressed = !events.is_empty();
            self.results.extend(events);
            if progressed {
                self.kick(ctx);
            }
        }
    }
    impl_service_any!();
}

/// Name-resolution driver embedding a `GnsClient`.
struct ResolveDriver {
    gns: GnsClient,
    names: Vec<String>,
    cursor: usize,
    pub results: Vec<GnsEvent>,
}

impl ResolveDriver {
    fn kick(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.cursor >= self.names.len() {
            return;
        }
        let name = self.names[self.cursor].clone();
        self.gns.resolve(ctx, &name, self.cursor as u64);
        self.cursor += 1;
        // Synchronously failed resolutions (bad names) complete without
        // any network traffic; drain and continue.
        let evs = self.gns.take_events();
        if !evs.is_empty() {
            self.results.extend(evs);
            self.kick(ctx);
        }
    }
}

impl Service for ResolveDriver {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.kick(ctx);
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.gns.handle_datagram(ctx, from, &payload) {
            let evs = self.gns.take_events();
            let progressed = !evs.is_empty();
            self.results.extend(evs);
            if progressed {
                self.kick(ctx);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.gns.handle_timer(ctx, token) {
            let evs = self.gns.take_events();
            let progressed = !evs.is_empty();
            self.results.extend(evs);
            if progressed {
                self.kick(ctx);
            }
        }
    }
    impl_service_any!();
}

struct Rig {
    world: World,
    deploy: GnsDeployment,
    ca: CertAuthority,
}

fn rig(cfg: GnsConfig) -> Rig {
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), SEED);
    let ca = CertAuthority::new("gdn-root", SEED);
    let deploy = GnsDeployment::plan(world.topology(), &cfg);
    deploy.install(&mut world, &ca, &cfg, SEED);
    Rig { world, deploy, ca }
}

fn moderator_tls(ca: &CertAuthority, role: Role, seed: u64) -> TlsConfig {
    let creds = Credentials::issue(ca, "modtool:alice", role, seed);
    TlsConfig::mutual(Mode::AuthEncrypt, creds, vec![ca.root_cert().clone()])
}

fn add_moderator(rig: &mut Rig, host: HostId, role: Role, script: Vec<(String, Option<ObjectId>)>) {
    let tls = moderator_tls(&rig.ca, role, 777);
    let na = NaClient::new(rig.deploy.naming_authority, tls);
    rig.world
        .add_service(host, ports::DRIVER, ModeratorTool::new(na, script));
}

fn add_resolver_driver(rig: &mut Rig, host: HostId, port: u16, names: Vec<String>) {
    let gns = GnsClient::new(&rig.deploy, rig.world.topology(), host, 2);
    rig.world.add_service(
        host,
        port,
        ResolveDriver {
            gns,
            names,
            cursor: 0,
            results: Vec::new(),
        },
    );
}

#[test]
fn register_and_resolve_worldwide() {
    let mut r = rig(GnsConfig {
        batch_interval: SimDuration::from_secs(1),
        ..GnsConfig::default()
    });
    let oid = ObjectId(0x6111);
    add_moderator(
        &mut r,
        HostId(1),
        Role::Moderator,
        vec![("/apps/graphics/gimp".into(), Some(oid))],
    );
    r.world.start();
    r.world.run_for(SimDuration::from_secs(10));

    // Moderator got an ack.
    let m = r
        .world
        .service::<ModeratorTool>(HostId(1), ports::DRIVER)
        .unwrap();
    assert_eq!(
        m.results,
        vec![NaEvent::Done {
            token: 0,
            result: Ok(())
        }]
    );

    // A client in the *other region* resolves the name.
    add_resolver_driver(
        &mut r,
        HostId(13),
        ports::DRIVER,
        vec!["/apps/graphics/gimp".into()],
    );
    r.world.run_for(SimDuration::from_secs(20));
    let d = r
        .world
        .service::<ResolveDriver>(HostId(13), ports::DRIVER)
        .unwrap();
    assert_eq!(d.results.len(), 1);
    match &d.results[0] {
        GnsEvent::Resolved { result, .. } => assert_eq!(result.as_ref().unwrap(), &oid),
    }
}

#[test]
fn unknown_and_invalid_names_fail_cleanly() {
    let mut r = rig(GnsConfig::default());
    add_resolver_driver(
        &mut r,
        HostId(5),
        ports::DRIVER,
        vec![
            "/apps/없는".into(),
            "/apps/nothere".into(),
            "noslash".into(),
        ],
    );
    r.world.start();
    r.world.run_until(SimTime::from_secs(60));
    let d = r
        .world
        .service::<ResolveDriver>(HostId(5), ports::DRIVER)
        .unwrap();
    assert_eq!(d.results.len(), 3, "{:?}", d.results);
    assert!(matches!(
        &d.results[0],
        GnsEvent::Resolved {
            result: Err(GnsError::Name(_)),
            ..
        }
    ));
    assert!(matches!(
        &d.results[1],
        GnsEvent::Resolved {
            result: Err(GnsError::Dns(_)),
            ..
        }
    ));
    assert!(matches!(
        &d.results[2],
        GnsEvent::Resolved {
            result: Err(GnsError::Name(_)),
            ..
        }
    ));
}

#[test]
fn non_moderator_is_denied() {
    let mut r = rig(GnsConfig::default());
    // A mere host certificate must not be able to update the zone
    // (paper §6.1, requirement 3).
    add_moderator(
        &mut r,
        HostId(2),
        Role::Host,
        vec![("/apps/evil".into(), Some(ObjectId(0xBAD)))],
    );
    r.world.start();
    r.world.run_for(SimDuration::from_secs(10));
    let m = r
        .world
        .service::<ModeratorTool>(HostId(2), ports::DRIVER)
        .unwrap();
    assert_eq!(m.results.len(), 1);
    match &m.results[0] {
        NaEvent::Done { result, .. } => {
            assert!(result.as_ref().unwrap_err().contains("moderator"));
        }
        other => panic!("unexpected {other:?}"),
    }
    // And nothing reached the zone.
    let primary = r.deploy.gdn_primary;
    let s = r
        .world
        .service::<AuthServer>(primary.host, primary.port)
        .unwrap();
    assert_eq!(s.zone(&r.deploy.zone).unwrap().num_records(), 0);
}

#[test]
fn updates_replicate_to_secondaries() {
    let mut r = rig(GnsConfig {
        batch_interval: SimDuration::ZERO, // flush immediately
        ..GnsConfig::default()
    });
    let oid = ObjectId(0x7222);
    add_moderator(
        &mut r,
        HostId(1),
        Role::Moderator,
        vec![
            ("/apps/tex/tetex".into(), Some(oid)),
            ("/os/linux/debian".into(), Some(ObjectId(0x7333))),
        ],
    );
    r.world.start();
    r.world.run_for(SimDuration::from_secs(15));
    for server in r.deploy.gdn_servers() {
        let s = r
            .world
            .service::<AuthServer>(server.host, server.port)
            .expect("gdn server");
        let zone = s.zone(&r.deploy.zone).unwrap();
        assert_eq!(
            zone.num_records(),
            2,
            "server {server} has {} records",
            zone.num_records()
        );
    }
}

#[test]
fn removal_takes_names_out_of_service() {
    let mut r = rig(GnsConfig {
        batch_interval: SimDuration::ZERO,
        record_ttl: 1, // keep resolver caches from masking the removal
        ..GnsConfig::default()
    });
    let oid = ObjectId(0x8444);
    add_moderator(
        &mut r,
        HostId(1),
        Role::Moderator,
        vec![
            ("/apps/gimp".into(), Some(oid)),
            ("/apps/gimp".into(), None),
        ],
    );
    r.world.start();
    r.world.run_for(SimDuration::from_secs(20));
    add_resolver_driver(&mut r, HostId(7), ports::DRIVER, vec!["/apps/gimp".into()]);
    r.world.run_until(SimTime::from_secs(90));
    let d = r
        .world
        .service::<ResolveDriver>(HostId(7), ports::DRIVER)
        .unwrap();
    assert!(matches!(
        &d.results[0],
        GnsEvent::Resolved {
            result: Err(GnsError::Dns(_)),
            ..
        }
    ));
}

#[test]
fn resolver_caching_cuts_latency_and_authoritative_load() {
    let mut r = rig(GnsConfig {
        batch_interval: SimDuration::from_secs(1),
        record_ttl: 86_400,
        ..GnsConfig::default()
    });
    let oid = ObjectId(0x9555);
    add_moderator(
        &mut r,
        HostId(1),
        Role::Moderator,
        vec![("/apps/emacs".into(), Some(oid))],
    );
    r.world.start();
    r.world.run_for(SimDuration::from_secs(10));

    // Two sequential resolutions from the same site: the second must be
    // served from the resolver cache.
    add_resolver_driver(
        &mut r,
        HostId(13),
        ports::DRIVER,
        vec!["/apps/emacs".into(), "/apps/emacs".into()],
    );
    r.world.run_for(SimDuration::from_secs(30));
    let d = r
        .world
        .service::<ResolveDriver>(HostId(13), ports::DRIVER)
        .unwrap();
    assert_eq!(d.results.len(), 2);
    let (l0, l1) = match (&d.results[0], &d.results[1]) {
        (
            GnsEvent::Resolved {
                latency: a,
                result: ra,
                ..
            },
            GnsEvent::Resolved {
                latency: b,
                result: rb,
                ..
            },
        ) => {
            assert!(ra.is_ok() && rb.is_ok());
            (*a, *b)
        }
    };
    assert!(
        l1.as_nanos() * 5 < l0.as_nanos(),
        "cached resolution not faster: cold {l0}, warm {l1}"
    );
    // Resolver hit its cache at least once.
    let resolver_ep = r.deploy.resolver_for(r.world.topology(), HostId(13));
    let resolver = r
        .world
        .service::<Resolver>(resolver_ep.host, resolver_ep.port)
        .unwrap();
    assert!(resolver.stats.cache_hits >= 1);
}

#[test]
fn batching_reduces_update_messages() {
    // Two deployments: immediate flush vs 10 s batching, same 20 adds.
    let run = |batch: SimDuration| -> u64 {
        let mut r = rig(GnsConfig {
            batch_interval: batch,
            ..GnsConfig::default()
        });
        let script: Vec<(String, Option<ObjectId>)> = (0..20)
            .map(|i| (format!("/apps/pkg{i}"), Some(ObjectId(0x1000 + i as u128))))
            .collect();
        add_moderator(&mut r, HostId(1), Role::Moderator, script);
        r.world.start();
        r.world.run_for(SimDuration::from_secs(60));
        r.world.metrics().counter("gns.na.batches")
    };
    let immediate = run(SimDuration::ZERO);
    let batched = run(SimDuration::from_secs(10));
    assert!(
        batched * 3 <= immediate,
        "batching did not help: immediate={immediate} batched={batched}"
    );
}
