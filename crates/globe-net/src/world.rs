//! The simulation world: hosts, services, and the deterministic event
//! loop that moves messages between them.
//!
//! Services are event-driven daemons (the classic structure of the era's
//! network servers): they react to datagrams, stream events and timers,
//! and issue commands through a [`ServiceCtx`]. Commands accumulate in an
//! outbox while a handler runs and are applied by the world afterwards —
//! the *effects pattern* — so a handler can never observe or mutate
//! in-flight network state.
//!
//! Determinism: the event queue has a stable FIFO tie-break, anything
//! iterated for scheduling is sorted first, and each service draws
//! randomness from a stream derived from its `(host, port)` address rather
//! than from insertion order.
//!
//! Hot-path layout: services and connections live in dense slabs indexed
//! through an [`FxHashMap`] (point lookups only — the rare paths that
//! iterate, like crash handling, sort their keys first so the schedule
//! stays independent of hash-table history). Per-tier byte/message
//! accounting uses pre-interned [`MetricId`]s, so no per-message string
//! formatting or map walk remains on the delivery path.

use std::collections::BTreeMap;

use globe_sim::{
    EventQueue, FxHashMap, FxHashSet, MetricId, Metrics, Rng, SimDuration, SimTime, TraceLog,
};

use crate::payload::Payload;
use crate::service::{service_rng_stream, Effect};
use crate::topology::{HostId, NetParams, Tier, Topology};
use crate::transport::{CloseReason, ConnEvent, ConnId, Endpoint, TimerId, Transport};

pub use crate::service::{ns_token, owns_token, token_id, Service, ServiceCtx};

#[derive(Debug)]
enum NetEvent {
    Datagram {
        src: Endpoint,
        dst: Endpoint,
        payload: Vec<u8>,
    },
    Conn {
        conn: ConnId,
        dst: Endpoint,
        /// `dst`'s resolved service slot, or [`NO_SLOT`] on rare paths
        /// that schedule without one; lets hot deliveries dispatch
        /// straight into the slab without re-hashing the endpoint.
        dst_slot: u32,
        ev: ConnEvent,
    },
    // `ConnEvent::Msg` carries a `Payload`, so a broadcast sender that
    // clones one payload across N connections queues N refcount bumps
    // here, not N byte copies.
    Timer {
        dst: Endpoint,
        id: TimerId,
        token: u64,
        epoch: u32,
    },
    Crash(HostId),
    Recover(HostId),
    /// The link between two hosts stops carrying new traffic.
    LinkDown(HostId, HostId),
    /// The link between two hosts carries traffic again.
    LinkUp(HostId, HostId),
    /// A deferred effect becoming visible after its processing delay.
    Deferred {
        src: Endpoint,
        effect: Effect,
    },
}

#[derive(Debug)]
struct ConnState {
    /// The public connection id (key back into `conn_index`).
    id: u64,
    client: Endpoint,
    server: Endpoint,
    /// Per-direction "link busy until" time; index 0 is client→server.
    free_at: [SimTime; 2],
    /// Sender-side CPU queue tail per direction: stream sends — delayed
    /// or not — leave the sending host in FIFO order, so a cheap message
    /// can never overtake an expensive one issued before it (a
    /// single-threaded daemon processes its output sequentially).
    /// `SimTime::ZERO` means "no pending deferred output".
    tail: [SimTime; 2],
    /// Resolved service slots of `[client, server]`. Service slots are
    /// add-only, so these never go stale.
    svc: [u32; 2],
}

struct Slot {
    service: Option<Box<dyn Service>>,
    rng: Rng,
}

/// Sentinel for "no pre-resolved service slot" in [`NetEvent::Conn`].
const NO_SLOT: u32 = u32::MAX;

/// Packs an endpoint into the one-word `service_index` key (host in
/// the high bits, so packed order equals `(host, port)` order).
#[inline]
fn ep_key(host: u32, port: u16) -> u64 {
    ((host as u64) << 16) | port as u64
}

/// Inverse of [`ep_key`].
#[inline]
fn ep_unkey(key: u64) -> (u32, u16) {
    ((key >> 16) as u32, (key & 0xFFFF) as u16)
}

/// Packs an unordered host pair into the `links_down` key.
#[inline]
fn link_key(a: HostId, b: HostId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u64) << 32) | hi as u64
}

/// The simulation world: topology + services + in-flight events.
///
/// See the crate-level docs for an end-to-end example.
pub struct World {
    topo: Topology,
    params: NetParams,
    queue: EventQueue<NetEvent>,
    now: SimTime,
    /// Dense service storage; services are never removed, so slots are
    /// stable indices handed out by `service_index` (keyed by the
    /// packed endpoint, see [`ep_key`]).
    services: Vec<Slot>,
    service_index: FxHashMap<u64, u32>,
    /// Connection slab: `conn_index` maps the public id to a slot, the
    /// free list recycles slots of closed connections.
    conn_slots: Vec<Option<ConnState>>,
    conn_index: FxHashMap<u64, u32>,
    conn_free: Vec<u32>,
    /// Recycled effect outboxes: every dispatch borrows one and returns
    /// it drained, so steady-state handler dispatch never allocates an
    /// outbox (a stack, not a single slot, in case a dispatch ever
    /// nests).
    effects_pool: Vec<Vec<Effect>>,
    host_up: Vec<bool>,
    host_epoch: Vec<u32>,
    /// Host pairs (packed via [`link_key`]) whose link is partitioned.
    /// Empty in every non-fault-injection run, and every check is gated
    /// on that emptiness, so the hot path pays one `is_empty` load.
    links_down: FxHashSet<u64>,
    stable: Vec<BTreeMap<String, Vec<u8>>>,
    cancelled: FxHashSet<u64>,
    metrics: Metrics,
    /// Pre-interned `(net.bytes.<tier>, net.msgs.<tier>)` counter ids,
    /// indexed by `Tier::distance()`.
    net_ids: [(MetricId, MetricId); 5],
    id_send_dropped: MetricId,
    id_dgrams_lost: MetricId,
    id_dgrams_dropped_down: MetricId,
    id_dgrams_no_listener: MetricId,
    id_dgrams_dropped_partition: MetricId,
    trace: TraceLog,
    rng: Rng,
    next_conn: u64,
    next_timer: u64,
    started: bool,
    seed: u64,
    events: u64,
}

impl World {
    /// Creates a world over `topo` with the given link parameters and
    /// random seed. Identical `(topo, params, seed, program)` always
    /// replays identically.
    pub fn new(topo: Topology, params: NetParams, seed: u64) -> World {
        let n = topo.num_hosts();
        // Intern the hot counters up front; untouched ids stay invisible
        // in reports, so this costs nothing when a tier sees no traffic.
        let mut metrics = Metrics::new();
        let net_ids = Tier::ALL.map(|t| {
            (
                metrics.metric_id(&format!("net.bytes.{}", t.name())),
                metrics.metric_id(&format!("net.msgs.{}", t.name())),
            )
        });
        let id_send_dropped = metrics.metric_id("net.send_dropped");
        let id_dgrams_lost = metrics.metric_id("net.dgrams_lost");
        let id_dgrams_dropped_down = metrics.metric_id("net.dgrams_dropped_down");
        let id_dgrams_no_listener = metrics.metric_id("net.dgrams_no_listener");
        let id_dgrams_dropped_partition = metrics.metric_id("net.dgrams_dropped_partition");
        World {
            topo,
            params,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            services: Vec::new(),
            service_index: FxHashMap::default(),
            conn_slots: Vec::new(),
            conn_index: FxHashMap::default(),
            conn_free: Vec::new(),
            effects_pool: Vec::new(),
            host_up: vec![true; n],
            host_epoch: vec![0; n],
            links_down: FxHashSet::default(),
            stable: vec![BTreeMap::new(); n],
            cancelled: FxHashSet::default(),
            metrics,
            net_ids,
            id_send_dropped,
            id_dgrams_lost,
            id_dgrams_dropped_down,
            id_dgrams_no_listener,
            id_dgrams_dropped_partition,
            trace: TraceLog::disabled(),
            rng: Rng::new(seed ^ 0x6c6f_6361_6c5f_6e65),
            next_conn: 1,
            next_timer: 1,
            started: false,
            seed,
            events: 0,
        }
    }

    /// Installs a service at `(host, port)`.
    ///
    /// If the world has already started, `on_start` runs immediately.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint is already occupied or the host id is out of
    /// range.
    pub fn add_service<S: Service>(&mut self, host: HostId, port: u16, service: S) {
        self.add_service_boxed(host, port, Box::new(service));
    }

    /// Type-erased form of [`World::add_service`] (the [`Transport`]
    /// trait entry point).
    pub fn add_service_boxed(&mut self, host: HostId, port: u16, service: Box<dyn Service>) {
        assert!(
            (host.0 as usize) < self.topo.num_hosts(),
            "unknown host {host:?}"
        );
        let key = ep_key(host.0, port);
        assert!(
            !self.service_index.contains_key(&key),
            "endpoint h{}:{port} already in use",
            host.0
        );
        // Stream derived from the address, not insertion order, so adding
        // services in a different order cannot change anyone's samples.
        let stream = service_rng_stream(host.0, port, self.seed);
        self.service_index.insert(key, self.services.len() as u32);
        self.services.push(Slot {
            service: Some(service),
            rng: Rng::new(stream),
        });
        if self.started {
            self.dispatch(Endpoint::new(host, port), |s, ctx| s.on_start(ctx));
        }
    }

    /// Endpoints of all installed services, in `(host, port)` order —
    /// the deterministic iteration order start/crash/recover rely on.
    fn endpoints_sorted(&self, host: Option<u32>) -> Vec<(u32, u16)> {
        let mut keys: Vec<(u32, u16)> = self
            .service_index
            .keys()
            .map(|&k| ep_unkey(k))
            .filter(|&(kh, _)| host.is_none_or(|h| kh == h))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Starts all services (calls `on_start` in endpoint order).
    pub fn start(&mut self) {
        assert!(!self.started, "world already started");
        self.started = true;
        for (h, p) in self.endpoints_sorted(None) {
            self.dispatch(Endpoint::new(HostId(h), p), |s, ctx| s.on_start(ctx));
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology this world runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics registry (for experiment drivers).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Replaces the trace log (e.g. with an enabled one for tests).
    pub fn set_trace(&mut self, trace: TraceLog) {
        self.trace = trace;
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Immutable, typed access to a service.
    pub fn service<S: Service>(&self, host: HostId, port: u16) -> Option<&S> {
        let &slot = self.service_index.get(&ep_key(host.0, port))?;
        self.services[slot as usize]
            .service
            .as_ref()?
            .as_any()
            .downcast_ref()
    }

    /// Mutable, typed access to a service. Mutating service state from
    /// outside the event loop is for test/experiment setup only.
    pub fn service_mut<S: Service>(&mut self, host: HostId, port: u16) -> Option<&mut S> {
        let &slot = self.service_index.get(&ep_key(host.0, port))?;
        self.services[slot as usize]
            .service
            .as_mut()?
            .as_any_mut()
            .downcast_mut()
    }

    /// Whether `host` is currently up.
    pub fn host_is_up(&self, host: HostId) -> bool {
        self.host_up[host.0 as usize]
    }

    /// Crashes a host immediately: volatile state and timers are lost,
    /// open connections reset, stable storage survives.
    pub fn crash_host(&mut self, host: HostId) {
        self.crash_now(host);
    }

    /// Recovers a crashed host immediately (`on_restart` runs on all of
    /// its services).
    pub fn recover_host(&mut self, host: HostId) {
        self.recover_now(host);
    }

    /// Schedules a crash at absolute time `at`.
    pub fn schedule_crash(&mut self, host: HostId, at: SimTime) {
        self.queue.schedule(at, NetEvent::Crash(host));
    }

    /// Schedules a recovery at absolute time `at`.
    pub fn schedule_recover(&mut self, host: HostId, at: SimTime) {
        self.queue.schedule(at, NetEvent::Recover(host));
    }

    /// Schedules the link between `a` and `b` to go down at `at`.
    ///
    /// A downed link blocks *new* transmissions only — in-flight
    /// messages still arrive (they already left the sender). While the
    /// link is down: connection attempts across it time out like an
    /// unreachable host, datagrams are dropped (counted under
    /// `net.dgrams_dropped_partition`), and the first stream send
    /// across it resets the connection at both ends. Idle connections
    /// survive a partition they never transmit through, like real TCP.
    pub fn schedule_link_down(&mut self, a: HostId, b: HostId, at: SimTime) {
        self.queue.schedule(at, NetEvent::LinkDown(a, b));
    }

    /// Schedules the link between `a` and `b` to carry traffic again at
    /// `at`. No-op if the link is not down at that time.
    pub fn schedule_link_up(&mut self, a: HostId, b: HostId, at: SimTime) {
        self.queue.schedule(at, NetEvent::LinkUp(a, b));
    }

    /// Partitions the link between `a` and `b` immediately; see
    /// [`World::schedule_link_down`] for the semantics.
    pub fn link_down_now(&mut self, a: HostId, b: HostId) {
        self.links_down.insert(link_key(a, b));
        self.metrics.inc("net.link_downs", 1);
    }

    /// Heals the link between `a` and `b` immediately.
    pub fn link_up_now(&mut self, a: HostId, b: HostId) {
        self.links_down.remove(&link_key(a, b));
    }

    /// Whether the link between `a` and `b` is currently partitioned.
    pub fn link_is_down(&self, a: HostId, b: HostId) -> bool {
        !self.links_down.is_empty() && self.links_down.contains(&link_key(a, b))
    }

    /// Processes one event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.events += 1;
        self.handle(ev);
        true
    }

    /// Total number of events processed since the world was created.
    /// The denominator of the engine bench's events/sec metric.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Runs until the queue is empty or virtual time would exceed `t`;
    /// the clock ends at exactly `t` if the queue drained first.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((time, ev)) = self.queue.pop_before(t) {
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            self.events += 1;
            self.handle(ev);
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs for `d` of virtual time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Runs until no events remain.
    ///
    /// Programs with self-perpetuating timers never quiesce — use
    /// [`World::run_until`] for those.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    fn dispatch<F>(&mut self, me: Endpoint, f: F)
    where
        F: FnOnce(&mut dyn Service, &mut ServiceCtx<'_>),
    {
        let Some(&slot_idx) = self.service_index.get(&ep_key(me.host.0, me.port)) else {
            return;
        };
        self.dispatch_at(slot_idx, me, f);
    }

    /// [`World::dispatch`] with the service slot already resolved.
    fn dispatch_at<F>(&mut self, slot_idx: u32, me: Endpoint, f: F)
    where
        F: FnOnce(&mut dyn Service, &mut ServiceCtx<'_>),
    {
        // Take the service out of its slot so the ctx can borrow the rest
        // of the world without aliasing it.
        let slot = &mut self.services[slot_idx as usize];
        let Some(mut service) = slot.service.take() else {
            return;
        };
        let mut rng = slot.rng.clone();
        let outbox = self.effects_pool.pop().unwrap_or_default();
        let effects = {
            let mut ctx = ServiceCtx {
                now: self.now,
                me,
                topo: &self.topo,
                rng: &mut rng,
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                stable: &mut self.stable[me.host.0 as usize],
                effects: outbox,
                next_conn: &mut self.next_conn,
                next_timer: &mut self.next_timer,
            };
            f(service.as_mut(), &mut ctx);
            ctx.effects
        };
        let slot = &mut self.services[slot_idx as usize];
        slot.service = Some(service);
        slot.rng = rng;
        self.apply_effects(me, effects);
    }

    /// `ep`'s service slot, or [`NO_SLOT`] if nothing listens there.
    fn svc_slot(&self, ep: Endpoint) -> u32 {
        self.service_index
            .get(&ep_key(ep.host.0, ep.port))
            .copied()
            .unwrap_or(NO_SLOT)
    }

    fn conn_insert(&mut self, state: ConnState) {
        let id = state.id;
        let slot = match self.conn_free.pop() {
            Some(i) => {
                self.conn_slots[i as usize] = Some(state);
                i
            }
            None => {
                self.conn_slots.push(Some(state));
                (self.conn_slots.len() - 1) as u32
            }
        };
        self.conn_index.insert(id, slot);
    }

    fn conn_remove(&mut self, id: u64) -> Option<ConnState> {
        let slot = self.conn_index.remove(&id)?;
        let state = self.conn_slots[slot as usize].take();
        debug_assert!(state.is_some(), "index pointed at an empty slot");
        self.conn_free.push(slot);
        state
    }

    /// Routes a stream send through the sender's per-connection CPU
    /// queue: `delay` of local processing starts when the previous
    /// output on this connection finished, so output order is FIFO.
    fn enqueue_stream_send(
        &mut self,
        src: Endpoint,
        conn: ConnId,
        msg: Payload,
        delay: SimDuration,
    ) {
        let now = self.now;
        let Some(&slot) = self.conn_index.get(&conn.0) else {
            self.metrics.inc_id(self.id_send_dropped, 1);
            return;
        };
        let Some(state) = self.conn_slots[slot as usize].as_mut() else {
            self.metrics.inc_id(self.id_send_dropped, 1);
            return;
        };
        let dir = if src == state.client {
            0
        } else if src == state.server {
            1
        } else {
            self.metrics.inc_id(self.id_send_dropped, 1);
            return;
        };
        let ready = state.tail[dir].max(now) + delay;
        if ready <= now {
            // Fast path (idle CPU queue, no delay): transmit on the slot
            // already in hand instead of re-resolving the connection.
            self.send_on_slot(slot, src, conn, msg);
        } else {
            state.tail[dir] = ready;
            self.queue.schedule(
                ready,
                NetEvent::Deferred {
                    src,
                    effect: Effect::Send { conn, msg },
                },
            );
        }
    }

    fn perform_stream_send(&mut self, src: Endpoint, conn: ConnId, msg: Payload) {
        let Some(&slot) = self.conn_index.get(&conn.0) else {
            self.metrics.inc_id(self.id_send_dropped, 1);
            return;
        };
        self.send_on_slot(slot, src, conn, msg);
    }

    /// Puts `msg` on the wire from an already-resolved connection slot.
    /// Everything below the slab access touches disjoint `World` fields,
    /// so no re-lookup or state copy is needed.
    fn send_on_slot(&mut self, slot: u32, src: Endpoint, conn: ConnId, msg: Payload) {
        let Some(state) = self.conn_slots[slot as usize].as_mut() else {
            self.metrics.inc_id(self.id_send_dropped, 1);
            return;
        };
        let (dir, dst, dst_slot) = if src == state.client {
            (0usize, state.server, state.svc[1])
        } else {
            (1usize, state.client, state.svc[0])
        };
        if !self.links_down.is_empty() && self.links_down.contains(&link_key(src.host, dst.host)) {
            // First use of a partitioned connection kills it: both ends
            // learn of the reset after the retransmission timers a real
            // stack would run, modelled as one link latency.
            self.partition_reset(conn);
            return;
        }
        let tier = self.topo.tier_between(src.host, dst.host);
        let size = msg.len() as u64 + self.params.overhead;
        let start = state.free_at[dir].max(self.now);
        let link = self.params.link(tier);
        let bw = link.bandwidth.max(1);
        let trans = SimDuration::from_nanos(size.saturating_mul(1_000_000_000) / bw);
        let arrival = start + trans + link.latency;
        state.free_at[dir] = start + trans;
        let (id_bytes, id_msgs) = self.net_ids[tier.distance() as usize];
        self.metrics.inc_id(id_bytes, size);
        self.metrics.inc_id(id_msgs, 1);
        self.queue.schedule(
            arrival,
            NetEvent::Conn {
                conn,
                dst,
                dst_slot,
                ev: ConnEvent::Msg(msg),
            },
        );
    }

    /// Closing queues behind pending deferred output on the connection,
    /// so a close can never overtake a response.
    fn enqueue_close(&mut self, src: Endpoint, conn: ConnId) {
        let Some(&slot) = self.conn_index.get(&conn.0) else {
            return;
        };
        let Some(state) = self.conn_slots[slot as usize].as_ref() else {
            return;
        };
        let dir = if src == state.client {
            0
        } else if src == state.server {
            1
        } else {
            return;
        };
        let tail = state.tail[dir];
        if tail <= self.now {
            self.perform_close(src, conn);
        } else {
            self.queue.schedule(
                tail,
                NetEvent::Deferred {
                    src,
                    effect: Effect::Close { conn },
                },
            );
        }
    }

    fn perform_close(&mut self, src: Endpoint, conn: ConnId) {
        let Some(state) = self.conn_remove(conn.0) else {
            return;
        };
        let (dir, dst, dst_slot) = if src == state.client {
            (0usize, state.server, state.svc[1])
        } else {
            (1usize, state.client, state.svc[0])
        };
        let tier = self.topo.tier_between(src.host, dst.host);
        self.account(tier, self.params.overhead);
        let when = state.free_at[dir].max(self.now) + self.params.link(tier).latency;
        self.queue.schedule(
            when,
            NetEvent::Conn {
                conn,
                dst,
                dst_slot,
                ev: ConnEvent::Closed(CloseReason::Normal),
            },
        );
    }

    /// Tears down a connection whose link turned out to be partitioned:
    /// both endpoints get `Closed(Reset)` after one link latency (the
    /// local stack gives up; the model does not try to reproduce the
    /// asymmetric timeouts of a real retransmission schedule).
    fn partition_reset(&mut self, conn: ConnId) {
        let Some(state) = self.conn_remove(conn.0) else {
            return;
        };
        let tier = self.topo.tier_between(state.client.host, state.server.host);
        let lat = self.params.link(tier).latency;
        for (ep, slot) in [(state.client, state.svc[0]), (state.server, state.svc[1])] {
            self.queue.schedule(
                self.now + lat,
                NetEvent::Conn {
                    conn,
                    dst: ep,
                    dst_slot: slot,
                    ev: ConnEvent::Closed(CloseReason::Reset),
                },
            );
        }
    }

    fn transmission(&self, size: u64, tier: Tier) -> SimDuration {
        let bw = self.params.link(tier).bandwidth.max(1);
        SimDuration::from_nanos(size.saturating_mul(1_000_000_000) / bw)
    }

    fn account(&mut self, tier: Tier, bytes: u64) {
        let (id_bytes, id_msgs) = self.net_ids[tier.distance() as usize];
        self.metrics.inc_id(id_bytes, bytes);
        self.metrics.inc_id(id_msgs, 1);
    }

    fn apply_effects(&mut self, src: Endpoint, mut effects: Vec<Effect>) {
        for e in effects.drain(..) {
            self.apply_one(src, e);
        }
        self.effects_pool.push(effects);
    }

    fn apply_one(&mut self, src: Endpoint, e: Effect) {
        match e {
            Effect::Datagram { dst, payload } => {
                if !self.links_down.is_empty()
                    && self.links_down.contains(&link_key(src.host, dst.host))
                {
                    // Never reaches the wire: no tier accounting.
                    self.metrics.inc_id(self.id_dgrams_dropped_partition, 1);
                    return;
                }
                let tier = self.topo.tier_between(src.host, dst.host);
                let size = payload.len() as u64 + self.params.overhead;
                self.account(tier, size);
                let link = self.params.link(tier);
                let loss = link.datagram_loss;
                let jitter = link.jitter;
                if loss > 0.0 && self.rng.gen_bool(loss) {
                    self.metrics.inc_id(self.id_dgrams_lost, 1);
                    return;
                }
                let mut delay = self.params.link(tier).latency + self.transmission(size, tier);
                if jitter > SimDuration::ZERO {
                    delay += SimDuration::from_nanos(self.rng.gen_range(0..jitter.as_nanos() + 1));
                }
                self.queue
                    .schedule(self.now + delay, NetEvent::Datagram { src, dst, payload });
            }
            Effect::Open { conn, dst } => {
                let tier = self.topo.tier_between(src.host, dst.host);
                let lat = self.params.link(tier).latency;
                self.account(tier, self.params.overhead);
                let src_slot = self.svc_slot(src);
                let partitioned = !self.links_down.is_empty()
                    && self.links_down.contains(&link_key(src.host, dst.host));
                if partitioned || !self.host_up[dst.host.0 as usize] {
                    // No one answers the SYN: time out.
                    self.queue.schedule(
                        self.now + self.params.connect_timeout,
                        NetEvent::Conn {
                            conn,
                            dst: src,
                            dst_slot: src_slot,
                            ev: ConnEvent::Closed(CloseReason::Timeout),
                        },
                    );
                    return;
                }
                let server_slot = self.svc_slot(dst);
                if server_slot == NO_SLOT {
                    // RST: one round trip.
                    self.queue.schedule(
                        self.now + lat * 2,
                        NetEvent::Conn {
                            conn,
                            dst: src,
                            dst_slot: src_slot,
                            ev: ConnEvent::Closed(CloseReason::Refused),
                        },
                    );
                    return;
                }
                // Data sent before the handshake completes queues
                // behind the SYN: the client→server direction is
                // busy until the SYN has arrived.
                self.conn_insert(ConnState {
                    id: conn.0,
                    client: src,
                    server: dst,
                    free_at: [self.now + lat, self.now],
                    tail: [SimTime::ZERO; 2],
                    svc: [src_slot, server_slot],
                });
                self.queue.schedule(
                    self.now + lat,
                    NetEvent::Conn {
                        conn,
                        dst,
                        dst_slot: server_slot,
                        ev: ConnEvent::Incoming { from: src },
                    },
                );
            }
            Effect::Send { conn, msg } => {
                self.enqueue_stream_send(src, conn, msg, SimDuration::ZERO);
            }
            Effect::Close { conn } => {
                self.enqueue_close(src, conn);
            }
            Effect::Timer { id, delay, token } => {
                self.queue.schedule(
                    self.now + delay,
                    NetEvent::Timer {
                        dst: src,
                        id,
                        token,
                        epoch: self.host_epoch[src.host.0 as usize],
                    },
                );
            }
            Effect::CancelTimer(id) => {
                self.cancelled.insert(id.0);
            }
            Effect::DeferredSend { conn, msg, delay } => {
                self.enqueue_stream_send(src, conn, msg, delay);
            }
            Effect::DeferredDatagram {
                dst,
                payload,
                delay,
            } => {
                self.queue.schedule(
                    self.now + delay,
                    NetEvent::Deferred {
                        src,
                        effect: Effect::Datagram { dst, payload },
                    },
                );
            }
        }
    }

    fn handle(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::Datagram { src, dst, payload } => {
                if !self.host_up[dst.host.0 as usize] {
                    self.metrics.inc_id(self.id_dgrams_dropped_down, 1);
                    return;
                }
                if !self
                    .service_index
                    .contains_key(&ep_key(dst.host.0, dst.port))
                {
                    self.metrics.inc_id(self.id_dgrams_no_listener, 1);
                    return;
                }
                self.dispatch(dst, |s, ctx| s.on_datagram(ctx, src, payload));
            }
            NetEvent::Conn {
                conn,
                dst,
                dst_slot,
                ev,
            } => {
                if !self.host_up[dst.host.0 as usize] {
                    // In-flight delivery to a dead host evaporates; the
                    // peer was (or will be) notified by crash handling.
                    return;
                }
                if let ConnEvent::Incoming { from } = ev {
                    // Client may have vanished meanwhile (crash cleanup
                    // removes the connection state).
                    let Some(&cslot) = self.conn_index.get(&conn.0) else {
                        return;
                    };
                    let client_slot = self.conn_slots[cslot as usize]
                        .as_ref()
                        .map_or(NO_SLOT, |c| c.svc[0]);
                    if !self
                        .service_index
                        .contains_key(&ep_key(dst.host.0, dst.port))
                    {
                        // Listener disappeared between SYN and delivery.
                        let tier = self.topo.tier_between(dst.host, from.host);
                        let lat = self.params.link(tier).latency;
                        self.conn_remove(conn.0);
                        self.queue.schedule(
                            self.now + lat,
                            NetEvent::Conn {
                                conn,
                                dst: from,
                                dst_slot: client_slot,
                                ev: ConnEvent::Closed(CloseReason::Refused),
                            },
                        );
                        return;
                    }
                    // Schedule Opened to the client before the server
                    // handler runs, so Opened always precedes any reply
                    // the server sends at the same instant.
                    let tier = self.topo.tier_between(dst.host, from.host);
                    let lat = self.params.link(tier).latency;
                    self.queue.schedule(
                        self.now + lat,
                        NetEvent::Conn {
                            conn,
                            dst: from,
                            dst_slot: client_slot,
                            ev: ConnEvent::Opened,
                        },
                    );
                    self.dispatch_at(dst_slot, dst, move |s, ctx| {
                        s.on_conn_event(ctx, conn, ConnEvent::Incoming { from })
                    });
                    return;
                }
                if matches!(ev, ConnEvent::Closed(_)) {
                    self.conn_remove(conn.0);
                }
                if dst_slot != NO_SLOT {
                    self.dispatch_at(dst_slot, dst, move |s, ctx| s.on_conn_event(ctx, conn, ev));
                } else {
                    self.dispatch(dst, move |s, ctx| s.on_conn_event(ctx, conn, ev));
                }
            }
            NetEvent::Timer {
                dst,
                id,
                token,
                epoch,
            } => {
                if !self.cancelled.is_empty() && self.cancelled.remove(&id.0) {
                    return;
                }
                if epoch != self.host_epoch[dst.host.0 as usize]
                    || !self.host_up[dst.host.0 as usize]
                {
                    return;
                }
                self.dispatch(dst, move |s, ctx| s.on_timer(ctx, token));
            }
            NetEvent::Crash(h) => self.crash_now(h),
            NetEvent::Recover(h) => self.recover_now(h),
            NetEvent::LinkDown(a, b) => self.link_down_now(a, b),
            NetEvent::LinkUp(a, b) => self.link_up_now(a, b),
            NetEvent::Deferred { src, effect } => {
                // The sending host may have crashed during the processing
                // delay; its output dies with it.
                if !self.host_up[src.host.0 as usize] {
                    return;
                }
                // Perform directly: re-entering the queueing path would
                // see this message's own tail entry and reschedule it
                // behind later output.
                match effect {
                    Effect::Send { conn, msg } => self.perform_stream_send(src, conn, msg),
                    Effect::Close { conn } => self.perform_close(src, conn),
                    other => self.apply_one(src, other),
                }
            }
        }
    }

    fn crash_now(&mut self, host: HostId) {
        let idx = host.0 as usize;
        if !self.host_up[idx] {
            return;
        }
        self.host_up[idx] = false;
        self.host_epoch[idx] = self.host_epoch[idx].wrapping_add(1);
        self.metrics.inc("net.host_crashes", 1);

        // Reset every connection touching the host; notify live peers.
        // Sorted by id so the reset schedule does not depend on slab
        // layout (slot reuse order varies with connection history).
        let mut doomed: Vec<u64> = self
            .conn_slots
            .iter()
            .flatten()
            .filter(|c| c.client.host == host || c.server.host == host)
            .map(|c| c.id)
            .collect();
        doomed.sort_unstable();
        for id in doomed {
            let state = self.conn_remove(id).expect("conn disappeared");
            let (peer, peer_slot) = if state.client.host == host {
                (state.server, state.svc[1])
            } else {
                (state.client, state.svc[0])
            };
            let tier = self.topo.tier_between(host, peer.host);
            let lat = self.params.link(tier).latency;
            self.queue.schedule(
                self.now + lat,
                NetEvent::Conn {
                    conn: ConnId(id),
                    dst: peer,
                    dst_slot: peer_slot,
                    ev: ConnEvent::Closed(CloseReason::Reset),
                },
            );
        }

        // Tell the services; no ctx — a dead host cannot act.
        let now = self.now;
        for key in self.endpoints_sorted(Some(host.0)) {
            if let Some(&slot) = self.service_index.get(&ep_key(key.0, key.1)) {
                if let Some(s) = self.services[slot as usize].service.as_mut() {
                    s.on_crash(now);
                }
            }
        }
    }

    fn recover_now(&mut self, host: HostId) {
        let idx = host.0 as usize;
        if self.host_up[idx] {
            return;
        }
        self.host_up[idx] = true;
        self.metrics.inc("net.host_recoveries", 1);
        for (h, p) in self.endpoints_sorted(Some(host.0)) {
            self.dispatch(Endpoint::new(HostId(h), p), |s, ctx| s.on_restart(ctx));
        }
    }
}

/// The deterministic world *is* a transport: the trait methods forward
/// to the inherent ones, so installing a deployment through
/// `&mut dyn Transport` behaves byte-for-byte like calling [`World`]
/// directly.
impl Transport for World {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn add_service_boxed(&mut self, host: HostId, port: u16, service: Box<dyn Service>) {
        World::add_service_boxed(self, host, port, service);
    }

    fn start(&mut self) {
        World::start(self);
    }

    fn run_for(&mut self, d: SimDuration) {
        World::run_for(self, d);
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn schedule_link_down(&mut self, a: HostId, b: HostId, at: SimTime) {
        World::schedule_link_down(self, a, b, at);
    }

    fn schedule_link_up(&mut self, a: HostId, b: HostId, at: SimTime) {
        World::schedule_link_up(self, a, b, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_service_any;
    use crate::ports;
    use crate::topology::TopologyBuilder;

    /// Echo server over streams: replies to each message, then closes
    /// when the client closes.
    struct Echo;
    impl Service for Echo {
        fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
            if let ConnEvent::Msg(m) = ev {
                ctx.send(conn, m);
            }
        }
        impl_service_any!();
    }

    /// Scripted client: connects, sends, records replies and timing.
    struct Client {
        server: Endpoint,
        conn: Option<ConnId>,
        replies: Vec<Vec<u8>>,
        opened_at: Option<SimTime>,
        closed: Option<CloseReason>,
        payload: Vec<u8>,
    }
    impl Client {
        fn new(server: Endpoint, payload: Vec<u8>) -> Self {
            Client {
                server,
                conn: None,
                replies: Vec::new(),
                opened_at: None,
                closed: None,
                payload,
            }
        }
    }
    impl Service for Client {
        fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
            let c = ctx.connect(self.server);
            ctx.send(c, self.payload.clone());
            self.conn = Some(c);
        }
        fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, _conn: ConnId, ev: ConnEvent) {
            match ev {
                ConnEvent::Opened => self.opened_at = Some(ctx.now()),
                ConnEvent::Msg(m) => {
                    self.replies.push(m.to_vec());
                    ctx.close(self.conn.unwrap());
                }
                ConnEvent::Closed(r) => self.closed = Some(r),
                ConnEvent::Incoming { .. } => unreachable!("client never listens"),
            }
        }
        impl_service_any!();
    }

    fn world_two_sites() -> (World, HostId, HostId) {
        let mut b = TopologyBuilder::new();
        let r = b.region("eu");
        let c = b.country(r, "nl");
        let s1 = b.site(c, "vu");
        let s2 = b.site(c, "uva");
        let a = b.host(s1, "a");
        let z = b.host(s2, "z");
        (World::new(b.build(), NetParams::default(), 7), a, z)
    }

    #[test]
    fn stream_round_trip_and_close() {
        let (mut w, a, z) = world_two_sites();
        w.add_service(z, ports::DRIVER, Echo);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), b"hi".to_vec()),
        );
        w.start();
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.replies, vec![b"hi".to_vec()]);
        assert!(c.opened_at.is_some());
        // Country-tier RTT is 10ms, so the handshake completes at >= 10ms.
        assert!(c.opened_at.unwrap() >= SimTime::from_millis(10));
    }

    #[test]
    fn connect_to_missing_listener_is_refused() {
        let (mut w, a, z) = world_two_sites();
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), b"x".to_vec()),
        );
        w.start();
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.closed, Some(CloseReason::Refused));
        assert!(c.replies.is_empty());
    }

    #[test]
    fn connect_to_down_host_times_out() {
        let (mut w, a, z) = world_two_sites();
        w.add_service(z, ports::DRIVER, Echo);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), b"x".to_vec()),
        );
        w.crash_host(z);
        w.start();
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.closed, Some(CloseReason::Timeout));
        assert!(w.now() >= SimTime::ZERO + NetParams::default().connect_timeout);
    }

    #[test]
    fn crash_resets_open_connections() {
        let (mut w, a, z) = world_two_sites();
        // An echo server that never replies keeps the connection open.
        struct Sink;
        impl Service for Sink {
            impl_service_any!();
        }
        w.add_service(z, ports::DRIVER, Sink);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), b"x".to_vec()),
        );
        w.start();
        w.run_for(SimDuration::from_millis(100));
        w.crash_host(z);
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.closed, Some(CloseReason::Reset));
    }

    #[test]
    fn bytes_accounted_to_correct_tier() {
        let (mut w, a, z) = world_two_sites();
        w.add_service(z, ports::DRIVER, Echo);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), vec![0u8; 1000]),
        );
        w.start();
        w.run_to_quiescence();
        // a and z are in different sites of one country: country tier.
        assert!(w.metrics().counter("net.bytes.country") >= 2000);
        assert_eq!(w.metrics().counter("net.bytes.world"), 0);
        assert_eq!(w.metrics().counter("net.bytes.site"), 0);
    }

    #[test]
    fn latency_scales_with_tier() {
        // Same experiment at two distances; the farther client must see a
        // strictly later reply.
        let mut b = TopologyBuilder::new();
        let eu = b.region("eu");
        let na = b.region("na");
        let nl = b.country(eu, "nl");
        let us = b.country(na, "us");
        let vu = b.site(nl, "vu");
        let mit = b.site(us, "mit");
        let server = b.host(vu, "server");
        let near = b.host(vu, "near");
        let far = b.host(mit, "far");
        let mut w = World::new(b.build(), NetParams::default(), 1);
        w.add_service(server, ports::DRIVER, Echo);
        let sep = Endpoint::new(server, ports::DRIVER);
        w.add_service(near, ports::DRIVER, Client::new(sep, b"p".to_vec()));
        w.add_service(far, ports::DRIVER, Client::new(sep, b"p".to_vec()));
        w.start();
        w.run_to_quiescence();
        let t_near = w
            .service::<Client>(near, ports::DRIVER)
            .unwrap()
            .opened_at
            .unwrap();
        let t_far = w
            .service::<Client>(far, ports::DRIVER)
            .unwrap()
            .opened_at
            .unwrap();
        assert!(
            t_far.as_nanos() > t_near.as_nanos() * 10,
            "far {t_far}, near {t_near}"
        );
    }

    #[test]
    fn datagram_loss_is_applied() {
        let (mut w_lossy, a, z) = {
            let mut b = TopologyBuilder::new();
            let r = b.region("eu");
            let c = b.country(r, "nl");
            let s1 = b.site(c, "vu");
            let s2 = b.site(c, "uva");
            let a = b.host(s1, "a");
            let z = b.host(s2, "z");
            (
                World::new(b.build(), NetParams::default().with_datagram_loss(1.0), 7),
                a,
                z,
            )
        };
        struct Burst {
            dst: Endpoint,
        }
        impl Service for Burst {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                for _ in 0..10 {
                    ctx.send_datagram(self.dst, vec![1, 2, 3]);
                }
            }
            impl_service_any!();
        }
        struct Count {
            n: u32,
        }
        impl Service for Count {
            fn on_datagram(&mut self, _ctx: &mut ServiceCtx<'_>, _f: Endpoint, _p: Vec<u8>) {
                self.n += 1;
            }
            impl_service_any!();
        }
        w_lossy.add_service(z, ports::DRIVER, Count { n: 0 });
        w_lossy.add_service(
            a,
            ports::DRIVER,
            Burst {
                dst: Endpoint::new(z, ports::DRIVER),
            },
        );
        w_lossy.start();
        w_lossy.run_to_quiescence();
        assert_eq!(w_lossy.service::<Count>(z, ports::DRIVER).unwrap().n, 0);
        assert_eq!(w_lossy.metrics().counter("net.dgrams_lost"), 10);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct Timed {
            fired: Vec<u64>,
            cancelled_id: Option<TimerId>,
        }
        impl Service for Timed {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let id = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(30), 3);
                self.cancelled_id = Some(id);
            }
            fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
                self.fired.push(token);
                if token == 1 {
                    ctx.cancel_timer(self.cancelled_id.unwrap());
                }
            }
            impl_service_any!();
        }
        let (mut w, a, _) = world_two_sites();
        w.add_service(
            a,
            ports::DRIVER,
            Timed {
                fired: vec![],
                cancelled_id: None,
            },
        );
        w.start();
        w.run_to_quiescence();
        assert_eq!(
            w.service::<Timed>(a, ports::DRIVER).unwrap().fired,
            vec![1, 3]
        );
    }

    #[test]
    fn crash_drops_timers_and_restart_runs() {
        struct Daemon {
            fired: u32,
            restarted: u32,
            crashed: u32,
        }
        impl Service for Daemon {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                ctx.set_timer(SimDuration::from_secs(10), 1);
            }
            fn on_timer(&mut self, _ctx: &mut ServiceCtx<'_>, _t: u64) {
                self.fired += 1;
            }
            fn on_crash(&mut self, _now: SimTime) {
                self.crashed += 1;
            }
            fn on_restart(&mut self, _ctx: &mut ServiceCtx<'_>) {
                self.restarted += 1;
            }
            impl_service_any!();
        }
        let (mut w, a, _) = world_two_sites();
        w.add_service(
            a,
            ports::DRIVER,
            Daemon {
                fired: 0,
                restarted: 0,
                crashed: 0,
            },
        );
        w.start();
        w.run_for(SimDuration::from_secs(1));
        w.crash_host(a);
        w.recover_host(a);
        w.run_to_quiescence();
        let d = w.service::<Daemon>(a, ports::DRIVER).unwrap();
        assert_eq!(d.fired, 0, "timer must not survive the crash");
        assert_eq!(d.crashed, 1);
        assert_eq!(d.restarted, 1);
    }

    #[test]
    fn stable_storage_survives_crash() {
        struct Persist {
            loaded: Option<Vec<u8>>,
        }
        impl Service for Persist {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                ctx.stable_put("state/x", vec![42]);
            }
            fn on_restart(&mut self, ctx: &mut ServiceCtx<'_>) {
                self.loaded = ctx.stable_get("state/x").cloned();
                assert_eq!(ctx.stable_keys("state/"), vec!["state/x".to_owned()]);
            }
            impl_service_any!();
        }
        let (mut w, a, _) = world_two_sites();
        w.add_service(a, ports::DRIVER, Persist { loaded: None });
        w.start();
        w.run_for(SimDuration::from_millis(1));
        w.crash_host(a);
        w.recover_host(a);
        assert_eq!(
            w.service::<Persist>(a, ports::DRIVER).unwrap().loaded,
            Some(vec![42])
        );
    }

    #[test]
    fn large_transfer_is_bandwidth_limited() {
        // 1 MB across the country tier at 4 MB/s must take >= 250 ms.
        let (mut w, a, z) = world_two_sites();
        w.add_service(z, ports::DRIVER, Echo);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), vec![0u8; 1_000_000]),
        );
        w.start();
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.replies.len(), 1);
        // Request and echo each pay ~250ms serialization.
        assert!(w.now() >= SimTime::from_millis(500), "now {}", w.now());
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| {
            let (mut w, a, z) = {
                let mut b = TopologyBuilder::new();
                let r = b.region("eu");
                let c = b.country(r, "nl");
                let s1 = b.site(c, "vu");
                let s2 = b.site(c, "uva");
                let a = b.host(s1, "a");
                let z = b.host(s2, "z");
                (
                    World::new(
                        b.build(),
                        NetParams::default().with_datagram_loss(0.3),
                        seed,
                    ),
                    a,
                    z,
                )
            };
            struct Burst {
                dst: Endpoint,
            }
            impl Service for Burst {
                fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                    for i in 0..100u8 {
                        ctx.send_datagram(self.dst, vec![i]);
                    }
                }
                impl_service_any!();
            }
            struct Count {
                got: Vec<u8>,
            }
            impl Service for Count {
                fn on_datagram(&mut self, _c: &mut ServiceCtx<'_>, _f: Endpoint, p: Vec<u8>) {
                    self.got.push(p[0]);
                }
                impl_service_any!();
            }
            w.add_service(z, ports::DRIVER, Count { got: vec![] });
            w.add_service(
                a,
                ports::DRIVER,
                Burst {
                    dst: Endpoint::new(z, ports::DRIVER),
                },
            );
            w.start();
            w.run_to_quiescence();
            w.service::<Count>(z, ports::DRIVER).unwrap().got.clone()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6)); // loss pattern differs across seeds
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let (mut w, _, _) = world_two_sites();
        w.start();
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.now(), SimTime::from_secs(5));
    }

    #[test]
    fn deferred_send_charges_processing_delay() {
        let (mut w, a, z) = world_two_sites();
        struct SlowSender {
            dst: Endpoint,
        }
        impl Service for SlowSender {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                let c = ctx.connect(self.dst);
                ctx.send_delayed(c, b"slow".to_vec(), SimDuration::from_millis(50));
            }
            impl_service_any!();
        }
        struct Recorder {
            got_at: Option<SimTime>,
        }
        impl Service for Recorder {
            fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, _c: ConnId, ev: ConnEvent) {
                if let ConnEvent::Msg(_) = ev {
                    self.got_at = Some(ctx.now());
                }
            }
            impl_service_any!();
        }
        w.add_service(z, ports::DRIVER, Recorder { got_at: None });
        w.add_service(
            a,
            ports::DRIVER,
            SlowSender {
                dst: Endpoint::new(z, ports::DRIVER),
            },
        );
        w.start();
        w.run_to_quiescence();
        let got = w
            .service::<Recorder>(z, ports::DRIVER)
            .unwrap()
            .got_at
            .unwrap();
        // 50 ms processing + 5 ms country latency at minimum.
        assert!(got >= SimTime::from_millis(55), "got {got}");
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn duplicate_endpoint_panics() {
        let (mut w, a, _) = world_two_sites();
        w.add_service(a, 1, Echo);
        w.add_service(a, 1, Echo);
    }
}
