//! The global consistency auditor: replays a run's operation trace
//! (the [`globe_sim::optrace`] records) against the replication
//! protocol's global specification.
//!
//! The schedule fuzzer ([`crate::fuzz`]) perturbs a world — crashes,
//! link partitions, region outages, latency jitter — and records every
//! serve, commit and client invocation. This module is the judge: it
//! re-examines the whole history after the fact and reports every
//! record that a correct run could not have produced. Five rules, each
//! a direct consequence of the paper's replication model:
//!
//! 1. **Write linearizability** — writes to one object serialize
//!    through its write master, so the committed versions of one
//!    `(object, epoch)` lineage must be strictly increasing in trace
//!    order. A duplicate version is split-brain (two masters minted the
//!    same version); a regression is a lost write.
//! 2. **Replica version monotonicity** — one representative's observed
//!    version never moves backwards while its epoch is unchanged. A
//!    crash/recovery mints a fresh epoch (the epoch nonce), so restored
//!    state legitimately restarts the count — *with* an epoch change.
//! 3. **Bounded staleness** — a read served from a copy older than the
//!    globally newest commit is legal only inside a declared regime:
//!    within a TTL cache's contract (age ≤ TTL + slack), within the
//!    propagation slack of an eager protocol, or during a declared
//!    disturbance window (faults excuse transient staleness).
//! 4. **Read your writes** — a session that completed a write and then
//!    reads the same object must observe its own write, outside
//!    disturbance windows. The TTL cache keeps this by dropping its
//!    copy on write completion; invalidation keeps it by refusing to
//!    serve an invalidated copy.
//! 5. **Convergence** — after the last disturbance (plus grace), the
//!    system has healed: client operations succeed and non-cache
//!    replicas serve fresh state again.
//!
//! The auditor is pure: records in, [`Violation`]s out. It never looks
//! at the world it audits, only at the trace — which is what lets the
//! fuzzer shrink a failing schedule and re-judge each candidate run.

use globe_sim::optrace::{OpKind, OpRecord, ReplicaRole};
use globe_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// What the auditor knows about the run's declared regimes.
#[derive(Clone, Debug)]
pub struct AuditSpec {
    /// TTL of cache-proxy copies: a cache may serve a copy that trails
    /// the master by up to this long (plus slack) by contract.
    pub cache_ttl: SimDuration,
    /// How long an eager protocol is allowed to trail the master —
    /// covers push/invalidate propagation and reconnect backoff.
    pub propagation_slack: SimDuration,
    /// Read-your-writes grace: only writes completed at least this long
    /// before a read began are required to be visible to it.
    pub ryw_slack: SimDuration,
    /// Declared disturbance windows `[from, to]` (inclusive), already
    /// padded with healing grace. Staleness and failures inside any
    /// window are excused.
    pub disturbances: Vec<(SimTime, SimTime)>,
    /// The instant the run is declared converged: client ops completing
    /// after this must succeed, and non-cache serves must be fresh.
    pub converged_after: SimTime,
}

impl AuditSpec {
    /// A spec with no disturbances and the default slacks — convergence
    /// enforced from `converged_after = SimTime::ZERO` (i.e. the whole
    /// trace must be clean). Tests and steady-state audits start here.
    pub fn strict(cache_ttl: SimDuration) -> AuditSpec {
        AuditSpec {
            cache_ttl,
            propagation_slack: SimDuration::from_secs(10),
            ryw_slack: SimDuration::from_secs(5),
            disturbances: Vec::new(),
            converged_after: SimTime::ZERO,
        }
    }

    fn disturbed(&self, t: SimTime) -> bool {
        self.disturbances.iter().any(|&(a, b)| t >= a && t <= b)
    }
}

/// One spec violation, anchored to the records that exhibit it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which rule failed (`write-linearizability`,
    /// `version-monotonicity`, `stale-read`, `read-your-writes`,
    /// `convergence`, `incomplete-session`).
    pub rule: &'static str,
    /// Virtual time of the offending record.
    pub at: SimTime,
    /// Human-readable account of what the spec expected.
    pub detail: String,
    /// Indices into the audited record slice: the offending record
    /// last, its evidence (the commits or writes it contradicts) first.
    pub slice: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.3}s] {}: {}",
            self.at.as_micros() as f64 / 1e6,
            self.rule,
            self.detail
        )
    }
}

/// Replays `records` (in trace order, as returned by
/// [`globe_sim::optrace::extract`]) against `spec` and returns every
/// violation found, ordered by time.
pub fn audit(records: &[(SimTime, OpRecord)], spec: &AuditSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    check_write_linearizability(records, &mut out);
    check_version_monotonicity(records, &mut out);
    check_staleness(records, spec, &mut out);
    check_read_your_writes(records, spec, &mut out);
    check_convergence(records, spec, &mut out);
    out.sort_by_key(|v| v.at);
    out
}

/// Rule 1: commits of one `(oid, epoch)` lineage strictly increase.
fn check_write_linearizability(records: &[(SimTime, OpRecord)], out: &mut Vec<Violation>) {
    // (oid, epoch) -> (last version, index of that commit)
    let mut last: BTreeMap<(u128, u64), (u64, usize)> = BTreeMap::new();
    for (i, (t, r)) in records.iter().enumerate() {
        let OpRecord::Commit {
            oid,
            version,
            epoch,
            host,
            port,
            ..
        } = r
        else {
            continue;
        };
        match last.get(&(*oid, *epoch)) {
            Some(&(prev, j)) if *version <= prev => out.push(Violation {
                rule: "write-linearizability",
                at: *t,
                detail: format!(
                    "object {oid:x} epoch {epoch}: commit of v{version} at h{host}:{port} \
                     after v{prev} was already committed ({})",
                    if *version == prev {
                        "split-brain: duplicate version"
                    } else {
                        "version regression: lost write"
                    }
                ),
                slice: vec![j, i],
            }),
            _ => {
                last.insert((*oid, *epoch), (*version, i));
            }
        }
    }
}

/// Rule 2: one representative's version never decreases within an
/// epoch (serves and commits both witness its local version).
fn check_version_monotonicity(records: &[(SimTime, OpRecord)], out: &mut Vec<Violation>) {
    // (oid, host, port) -> (epoch, version, index)
    let mut seen: BTreeMap<(u128, u32, u16), (u64, u64, usize)> = BTreeMap::new();
    for (i, (t, r)) in records.iter().enumerate() {
        let (oid, host, port, version, epoch) = match r {
            OpRecord::Serve {
                oid,
                host,
                port,
                version,
                epoch,
                ..
            }
            | OpRecord::Commit {
                oid,
                host,
                port,
                version,
                epoch,
                ..
            } => (*oid, *host, *port, *version, *epoch),
            _ => continue,
        };
        match seen.get(&(oid, host, port)) {
            Some(&(e, v, j)) if e == epoch && version < v => out.push(Violation {
                rule: "version-monotonicity",
                at: *t,
                detail: format!(
                    "object {oid:x} at h{host}:{port}: version went backwards \
                     v{v} -> v{version} within epoch {epoch}"
                ),
                slice: vec![j, i],
            }),
            _ => {
                seen.insert((oid, host, port), (epoch, version, i));
            }
        }
    }
}

/// Per-object commit history: `(record index, time, version)` in trace
/// order. All epochs share the list — the freshness oracle that flags a
/// serve stale compares against the globally newest commit regardless
/// of lineage, so the age computation must too.
fn commit_history(records: &[(SimTime, OpRecord)]) -> BTreeMap<u128, Vec<(usize, SimTime, u64)>> {
    let mut by_oid: BTreeMap<u128, Vec<(usize, SimTime, u64)>> = BTreeMap::new();
    for (i, (t, r)) in records.iter().enumerate() {
        if let OpRecord::Commit { oid, version, .. } = r {
            by_oid.entry(*oid).or_default().push((i, *t, *version));
        }
    }
    by_oid
}

/// How long the copy behind a stale serve had been obsolete: the time
/// since the earliest commit newer than the served version. `None`
/// when the trace shows no newer commit (the staleness is not
/// attributable from the trace alone, so the rule passes on it).
fn stale_age(
    history: &BTreeMap<u128, Vec<(usize, SimTime, u64)>>,
    oid: u128,
    served_version: u64,
    at: SimTime,
) -> Option<(SimDuration, usize)> {
    history
        .get(&oid)?
        .iter()
        .find(|&&(_, t, v)| v > served_version && t <= at)
        .map(|&(i, t, _)| (at.saturating_sub(t), i))
}

/// Rule 3: every stale serve falls inside a declared regime.
fn check_staleness(records: &[(SimTime, OpRecord)], spec: &AuditSpec, out: &mut Vec<Violation>) {
    let history = commit_history(records);
    for (i, (t, r)) in records.iter().enumerate() {
        let OpRecord::Serve {
            oid,
            host,
            port,
            role,
            version,
            oracle,
            stale,
            ..
        } = r
        else {
            continue;
        };
        if *stale == 0 || spec.disturbed(*t) {
            continue;
        }
        let Some((age, j)) = stale_age(&history, *oid, *version, *t) else {
            continue;
        };
        let bound = match role {
            ReplicaRole::Cache => spec.cache_ttl + spec.propagation_slack,
            _ => spec.propagation_slack,
        };
        if age > bound {
            out.push(Violation {
                rule: "stale-read",
                at: *t,
                detail: format!(
                    "object {oid:x}: {} at h{host}:{port} served v{version} (oracle at \
                     v{oracle}) {:.3}s after it was obsoleted — bound for the role is {:.3}s",
                    role.name(),
                    age.as_micros() as f64 / 1e6,
                    bound.as_micros() as f64 / 1e6,
                ),
                slice: vec![j, i],
            });
        }
    }
}

/// Rule 4: a completed own write is visible to the session's later
/// reads of the same object.
fn check_read_your_writes(
    records: &[(SimTime, OpRecord)],
    spec: &AuditSpec,
    out: &mut Vec<Violation>,
) {
    // (session, op) -> (begin index, begin time, oid, kind)
    let mut begins: BTreeMap<(u32, u64), (usize, SimTime, u128, OpKind)> = BTreeMap::new();
    // session -> completed writes as (oid, end time, end index)
    let mut writes: BTreeMap<u32, Vec<(u128, SimTime, usize)>> = BTreeMap::new();
    for (i, (t, r)) in records.iter().enumerate() {
        match r {
            OpRecord::Begin {
                session,
                op,
                oid,
                kind,
                ..
            } => {
                begins.insert((*session, *op), (i, *t, *oid, *kind));
            }
            OpRecord::End {
                session,
                op,
                ok,
                listing,
                own,
            } => {
                let Some(&(bi, begin, oid, kind)) = begins.get(&(*session, *op)) else {
                    continue;
                };
                match kind {
                    OpKind::Write => {
                        if *ok {
                            writes.entry(*session).or_default().push((oid, *t, i));
                        }
                    }
                    OpKind::Read => {
                        if !*ok || *listing < 0 || *own < 0 {
                            continue;
                        }
                        if spec.disturbed(begin) || spec.disturbed(*t) {
                            continue;
                        }
                        let due: Vec<&(u128, SimTime, usize)> = writes
                            .get(session)
                            .map(|w| {
                                w.iter()
                                    .filter(|(o, done, _)| {
                                        *o == oid && *done + spec.ryw_slack <= begin
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        if (*own as usize) < due.len() {
                            let mut slice: Vec<usize> = due.iter().map(|(_, _, wi)| *wi).collect();
                            slice.push(bi);
                            slice.push(i);
                            out.push(Violation {
                                rule: "read-your-writes",
                                at: *t,
                                detail: format!(
                                    "session {session} op {op}: read of object {oid:x} \
                                     observed {own} of its own {} completed writes",
                                    due.len()
                                ),
                                slice,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Rule 5: after the declared convergence point, client ops succeed
/// and non-cache replicas serve fresh state.
fn check_convergence(records: &[(SimTime, OpRecord)], spec: &AuditSpec, out: &mut Vec<Violation>) {
    let history = commit_history(records);
    for (i, (t, r)) in records.iter().enumerate() {
        if *t <= spec.converged_after {
            continue;
        }
        match r {
            OpRecord::End {
                session, op, ok, ..
            } if !*ok => out.push(Violation {
                rule: "convergence",
                at: *t,
                detail: format!(
                    "session {session} op {op} failed after the run was declared converged"
                ),
                slice: vec![i],
            }),
            OpRecord::Serve {
                oid,
                host,
                port,
                role,
                version,
                stale,
                ..
            } if *stale > 0 && *role != ReplicaRole::Cache => {
                // Grace for in-flight propagation right at the boundary.
                let recent = stale_age(&history, *oid, *version, *t)
                    .is_some_and(|(age, _)| age <= spec.propagation_slack);
                if !recent {
                    out.push(Violation {
                        rule: "convergence",
                        at: *t,
                        detail: format!(
                            "object {oid:x}: {} at h{host}:{port} still serving stale \
                             v{version} after convergence",
                            role.name()
                        ),
                        slice: vec![i],
                    });
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_sim::optrace::OpKind;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn spec() -> AuditSpec {
        AuditSpec {
            cache_ttl: SimDuration::from_secs(10),
            propagation_slack: SimDuration::from_secs(5),
            ryw_slack: SimDuration::from_secs(2),
            disturbances: Vec::new(),
            converged_after: secs(1000),
        }
    }

    fn commit(oid: u128, v: u64, e: u64, host: u32) -> OpRecord {
        OpRecord::Commit {
            oid,
            host,
            port: 700,
            role: ReplicaRole::Master,
            version: v,
            epoch: e,
        }
    }

    fn serve(oid: u128, v: u64, e: u64, host: u32, role: ReplicaRole, stale: u64) -> OpRecord {
        OpRecord::Serve {
            oid,
            host,
            port: 700,
            role,
            version: v,
            epoch: e,
            oracle: v + stale,
            fresh: u64::from(stale == 0),
            stale,
        }
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn clean_trace_passes() {
        let records = vec![
            (secs(1), commit(7, 1, 0, 0)),
            (
                secs(2),
                OpRecord::Begin {
                    session: 1,
                    op: 1,
                    oid: 7,
                    kind: OpKind::Write,
                    tag: "w-s1-1".into(),
                },
            ),
            (secs(3), commit(7, 2, 0, 0)),
            (
                secs(3),
                OpRecord::End {
                    session: 1,
                    op: 1,
                    ok: true,
                    listing: -1,
                    own: -1,
                },
            ),
            (secs(4), serve(7, 2, 0, 1, ReplicaRole::Slave, 0)),
            (
                secs(10),
                OpRecord::Begin {
                    session: 1,
                    op: 2,
                    oid: 7,
                    kind: OpKind::Read,
                    tag: String::new(),
                },
            ),
            (secs(10), serve(7, 2, 0, 1, ReplicaRole::Slave, 0)),
            (
                secs(11),
                OpRecord::End {
                    session: 1,
                    op: 2,
                    ok: true,
                    listing: 2,
                    own: 1,
                },
            ),
        ];
        assert!(audit(&records, &spec()).is_empty());
    }

    #[test]
    fn stale_read_beyond_slack_is_flagged() {
        let records = vec![
            (secs(1), commit(7, 1, 0, 0)),
            (secs(2), commit(7, 2, 0, 0)),
            // A slave serving v1 thirty seconds after v2 existed.
            (secs(32), serve(7, 1, 0, 1, ReplicaRole::Slave, 1)),
        ];
        let v = audit(&records, &spec());
        assert_eq!(rules(&v), ["stale-read"]);
        assert_eq!(v[0].slice, vec![1, 2]);

        // The same serve inside a declared disturbance window passes.
        let mut excused = spec();
        excused.disturbances.push((secs(30), secs(40)));
        assert!(audit(&records, &excused).is_empty());

        // A cache the same age passes too: 30s is inside TTL(10)+slack(5)?
        // No — but at 12s it is.
        let cached = vec![
            (secs(1), commit(7, 1, 0, 0)),
            (secs(2), commit(7, 2, 0, 0)),
            (secs(14), serve(7, 1, 0, 1, ReplicaRole::Cache, 1)),
        ];
        assert!(audit(&cached, &spec()).is_empty());
    }

    #[test]
    fn version_regression_within_epoch_is_flagged() {
        let records = vec![
            (secs(1), serve(7, 5, 1, 2, ReplicaRole::Slave, 0)),
            (secs(2), serve(7, 3, 1, 2, ReplicaRole::Slave, 0)),
        ];
        assert_eq!(rules(&audit(&records, &spec())), ["version-monotonicity"]);

        // Same regression across an epoch splice (crash/recovery minted
        // a new lineage) is legitimate.
        let spliced = vec![
            (secs(1), serve(7, 5, 1, 2, ReplicaRole::Slave, 0)),
            (secs(2), serve(7, 3, 2, 2, ReplicaRole::Slave, 0)),
        ];
        assert!(audit(&spliced, &spec()).is_empty());
    }

    #[test]
    fn duplicate_commit_is_split_brain() {
        let records = vec![
            (secs(1), commit(7, 1, 0, 0)),
            (secs(2), commit(7, 2, 0, 0)),
            (secs(3), commit(7, 2, 0, 3)),
        ];
        let v = audit(&records, &spec());
        assert_eq!(rules(&v), ["write-linearizability"]);
        assert!(v[0].detail.contains("split-brain"));

        // The same version minted under a fresh epoch is a recovery.
        let recovered = vec![
            (secs(1), commit(7, 1, 0, 0)),
            (secs(2), commit(7, 2, 0, 0)),
            (secs(3), commit(7, 2, 1, 3)),
        ];
        assert!(audit(&recovered, &spec()).is_empty());
    }

    #[test]
    fn read_your_writes_break_is_flagged() {
        let records = vec![
            (
                secs(1),
                OpRecord::Begin {
                    session: 4,
                    op: 1,
                    oid: 9,
                    kind: OpKind::Write,
                    tag: "w-s4-1".into(),
                },
            ),
            (
                secs(2),
                OpRecord::End {
                    session: 4,
                    op: 1,
                    ok: true,
                    listing: -1,
                    own: -1,
                },
            ),
            (
                secs(20),
                OpRecord::Begin {
                    session: 4,
                    op: 2,
                    oid: 9,
                    kind: OpKind::Read,
                    tag: String::new(),
                },
            ),
            (
                secs(21),
                OpRecord::End {
                    session: 4,
                    op: 2,
                    ok: true,
                    listing: 3,
                    own: 0,
                },
            ),
        ];
        let v = audit(&records, &spec());
        assert_eq!(rules(&v), ["read-your-writes"]);
        // Evidence: the write's End, the read's Begin, the read's End.
        assert_eq!(v[0].slice, vec![1, 2, 3]);

        // Excused inside a disturbance window.
        let mut excused = spec();
        excused.disturbances.push((secs(19), secs(25)));
        assert!(audit(&records, &excused).is_empty());
    }

    #[test]
    fn recent_write_is_not_due_yet() {
        // The read begins 1s after the write completed — inside the
        // 2s ryw_slack, so invisibility is tolerated.
        let records = vec![
            (
                secs(1),
                OpRecord::Begin {
                    session: 4,
                    op: 1,
                    oid: 9,
                    kind: OpKind::Write,
                    tag: "w-s4-1".into(),
                },
            ),
            (
                secs(2),
                OpRecord::End {
                    session: 4,
                    op: 1,
                    ok: true,
                    listing: -1,
                    own: -1,
                },
            ),
            (
                secs(3),
                OpRecord::Begin {
                    session: 4,
                    op: 2,
                    oid: 9,
                    kind: OpKind::Read,
                    tag: String::new(),
                },
            ),
            (
                secs(3),
                OpRecord::End {
                    session: 4,
                    op: 2,
                    ok: true,
                    listing: 3,
                    own: 0,
                },
            ),
        ];
        assert!(audit(&records, &spec()).is_empty());
    }

    #[test]
    fn non_convergence_is_flagged() {
        let s = spec(); // converged_after = 1000s
        let records = vec![
            (secs(1), commit(7, 1, 0, 0)),
            (secs(2), commit(7, 2, 0, 0)),
            // A failed op and a still-stale slave, both post-convergence.
            (
                secs(1001),
                OpRecord::End {
                    session: 2,
                    op: 9,
                    ok: false,
                    listing: -1,
                    own: -1,
                },
            ),
            (secs(1002), serve(7, 1, 0, 1, ReplicaRole::Slave, 1)),
        ];
        let v = audit(&records, &s);
        let mut got = rules(&v);
        got.sort_unstable();
        // The post-convergence stale serve trips both the staleness
        // rule and the convergence rule; the failed op trips one.
        assert_eq!(got, ["convergence", "convergence", "stale-read"]);

        // The identical failures before the convergence point are the
        // stale-read rule's business alone.
        let early = vec![
            (secs(1), commit(7, 1, 0, 0)),
            (secs(2), commit(7, 2, 0, 0)),
            (
                secs(50),
                OpRecord::End {
                    session: 2,
                    op: 9,
                    ok: false,
                    listing: -1,
                    own: -1,
                },
            ),
        ];
        assert!(audit(&early, &s).is_empty());

        // A cache serving within its TTL stays legal after convergence.
        let cached = vec![
            (secs(1), commit(7, 1, 0, 0)),
            (secs(999), commit(7, 2, 0, 0)),
            (secs(1005), serve(7, 1, 0, 1, ReplicaRole::Cache, 1)),
        ];
        assert!(audit(&cached, &s).is_empty());
    }
}
