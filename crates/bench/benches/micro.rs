//! Criterion micro-benchmarks of the substrate hot paths: the
//! cryptographic primitives behind gTLS (experiment E5's cost model is
//! calibrated against 1990s hardware; these numbers document what the
//! *host* machine actually does), wire-format round trips, GLS routing
//! and simulation-kernel primitives.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use globe_crypto::cert::{CertAuthority, Credentials, Role};
use globe_crypto::chacha20::chacha20_xor;
use globe_crypto::gtls::{Mode, TlsConfig, TlsSession};
use globe_crypto::hmac::hmac_sha256;
use globe_crypto::sha256::sha256;
use globe_crypto::sig::{keygen_from_seed, sign, verify};
use globe_gls::{ContactAddress, ObjectId};
use globe_net::tcp::{frame, frame_into};
use globe_net::{Endpoint, HostId, Payload};
use globe_sim::{EventQueue, Histogram, Rng, SimDuration, SimTime};
use globe_workloads::ZipfSampler;

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    for size in [1usize << 10, 64 << 10] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}"), |b| b.iter(|| sha256(&data)));
        g.bench_function(format!("hmac_sha256/{size}"), |b| {
            b.iter(|| hmac_sha256(b"key", &data))
        });
    }
    g.finish();
}

fn bench_cipher(c: &mut Criterion) {
    let mut g = c.benchmark_group("cipher");
    let size = 64usize << 10;
    g.throughput(Throughput::Bytes(size as u64));
    g.bench_function("chacha20/65536", |b| {
        b.iter_batched(
            || vec![0u8; size],
            |mut data| chacha20_xor(&[7u8; 32], &[1u8; 12], 0, &mut data),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let (sk, pk) = keygen_from_seed(1);
    let msg = b"create replica of /apps/graphics/gimp";
    let sig = sign(&sk, msg);
    c.bench_function("schnorr/sign", |b| b.iter(|| sign(&sk, msg)));
    c.bench_function("schnorr/verify", |b| b.iter(|| verify(&pk, msg, &sig)));
}

fn bench_gtls_handshake(c: &mut Criterion) {
    let ca = CertAuthority::new("bench-root", 1);
    let server = Credentials::issue(&ca, "gos", Role::Host, 2);
    let client = Credentials::issue(&ca, "mod", Role::Moderator, 3);
    let roots = vec![ca.root_cert().clone()];
    c.bench_function("gtls/mutual_handshake", |b| {
        b.iter(|| {
            let mut rng = Rng::new(9);
            let (mut cs, hello) = TlsSession::client(
                TlsConfig::mutual(Mode::AuthEncrypt, client.clone(), roots.clone()),
                &mut rng,
            )
            .expect("client");
            let mut ss = TlsSession::server(TlsConfig::mutual(
                Mode::AuthEncrypt,
                server.clone(),
                roots.clone(),
            ));
            let out = ss.on_message(&hello, &mut rng).expect("sh");
            let out = cs.on_message(&out.replies[0], &mut rng).expect("cf");
            ss.on_message(&out.replies[0], &mut rng).expect("fin")
        })
    });
}

fn bench_gtls_records(c: &mut Criterion) {
    let ca = CertAuthority::new("bench-root", 1);
    let server = Credentials::issue(&ca, "gos", Role::Host, 2);
    let roots = vec![ca.root_cert().clone()];
    let mut g = c.benchmark_group("gtls_record");
    for mode in [Mode::Null, Mode::AuthOnly, Mode::AuthEncrypt] {
        let mut rng = Rng::new(9);
        let (mut cs, hello) =
            TlsSession::client(TlsConfig::client(mode, roots.clone()), &mut rng).expect("client");
        let mut ss = if mode == Mode::Null {
            TlsSession::server(TlsConfig::null())
        } else {
            TlsSession::server(TlsConfig::server_auth(mode, server.clone(), roots.clone()))
        };
        let out = ss.on_message(&hello, &mut rng).expect("sh");
        let out = cs
            .on_message(&out.replies[0], &mut rng)
            .expect("established");
        for reply in out.replies {
            ss.on_message(&reply, &mut rng).expect("cf");
        }
        let payload = vec![0u8; 16 << 10];
        g.throughput(Throughput::Bytes(payload.len() as u64));
        g.bench_function(format!("seal/{}", mode.name()), |b| {
            b.iter(|| cs.seal(&payload).expect("seal"))
        });
    }
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    use globe_gls::proto::GlsMsg;
    let msg = GlsMsg::LookupResp {
        req: 7,
        status: globe_gls::proto::Status::Ok,
        addrs: vec![
            ContactAddress::new(Endpoint::new(HostId(1), 700), 2, 1),
            ContactAddress::new(Endpoint::new(HostId(9), 700), 2, 0),
        ],
        hops: 4,
    };
    let encoded = msg.encode();
    c.bench_function("wire/gls_encode", |b| b.iter(|| msg.encode()));
    c.bench_function("wire/gls_decode", |b| {
        b.iter(|| GlsMsg::decode(&encoded).expect("decode"))
    });
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel/zipf_sample", |b| {
        let z = ZipfSampler::new(10_000, 0.9);
        let mut rng = Rng::new(4);
        b.iter(|| z.sample(&mut rng))
    });
    c.bench_function("kernel/histogram_record", |b| {
        let mut h = Histogram::new();
        let mut rng = Rng::new(5);
        b.iter(|| h.record(rng.gen_range(1..1_000_000)))
    });
    c.bench_function("kernel/oid_subnode_index", |b| {
        let oid = ObjectId(0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF);
        b.iter(|| oid.subnode_index(8))
    });
}

/// The [`EventQueue`] hot paths the world engine leans on: the timer
/// wheel for near-future events (per-hop delivery delays, send-tail CPU
/// queues — the dominant schedule pattern) and the heap fallback for
/// far-future timers. Each iteration schedules and drains a batch, so
/// the number reflects a full schedule→pop cycle on that path.
fn bench_event_queue(c: &mut Criterion) {
    const BATCH: usize = 256;
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(BATCH as u64));

    // Near-future: delays inside the wheel horizon, the broadcast /
    // request-reply pattern the engine bench drives.
    g.bench_function(format!("wheel_schedule_pop/{BATCH}"), |b| {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            for i in 0..BATCH {
                q.schedule(
                    now + SimDuration::from_micros(50 + (i as u64 % 7) * 400),
                    i as u32,
                );
            }
            while let Some((t, _)) = q.pop() {
                now = t;
            }
            now
        })
    });

    // Far-future: delays past the wheel horizon land in the heap and
    // migrate toward the wheel as time advances.
    g.bench_function(format!("heap_schedule_pop/{BATCH}"), |b| {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            for i in 0..BATCH {
                q.schedule(
                    now + SimDuration::from_secs(3600 + (i as u64 % 7) * 60),
                    i as u32,
                );
            }
            while let Some((t, _)) = q.pop() {
                now = t;
            }
            now
        })
    });
    g.finish();
}

/// Frame encode + extract round trip: the TCP backend's receive path —
/// one chunk holding many length-prefixed frames, each extracted as an
/// O(1) [`Payload`] window rather than a copy. `frame_into` reuses the
/// caller's scratch buffer the way `TcpTransport::send_stream` does.
fn bench_frame_round_trip(c: &mut Criterion) {
    const FRAMES: usize = 64;
    const MSG: usize = 256;
    let msg = vec![0xA5u8; MSG];
    let mut g = c.benchmark_group("frame");
    g.throughput(Throughput::Bytes((FRAMES * (4 + MSG)) as u64));
    g.bench_function(format!("encode_extract/{FRAMES}x{MSG}B"), |b| {
        let mut chunk: Vec<u8> = Vec::with_capacity(FRAMES * (4 + MSG));
        b.iter(|| {
            chunk.clear();
            for _ in 0..FRAMES {
                frame_into(&mut chunk, &msg);
            }
            let received = Payload::from(std::mem::take(&mut chunk));
            let mut off = 0usize;
            let mut frames = 0usize;
            while received.len() - off >= 4 {
                let rest = &received[off..];
                let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                if rest.len() < 4 + len {
                    break;
                }
                let payload = received.slice(off + 4, off + 4 + len);
                assert_eq!(payload.len(), MSG);
                off += 4 + len;
                frames += 1;
            }
            assert_eq!(frames, FRAMES);
            chunk = Vec::with_capacity(FRAMES * (4 + MSG));
            frames
        })
    });
    g.bench_function("encode_alloc/1x256B", |b| b.iter(|| frame(&msg)));
    g.finish();
}

/// N-way multicast fan-out: one encoded frame to N receivers. The
/// [`Payload`] path is N reference-count bumps; the `Vec` path it
/// replaced was N full copies. Both are measured so the gap itself is
/// the documented number.
fn bench_multicast_sharing(c: &mut Criterion) {
    const RECEIVERS: usize = 32;
    const SIZE: usize = 4096;
    let mut g = c.benchmark_group("multicast");
    g.throughput(Throughput::Elements(RECEIVERS as u64));
    let payload = Payload::from(vec![0x5Au8; SIZE]);
    g.bench_function(format!("payload_clone/{RECEIVERS}x{SIZE}B"), |b| {
        b.iter(|| {
            let fanned: Vec<Payload> = (0..RECEIVERS).map(|_| payload.clone()).collect();
            fanned.len()
        })
    });
    let owned = vec![0x5Au8; SIZE];
    g.bench_function(format!("vec_clone/{RECEIVERS}x{SIZE}B"), |b| {
        b.iter(|| {
            let fanned: Vec<Vec<u8>> = (0..RECEIVERS).map(|_| owned.clone()).collect();
            fanned.len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_cipher,
    bench_signatures,
    bench_gtls_handshake,
    bench_gtls_records,
    bench_wire,
    bench_kernel,
    bench_event_queue,
    bench_frame_round_trip,
    bench_multicast_sharing
);
criterion_main!(benches);
