//! A worldwide mirror network: the paper's motivating scenario.
//!
//! Linux-distribution-sized packages are published once, replicated into
//! every region (master/slave), and then hammered by users everywhere.
//! Compare the wide-area traffic and response times against a
//! central-server run of the same workload — the paper's argument for
//! replication (§3.1) in one program.
//!
//! Run with: `cargo run --release --example mirror_network`

use globe::gdn::{GdnDeployment, GdnOptions, ModEvent, ModOp, ModeratorTool, Scenario};
use globe::net::{ports, HostId, NetParams, Topology, World};
use globe::rts::PropagationMode;
use globe::sim::{SimDuration, SimTime};
use globe::workloads::{window_stats, HttpLoadGen};

fn run(replicated: bool) -> (f64, f64, u64) {
    let topo = Topology::grid(3, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), 7);
    let gdn = GdnDeployment::install(&mut world, GdnOptions::default());

    // One GOS per region hosts the replicas; packages live in region 0.
    let region_primaries: Vec<_> = (0..3)
        .map(|r| {
            let host = world
                .topology()
                .hosts()
                .find(|&h| world.topology().region_of_host(h).0 == r)
                .expect("region has hosts");
            gdn.gos_for(world.topology(), host)
        })
        .collect();
    let scenario = if replicated {
        Scenario::master_slave(region_primaries.clone(), PropagationMode::PushState)
    } else {
        Scenario::single(region_primaries[0])
    };
    let packages: Vec<ModOp> = (0..5)
        .map(|i| ModOp::Publish {
            name: format!("/os/linux/dist{i}"),
            description: format!("distribution {i}"),
            files: vec![("pkg.tar".into(), vec![i as u8; 512 * 1024])],
            scenario: scenario.clone(),
        })
        .collect();
    let tool = gdn.moderator_tool(world.topology(), HostId(1), "alice", packages);
    world.add_service(HostId(1), ports::DRIVER, tool);
    world.start();
    loop {
        world.run_for(SimDuration::from_secs(10));
        let t = world
            .service::<ModeratorTool>(HostId(1), ports::DRIVER)
            .expect("tool");
        if t.results.len() == 5 {
            assert!(t
                .results
                .iter()
                .all(|r| matches!(r, ModEvent::PublishDone { result: Ok(_), .. })));
            break;
        }
        assert!(world.now() < SimTime::from_secs(600), "publish stalled");
    }

    let t0 = world.now();
    let wan0 = wan(&world);
    let names: Vec<String> = (0..5).map(|i| format!("/os/linux/dist{i}")).collect();
    let until = t0 + SimDuration::from_secs(180);
    // One user population per site.
    let gen_hosts: Vec<HostId> = world
        .topology()
        .sites()
        .filter_map(|s| world.topology().hosts_in_site(s).last().copied())
        .collect();
    for h in &gen_hosts {
        let httpd = gdn.httpd_for(world.topology(), *h);
        world.add_service(
            *h,
            ports::DRIVER + 1,
            HttpLoadGen::new(httpd, names.clone(), 0.8, 0.2, until, true),
        );
    }
    world.run_until(until + SimDuration::from_secs(60));

    let mut samples = Vec::new();
    for h in &gen_hosts {
        samples.extend(
            world
                .service::<HttpLoadGen>(*h, ports::DRIVER + 1)
                .expect("gen")
                .samples
                .clone(),
        );
    }
    let w = window_stats(&samples, t0, until);
    (w.median_ms, w.mean_ms, wan(&world) - wan0)
}

fn wan(world: &World) -> u64 {
    let m = world.metrics();
    m.counter("net.bytes.country") + m.counter("net.bytes.region") + m.counter("net.bytes.world")
}

fn main() {
    println!("mirror network: 5 packages x 512 KiB, 12 user sites, 3 regions\n");
    let (med_c, mean_c, wan_c) = run(false);
    let (med_r, mean_r, wan_r) = run(true);
    println!("| deployment | median ms | mean ms | WAN MB |");
    println!("|---|---|---|---|");
    println!(
        "| central server | {med_c:.1} | {mean_c:.1} | {:.1} |",
        wan_c as f64 / 1e6
    );
    println!(
        "| replica per region | {med_r:.1} | {mean_r:.1} | {:.1} |",
        wan_r as f64 / 1e6
    );
    assert!(
        med_r < med_c,
        "replication must cut the median response time"
    );
    println!(
        "\nreplication wins: median response {:.1}x lower",
        med_c / med_r.max(0.001)
    );
}
