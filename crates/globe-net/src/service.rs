//! The service programming model shared by every transport backend.
//!
//! Services are event-driven daemons (the classic structure of the era's
//! network servers): they react to datagrams, stream events and timers,
//! and issue commands through a [`ServiceCtx`]. Commands accumulate in an
//! outbox while a handler runs and are applied by the backend afterwards —
//! the *effects pattern* — so a handler can never observe or mutate
//! in-flight network state. Because services only ever see a
//! [`ServiceCtx`], the same unmodified service code runs under the
//! deterministic simulated [`crate::World`] and under the real-socket
//! [`crate::TcpTransport`].

use std::any::Any;
use std::collections::BTreeMap;

use globe_sim::{Metrics, Rng, SimDuration, SimTime, TraceLevel, TraceLog};

use crate::payload::Payload;
use crate::topology::Topology;
use crate::transport::{ConnEvent, ConnId, Endpoint, TimerId};

/// A daemon bound to one `(host, port)` endpoint.
///
/// All methods have no-op defaults except the `Any` plumbing, which the
/// [`impl_service_any!`](crate::impl_service_any) macro writes for you.
///
/// Restart semantics: the service value itself survives a host crash (it
/// plays the role of "the program on disk"), but `on_crash` /
/// `on_restart` must treat all in-memory state as lost — reload anything
/// durable from stable storage ([`ServiceCtx::stable_get`]).
pub trait Service: 'static {
    /// Called once when the transport starts (or when the service is
    /// added to an already-started transport).
    fn on_start(&mut self, _ctx: &mut ServiceCtx<'_>) {}
    /// A datagram arrived from `from`.
    fn on_datagram(&mut self, _ctx: &mut ServiceCtx<'_>, _from: Endpoint, _payload: Vec<u8>) {}
    /// Something happened on stream connection `conn`.
    fn on_conn_event(&mut self, _ctx: &mut ServiceCtx<'_>, _conn: ConnId, _ev: ConnEvent) {}
    /// A timer set through [`ServiceCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut ServiceCtx<'_>, _token: u64) {}
    /// The host crashed. No network effects are possible; volatile state
    /// should be considered lost.
    fn on_crash(&mut self, _now: SimTime) {}
    /// The host came back up. Reload state from stable storage here.
    fn on_restart(&mut self, _ctx: &mut ServiceCtx<'_>) {}
    /// Downcast support (see [`crate::impl_service_any`]).
    fn as_any(&self) -> &dyn Any;
    /// Downcast support (see [`crate::impl_service_any`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Builds a timer token in namespace `ns` (upper 16 bits).
///
/// Embedded protocol helpers (GLS clients, DNS stubs, replication
/// subobjects) share their owning service's timer-token space; the
/// namespace convention keeps them apart. Ids are masked to 48 bits.
pub const fn ns_token(ns: u16, id: u64) -> u64 {
    ((ns as u64) << 48) | (id & 0xFFFF_FFFF_FFFF)
}

/// Whether `token` belongs to namespace `ns` (see [`ns_token`]).
pub const fn owns_token(ns: u16, token: u64) -> bool {
    (token >> 48) as u16 == ns
}

/// Extracts the 48-bit id from a namespaced token (see [`ns_token`]).
pub const fn token_id(token: u64) -> u64 {
    token & 0xFFFF_FFFF_FFFF
}

/// Writes the two `Any` plumbing methods required by [`Service`].
#[macro_export]
macro_rules! impl_service_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}

/// Commands a service issues during a handler, applied afterwards by the
/// transport backend.
#[derive(Debug)]
pub(crate) enum Effect {
    Datagram {
        dst: Endpoint,
        payload: Vec<u8>,
    },
    Open {
        conn: ConnId,
        dst: Endpoint,
    },
    Send {
        conn: ConnId,
        msg: Payload,
    },
    Close {
        conn: ConnId,
    },
    Timer {
        id: TimerId,
        delay: SimDuration,
        token: u64,
    },
    CancelTimer(TimerId),
    /// A send that becomes visible to the network only after `delay` —
    /// models local processing time (e.g. virtual CPU spent on
    /// cryptography) before the bytes hit the wire.
    DeferredSend {
        conn: ConnId,
        msg: Payload,
        delay: SimDuration,
    },
    DeferredDatagram {
        dst: Endpoint,
        payload: Vec<u8>,
        delay: SimDuration,
    },
}

/// The view a service handler has of its transport.
///
/// All network operations are asynchronous commands; stable storage is
/// synchronous (it models the local disk).
pub struct ServiceCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) me: Endpoint,
    pub(crate) topo: &'a Topology,
    pub(crate) rng: &'a mut Rng,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) trace: &'a mut TraceLog,
    pub(crate) stable: &'a mut BTreeMap<String, Vec<u8>>,
    pub(crate) effects: Vec<Effect>,
    pub(crate) next_conn: &'a mut u64,
    pub(crate) next_timer: &'a mut u64,
}

impl<'a> ServiceCtx<'a> {
    /// Current time. Virtual under the simulated world, wall-clock
    /// (relative to process start) under the TCP backend.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The endpoint this service is bound to.
    pub fn me(&self) -> Endpoint {
        self.me
    }

    /// The network topology (read-only). Services may use it to reason
    /// about locality, standing in for the IP-geography knowledge real
    /// deployments configure statically.
    pub fn topo(&self) -> &Topology {
        self.topo
    }

    /// This service's private random stream.
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// The transport-wide metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Whether trace entries at `level` are currently recorded. Layers
    /// that build structured trace messages (e.g. the op-trace records
    /// the fuzz auditor consumes) check this before formatting.
    pub fn trace_enabled(&self, level: TraceLevel) -> bool {
        self.trace.enabled(level)
    }

    /// Records an info-level trace entry.
    pub fn trace_info(&mut self, component: &'static str, message: String) {
        self.trace
            .log(self.now, TraceLevel::Info, component, message);
    }

    /// Records a debug-level trace entry.
    pub fn trace_debug(&mut self, component: &'static str, message: String) {
        if self.trace.enabled(TraceLevel::Debug) {
            self.trace
                .log(self.now, TraceLevel::Debug, component, message);
        }
    }

    /// Sends an unreliable datagram to `dst`.
    pub fn send_datagram(&mut self, dst: Endpoint, payload: Vec<u8>) {
        self.effects.push(Effect::Datagram { dst, payload });
    }

    /// Starts opening a stream connection to `dst`.
    ///
    /// The returned id is valid immediately; messages may be sent on it
    /// right away (they are queued behind the handshake). The connection
    /// is confirmed by [`ConnEvent::Opened`] or fails with
    /// [`ConnEvent::Closed`].
    pub fn connect(&mut self, dst: Endpoint) -> ConnId {
        let conn = ConnId(*self.next_conn);
        *self.next_conn += 1;
        self.effects.push(Effect::Open { conn, dst });
        conn
    }

    /// Sends one message on a stream connection. Messages sent on a
    /// closed or unknown connection are dropped (the sender has already
    /// received, or will receive, a `Closed` event).
    ///
    /// Accepts anything convertible to [`Payload`]; passing a `Vec<u8>`
    /// moves the bytes without copying, and passing a `Payload` clone
    /// shares them (the multicast fast path).
    pub fn send(&mut self, conn: ConnId, msg: impl Into<Payload>) {
        self.effects.push(Effect::Send {
            conn,
            msg: msg.into(),
        });
    }

    /// Like [`ServiceCtx::send`], but the message reaches the wire only
    /// after `delay` of local processing time. Used to charge virtual CPU
    /// cost (e.g. for cryptographic work) to the timeline.
    pub fn send_delayed(&mut self, conn: ConnId, msg: impl Into<Payload>, delay: SimDuration) {
        let msg = msg.into();
        if delay == SimDuration::ZERO {
            self.effects.push(Effect::Send { conn, msg });
        } else {
            self.effects.push(Effect::DeferredSend { conn, msg, delay });
        }
    }

    /// Like [`ServiceCtx::send_datagram`], but delayed by local
    /// processing time first.
    pub fn send_datagram_delayed(&mut self, dst: Endpoint, payload: Vec<u8>, delay: SimDuration) {
        if delay == SimDuration::ZERO {
            self.effects.push(Effect::Datagram { dst, payload });
        } else {
            self.effects.push(Effect::DeferredDatagram {
                dst,
                payload,
                delay,
            });
        }
    }

    /// Closes a stream connection; the peer receives
    /// [`ConnEvent::Closed`] with
    /// [`CloseReason::Normal`](crate::CloseReason::Normal) after any
    /// in-flight messages.
    pub fn close(&mut self, conn: ConnId) {
        self.effects.push(Effect::Close { conn });
    }

    /// Schedules [`Service::on_timer`] to run after `delay` with `token`.
    /// Timers are lost if the host crashes before they fire.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::Timer { id, delay, token });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Writes a key to this host's stable storage (survives crashes).
    pub fn stable_put(&mut self, key: &str, value: Vec<u8>) {
        self.stable.insert(key.to_owned(), value);
    }

    /// Reads a key from this host's stable storage.
    pub fn stable_get(&self, key: &str) -> Option<&Vec<u8>> {
        self.stable.get(key)
    }

    /// Deletes a key from this host's stable storage.
    pub fn stable_delete(&mut self, key: &str) {
        self.stable.remove(key);
    }

    /// Returns all stable-storage keys starting with `prefix`, in order.
    pub fn stable_keys(&self, prefix: &str) -> Vec<String> {
        self.stable
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }
}

/// The per-service random stream, derived from the address rather than
/// insertion order so adding services in a different order cannot change
/// anyone's samples. Both backends use the same derivation, so a service
/// sees the same stream whether it runs simulated or on real sockets.
pub(crate) fn service_rng_stream(host: u32, port: u16, seed: u64) -> u64 {
    (host as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(port as u64)
        .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ seed
}
