//! Certificates and a one-level certification authority.
//!
//! The paper's security design (§6.3) rests on knowing *which host* is on
//! the other end of a channel: GDN hosts authenticate mutually, user-facing
//! channels authenticate the server only. This module provides the
//! identity layer: a certificate binds a subject name (e.g.
//! `"gos.vu.nl"` or `"moderator:alice"`) and a role to a public key,
//! signed by the GDN certification authority.
//!
//! The chain model is deliberately one level (root CA → leaf), matching
//! the paper's centrally administered deployment where the Globe team
//! hands out moderator credentials.

use std::error::Error;
use std::fmt;

use globe_net::{WireError, WireReader, WireWriter};

use crate::sig::{sign, verify, PublicKey, SecretKey, Signature};

/// The role a certificate grants its subject within the GDN.
///
/// Paper §2: users retrieve; moderators create/update/remove packages;
/// administrators control the application; maintainers (a planned fourth
/// group) manage the contents of specific packages.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Role {
    /// A GDN host: object servers, HTTPDs, location/name service nodes.
    Host,
    /// May create, update and remove packages (paper §2).
    Moderator,
    /// Complete control; hands out moderator privileges.
    Administrator,
    /// May manage the contents of packages assigned to them.
    Maintainer,
}

impl Role {
    fn tag(self) -> u8 {
        match self {
            Role::Host => 0,
            Role::Moderator => 1,
            Role::Administrator => 2,
            Role::Maintainer => 3,
        }
    }

    fn from_tag(t: u8) -> Result<Role, CertError> {
        Ok(match t {
            0 => Role::Host,
            1 => Role::Moderator,
            2 => Role::Administrator,
            3 => Role::Maintainer,
            other => return Err(CertError::Wire(WireError::BadTag(other))),
        })
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Host => write!(f, "host"),
            Role::Moderator => write!(f, "moderator"),
            Role::Administrator => write!(f, "administrator"),
            Role::Maintainer => write!(f, "maintainer"),
        }
    }
}

/// Errors from certificate validation and decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// The signature over the certificate body does not verify.
    BadSignature,
    /// The issuer is not one of the trusted roots.
    UntrustedIssuer(String),
    /// Decoding failed.
    Wire(WireError),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadSignature => write!(f, "certificate signature invalid"),
            CertError::UntrustedIssuer(s) => write!(f, "untrusted issuer {s:?}"),
            CertError::Wire(e) => write!(f, "certificate encoding: {e}"),
        }
    }
}

impl Error for CertError {}

impl From<WireError> for CertError {
    fn from(e: WireError) -> Self {
        CertError::Wire(e)
    }
}

/// A certificate: `(subject, role, public key)` signed by an issuer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// The identity being certified, e.g. `"gos-1.vu.nl"`.
    pub subject: String,
    /// The privileges the GDN grants this identity.
    pub role: Role,
    /// The subject's public key.
    pub public_key: PublicKey,
    /// Name of the issuing authority.
    pub issuer: String,
    /// Issuer's signature over the to-be-signed bytes.
    pub signature: Signature,
}

impl Certificate {
    /// The bytes covered by the issuer's signature.
    fn tbs_bytes(subject: &str, role: Role, public_key: PublicKey, issuer: &str) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_str("globe-cert-v1");
        w.put_str(subject);
        w.put_u8(role.tag());
        w.put_u64(public_key.0);
        w.put_str(issuer);
        w.finish()
    }

    /// Serializes the certificate.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_str(&self.subject);
        w.put_u8(self.role.tag());
        w.put_u64(self.public_key.0);
        w.put_str(&self.issuer);
        w.put_u64(self.signature.e);
        w.put_u64(self.signature.s);
        w.finish()
    }

    /// Deserializes a certificate.
    pub fn decode(buf: &[u8]) -> Result<Certificate, CertError> {
        let mut r = WireReader::new(buf);
        let subject = r.str()?.to_owned();
        let role = Role::from_tag(r.u8()?)?;
        let public_key = PublicKey(r.u64()?);
        let issuer = r.str()?.to_owned();
        let signature = Signature {
            e: r.u64()?,
            s: r.u64()?,
        };
        r.expect_end()?;
        Ok(Certificate {
            subject,
            role,
            public_key,
            issuer,
            signature,
        })
    }

    /// Validates this certificate against a set of trusted root
    /// certificates (one-level chain: the issuer must be a root, or the
    /// certificate must be a root itself).
    pub fn verify_against(&self, roots: &[Certificate]) -> Result<(), CertError> {
        let tbs = Self::tbs_bytes(&self.subject, self.role, self.public_key, &self.issuer);
        // Self-signed root presented directly: must byte-match a trusted root.
        if self.issuer == self.subject {
            if roots.iter().any(|r| r == self) && verify(&self.public_key, &tbs, &self.signature) {
                return Ok(());
            }
            return Err(CertError::UntrustedIssuer(self.issuer.clone()));
        }
        let Some(root) = roots.iter().find(|r| r.subject == self.issuer) else {
            return Err(CertError::UntrustedIssuer(self.issuer.clone()));
        };
        if verify(&root.public_key, &tbs, &self.signature) {
            Ok(())
        } else {
            Err(CertError::BadSignature)
        }
    }
}

/// A certification authority that can issue GDN certificates.
///
/// # Examples
///
/// ```
/// use globe_crypto::cert::{CertAuthority, Role};
/// use globe_crypto::sig::keygen_from_seed;
///
/// let ca = CertAuthority::new("gdn-root", 7);
/// let (_sk, pk) = keygen_from_seed(99);
/// let cert = ca.issue("gos-1.vu.nl", Role::Host, pk);
/// cert.verify_against(&[ca.root_cert().clone()]).unwrap();
/// ```
pub struct CertAuthority {
    name: String,
    secret: SecretKey,
    root: Certificate,
}

impl CertAuthority {
    /// Creates an authority with a deterministic key derived from `seed`.
    pub fn new(name: &str, seed: u64) -> CertAuthority {
        let (secret, public) = crate::sig::keygen_from_seed(seed ^ 0x0043_415f_524f_4f54);
        let tbs = Certificate::tbs_bytes(name, Role::Administrator, public, name);
        let signature = sign(&secret, &tbs);
        CertAuthority {
            name: name.to_owned(),
            secret,
            root: Certificate {
                subject: name.to_owned(),
                role: Role::Administrator,
                public_key: public,
                issuer: name.to_owned(),
                signature,
            },
        }
    }

    /// The authority's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The self-signed root certificate to distribute as a trust anchor.
    pub fn root_cert(&self) -> &Certificate {
        &self.root
    }

    /// Issues a certificate binding `(subject, role)` to `public_key`.
    pub fn issue(&self, subject: &str, role: Role, public_key: PublicKey) -> Certificate {
        let tbs = Certificate::tbs_bytes(subject, role, public_key, &self.name);
        Certificate {
            subject: subject.to_owned(),
            role,
            public_key,
            issuer: self.name.clone(),
            signature: sign(&self.secret, &tbs),
        }
    }
}

/// A convenience bundle: an identity's certificate plus its secret key.
#[derive(Clone)]
pub struct Credentials {
    /// The public certificate.
    pub cert: Certificate,
    /// The matching secret key.
    pub secret: SecretKey,
}

impl Credentials {
    /// Issues fresh credentials from `ca` with a key derived from `seed`.
    pub fn issue(ca: &CertAuthority, subject: &str, role: Role, seed: u64) -> Credentials {
        let (secret, public) = crate::sig::keygen_from_seed(seed);
        Credentials {
            cert: ca.issue(subject, role, public),
            secret,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::keygen_from_seed;

    #[test]
    fn issue_and_verify() {
        let ca = CertAuthority::new("gdn-root", 1);
        let (_, pk) = keygen_from_seed(5);
        let cert = ca.issue("host-a", Role::Host, pk);
        assert!(cert.verify_against(&[ca.root_cert().clone()]).is_ok());
    }

    #[test]
    fn reject_unknown_issuer() {
        let ca = CertAuthority::new("gdn-root", 1);
        let rogue = CertAuthority::new("rogue-root", 2);
        let (_, pk) = keygen_from_seed(5);
        let cert = rogue.issue("host-a", Role::Host, pk);
        assert_eq!(
            cert.verify_against(&[ca.root_cert().clone()]),
            Err(CertError::UntrustedIssuer("rogue-root".into()))
        );
    }

    #[test]
    fn reject_forged_issuer_name() {
        // A rogue CA that *claims* the trusted root's name still fails:
        // the signature does not verify under the real root key.
        let ca = CertAuthority::new("gdn-root", 1);
        let rogue = CertAuthority::new("gdn-root", 999);
        let (_, pk) = keygen_from_seed(5);
        let cert = rogue.issue("host-a", Role::Host, pk);
        assert_eq!(
            cert.verify_against(&[ca.root_cert().clone()]),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn reject_tampered_fields() {
        let ca = CertAuthority::new("gdn-root", 1);
        let (_, pk) = keygen_from_seed(5);
        let mut cert = ca.issue("host-a", Role::Host, pk);
        cert.subject = "host-b".into(); // privilege escalation attempt
        assert_eq!(
            cert.verify_against(&[ca.root_cert().clone()]),
            Err(CertError::BadSignature)
        );
        let mut cert2 = ca.issue("host-a", Role::Host, pk);
        cert2.role = Role::Administrator;
        assert_eq!(
            cert2.verify_against(&[ca.root_cert().clone()]),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn root_verifies_itself_when_trusted() {
        let ca = CertAuthority::new("gdn-root", 1);
        let root = ca.root_cert().clone();
        assert!(root.verify_against(std::slice::from_ref(&root)).is_ok());
        // ... but not when the trust store is empty or different.
        assert!(root.verify_against(&[]).is_err());
        let other = CertAuthority::new("other", 2);
        assert!(root.verify_against(&[other.root_cert().clone()]).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let ca = CertAuthority::new("gdn-root", 1);
        let (_, pk) = keygen_from_seed(5);
        for role in [
            Role::Host,
            Role::Moderator,
            Role::Administrator,
            Role::Maintainer,
        ] {
            let cert = ca.issue("subject-x", role, pk);
            let decoded = Certificate::decode(&cert.encode()).unwrap();
            assert_eq!(decoded, cert);
            decoded.verify_against(&[ca.root_cert().clone()]).unwrap();
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Certificate::decode(&[]).is_err());
        assert!(Certificate::decode(&[0xFF; 7]).is_err());
        let ca = CertAuthority::new("gdn-root", 1);
        let (_, pk) = keygen_from_seed(5);
        let mut buf = ca.issue("s", Role::Host, pk).encode();
        buf.push(0); // trailing byte
        assert!(matches!(
            Certificate::decode(&buf),
            Err(CertError::Wire(WireError::TrailingBytes))
        ));
    }

    #[test]
    fn credentials_bundle_is_consistent() {
        let ca = CertAuthority::new("gdn-root", 1);
        let creds = Credentials::issue(&ca, "moderator:alice", Role::Moderator, 77);
        creds
            .cert
            .verify_against(&[ca.root_cert().clone()])
            .unwrap();
        // The secret key actually matches the certified public key.
        let sig = crate::sig::sign(&creds.secret, b"probe");
        assert!(crate::sig::verify(&creds.cert.public_key, b"probe", &sig));
        assert_eq!(creds.cert.role, Role::Moderator);
    }

    #[test]
    fn role_display_names() {
        assert_eq!(Role::Moderator.to_string(), "moderator");
        assert_eq!(Role::Host.to_string(), "host");
    }
}
