//! End-to-end test of the real-socket backend: two `gdn-node` OS
//! processes on loopback replicate a package (master + slave), a
//! moderator process publishes into them, and a plain TCP HTTP client
//! reads the fresh content back through *either* node.
//!
//! This is the acceptance test for the TCP transport: everything the
//! simulated experiments run — GOS, GLS, GNS, replication protocol,
//! HTTPD — here crosses real sockets between real processes.

use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the serve processes even when an assertion panics.
struct Node(Child);

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gdn-node"))
}

/// Port bases for this test run. Hosts are spaced wider than the
/// largest simulated port (DRIVER = 9000) so their real port ranges
/// cannot overlap; the pid offset keeps concurrent test runs apart.
fn port_bases() -> (u16, u16, u16) {
    let b = 10_000 + (std::process::id() % 90) as u16 * 300;
    (b, b + 9_100, b + 18_200)
}

fn write_config(tag: &str) -> PathBuf {
    let (b0, b1, b2) = port_bases();
    let path = std::env::temp_dir().join(format!("gdn-two-node-{}-{tag}.conf", std::process::id()));
    let text = format!(
        "seed 42\n\
         mode auth-encrypt\n\
         gns-secondaries 0\n\
         gns-batch-secs 1\n\
         gns-negative-ttl 2\n\
         host eu/nl/vu/alpha 127.0.0.1:{b0}\n\
         host eu/nl/vu/beta  127.0.0.1:{b1}\n\
         host eu/nl/vu/drv   127.0.0.1:{b2}\n\
         gos alpha\n\
         gos beta\n"
    );
    std::fs::write(&path, text).expect("write config");
    path
}

/// Waits until the node's HTTPD listener accepts connections — the
/// transport binds its sockets before printing READY, so a successful
/// connect means the process is up.
fn wait_listening(port: u16, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = format!("127.0.0.1:{port}");
    loop {
        match TcpStream::connect(&addr) {
            Ok(_) => return,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("{what} never started listening on {addr}: {e}"),
        }
    }
}

/// Runs `gdn-node get` and returns (success, stdout).
fn http_get(config: &PathBuf, server: &str, path: &str, expect: &str) -> (bool, String) {
    let out = bin()
        .arg("get")
        .arg(config)
        .args(["drv", server, path, expect])
        .stderr(Stdio::inherit())
        .output()
        .expect("run gdn-node get");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Retries a fetch until the DNS batch has flushed; stale answers from
/// the brief negative-caching window die out within a few seconds.
fn http_get_fresh(config: &PathBuf, server: &str, path: &str, expect: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (ok, body) = http_get(config, server, path, expect);
        if ok {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "fetch of {path} via {server} never became fresh; last body:\n{body}"
        );
        std::thread::sleep(Duration::from_secs(1));
    }
}

#[test]
fn two_processes_replicate_and_serve_a_package() {
    let config = write_config("main");
    let (b0, b1, _) = port_bases();

    let serve = |host: &str| -> Node {
        Node(
            bin()
                .arg("serve")
                .arg(&config)
                .arg(host)
                .arg("120")
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn gdn-node serve"),
        )
    };
    let _alpha = serve("alpha");
    let _beta = serve("beta");
    // Simulated port 80 of each host lives at base + 80.
    wait_listening(b0 + 80, "alpha");
    wait_listening(b1 + 80, "beta");

    // Publish a one-file package, master on alpha, slave on beta.
    let out = bin()
        .arg("publish")
        .arg(&config)
        .args([
            "drv",
            "/apps/two-node-demo",
            "payload-from-real-sockets",
            "alpha",
            "beta",
        ])
        .output()
        .expect("run gdn-node publish");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "publish failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("published /apps/two-node-demo"), "{stdout}");

    // A real TCP client reads the file back through each node: alpha
    // holds the master replica, beta the slave that the replication
    // protocol filled over a real socket.
    let path = "/pkg/apps/two-node-demo?file=index.txt";
    let via_master = http_get_fresh(&config, "alpha", path, "payload-from-real-sockets");
    assert!(via_master.starts_with("200 "), "{via_master}");
    let via_slave = http_get_fresh(&config, "beta", path, "payload-from-real-sockets");
    assert!(via_slave.starts_with("200 "), "{via_slave}");

    // The package listing renders on both nodes too.
    http_get_fresh(&config, "alpha", "/pkg/apps/two-node-demo", "index.txt");
    http_get_fresh(&config, "beta", "/pkg/apps/two-node-demo", "index.txt");

    // A raw socket speaking no hello frame must not take a node down:
    // poke garbage at alpha, then fetch again.
    let mut s = TcpStream::connect(format!("127.0.0.1:{}", b0 + 80)).expect("connect");
    use std::io::Write as _;
    s.write_all(&[0xff; 16]).expect("write garbage");
    drop(s);
    http_get_fresh(&config, "alpha", path, "payload-from-real-sockets");

    std::fs::remove_file(&config).ok();
}

/// The content-addressed path over real sockets: a chunked package
/// replicates master → slave by chunk announcements, a version upgrade
/// re-ships only the file that changed, and a file whose bytes the
/// slave already holds transfers nothing — asserted from the slave
/// process's chunk-store counters, which `serve <secs>` prints on
/// exit.
#[test]
fn chunked_upgrade_transfers_only_missing_chunks() {
    let config = write_config("chunked");
    let (b0, b1, _) = port_bases();

    let serve = |host: &str| {
        bin()
            .arg("serve")
            .arg(&config)
            .arg(host)
            .arg("90")
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn gdn-node serve")
    };
    let _alpha = Node(serve("alpha"));
    let beta = serve("beta");
    wait_listening(b0 + 80, "alpha");
    wait_listening(b1 + 80, "beta");

    // v1: one small file, master on alpha, chunked slave on beta.
    let out = bin()
        .arg("publish")
        .arg("--chunked")
        .arg(&config)
        .args([
            "drv",
            "/apps/chunked-demo",
            "chunked-v1-index",
            "alpha",
            "beta",
        ])
        .output()
        .expect("run gdn-node publish");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "publish failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    let oid = stdout
        .split_whitespace()
        .last()
        .expect("publish printed an oid")
        .to_owned();

    let addfile = |file: &str, content: &str, bytes: &str| {
        let out = bin()
            .arg("addfile")
            .arg(&config)
            .args(["drv", &oid, file, content, bytes])
            .output()
            .expect("run gdn-node addfile");
        assert!(
            out.status.success(),
            "addfile {file} failed\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    };
    // v2: two 8 KiB parts (two chunk-store chunks each) the slave must
    // fetch, then a third file that duplicates part-a byte for byte —
    // its chunks are already in beta's store, so announcing it must
    // transfer no chunk data.
    addfile("part-a", "alpha-part-payload-", "8192");
    addfile("part-b", "beta-part-payload-", "8192");
    addfile("dup-of-a", "alpha-part-payload-", "8192");

    // Every file reads fresh through the slave before we count bytes.
    for (file, needle) in [
        ("part-a", "alpha-part-payload-"),
        ("part-b", "beta-part-payload-"),
        ("dup-of-a", "alpha-part-payload-"),
        ("index.txt", "chunked-v1-index"),
    ] {
        http_get_fresh(
            &config,
            "beta",
            &format!("/pkg/apps/chunked-demo?file={file}"),
            needle,
        );
    }

    // Let the serve window expire, then read the slave's counters.
    let out = beta.wait_with_output().expect("wait for beta");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let metric = |name: &str| -> u64 {
        stderr
            .lines()
            .find_map(|l| l.strip_prefix(&format!("metric {name} = ")))
            .map_or(0, |v| v.trim().parse().expect("metric value"))
    };

    let fetched = metric("rts.chunks.bytes_fetched");
    let hits = metric("rts.chunks.announce_hits");
    let misses = metric("rts.chunks.announce_misses");
    // The slave held dup-of-a's two 4 KiB chunks from part-a: an
    // announce hit per chunk, and the fetched volume stays near the
    // genuinely new content (part-a + part-b + index + metadata).
    assert!(
        hits >= 2,
        "expected announce hits for duplicate chunks, got {hits}"
    );
    assert!(
        misses >= 4,
        "expected announce misses for new chunks, got {misses}"
    );
    assert!(
        fetched >= 16 * 1024,
        "slave fetched too little for the new parts: {fetched} bytes"
    );
    assert!(
        fetched < 24 * 1024,
        "slave re-fetched duplicate chunks: {fetched} bytes (dedup broken)"
    );

    std::fs::remove_file(&config).ok();
}

/// `get` against a node that is not running reports failure instead of
/// hanging: the connect is refused immediately on loopback.
#[test]
fn get_against_dead_node_fails_fast() {
    let config = write_config("dead");
    let started = Instant::now();
    let out = bin()
        .arg("get")
        .arg(&config)
        .args(["drv", "alpha", "/pkg/nothing"])
        .output()
        .expect("run gdn-node get");
    assert!(!out.status.success());
    assert!(started.elapsed() < Duration::from_secs(20));
}

/// Reading garbage from the config dir must not be possible: a missing
/// file is a clean error, not a panic.
#[test]
fn missing_config_is_a_clean_error() {
    let out = bin()
        .arg("serve")
        .args(["/nonexistent/gdn.conf", "alpha"])
        .output()
        .expect("run gdn-node serve");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
