//! The authoritative DNS server service.
//!
//! Hosts one or more zones, answers queries iteratively (with referrals
//! at delegation points), and — for zones it is *primary* for — accepts
//! TSIG-signed dynamic updates and replicates them to the zone's
//! secondary servers (the paper's "multiple authoritative name servers"
//! for load distribution, §5).

use std::collections::BTreeMap;

use globe_net::{impl_service_any, Endpoint, Service, ServiceCtx};

use crate::name::DnsName;
use crate::proto::{tsig_verify, DnsMsg, Rcode, UpdateOp};
use crate::records::{RecordType, Zone, ZoneAnswer};

/// Counters for one authoritative server (experiment E6 reads these).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Queries answered (any outcome).
    pub queries: u64,
    /// Queries answered from authoritative data.
    pub answers: u64,
    /// Referrals issued.
    pub referrals: u64,
    /// Negative answers (NXDOMAIN / no data).
    pub negatives: u64,
    /// Dynamic updates applied.
    pub updates: u64,
    /// Updates rejected (TSIG failure or unknown zone).
    pub rejected_updates: u64,
}

/// An authoritative DNS server.
pub struct AuthServer {
    zones: BTreeMap<String, Zone>,
    /// TSIG keys accepted for dynamic updates: name → secret.
    tsig_keys: BTreeMap<String, Vec<u8>>,
    /// For zones this server is primary of: the secondaries to push
    /// applied updates to.
    secondaries: BTreeMap<String, Vec<Endpoint>>,
    /// Load counters.
    pub stats: ServerStats,
}

impl AuthServer {
    /// Creates an empty server.
    pub fn new() -> AuthServer {
        AuthServer {
            zones: BTreeMap::new(),
            tsig_keys: BTreeMap::new(),
            secondaries: BTreeMap::new(),
            stats: ServerStats::default(),
        }
    }

    /// Adds a zone this server is authoritative for.
    pub fn with_zone(mut self, zone: Zone) -> Self {
        self.zones.insert(zone.origin().to_string(), zone);
        self
    }

    /// Registers a TSIG key for dynamic updates.
    pub fn with_tsig_key(mut self, name: &str, secret: Vec<u8>) -> Self {
        self.tsig_keys.insert(name.to_owned(), secret);
        self
    }

    /// Declares this server primary for `zone`, replicating updates to
    /// `secondaries`.
    pub fn with_secondaries(mut self, zone: &DnsName, secondaries: Vec<Endpoint>) -> Self {
        self.secondaries.insert(zone.to_string(), secondaries);
        self
    }

    /// Read access to a hosted zone (tests / experiments).
    pub fn zone(&self, origin: &DnsName) -> Option<&Zone> {
        self.zones.get(&origin.to_string())
    }

    /// Finds the most specific hosted zone containing `name`.
    fn zone_for_mut(&mut self, name: &DnsName) -> Option<&mut Zone> {
        let mut best: Option<&str> = None;
        let mut best_depth = 0usize;
        for (origin_str, zone) in &self.zones {
            if name.is_subdomain_of(zone.origin()) {
                let d = zone.origin().depth();
                if best.is_none() || d >= best_depth {
                    best = Some(origin_str.as_str());
                    best_depth = d;
                }
            }
        }
        let key = best?.to_owned();
        self.zones.get_mut(&key)
    }

    fn handle_query(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Endpoint,
        qid: u64,
        name: DnsName,
        rtype: RecordType,
    ) {
        self.stats.queries += 1;
        ctx.metrics().inc("dns.auth.queries", 1);
        let Some(zone) = self.zone_for_mut(&name) else {
            let resp = DnsMsg::Response {
                qid,
                rcode: Rcode::Refused,
                answers: vec![],
                authority: vec![],
                additional: vec![],
                authoritative: false,
                negative_ttl: 0,
            };
            ctx.send_datagram(from, resp.encode());
            return;
        };
        let negative_ttl = zone.negative_ttl();
        let resp = match zone.lookup(&name, rtype) {
            ZoneAnswer::Records(answers) => {
                self.stats.answers += 1;
                DnsMsg::Response {
                    qid,
                    rcode: Rcode::Ok,
                    answers,
                    authority: vec![],
                    additional: vec![],
                    authoritative: true,
                    negative_ttl,
                }
            }
            ZoneAnswer::Referral { ns, glue } => {
                self.stats.referrals += 1;
                DnsMsg::Response {
                    qid,
                    rcode: Rcode::Ok,
                    answers: vec![],
                    authority: ns,
                    additional: glue,
                    authoritative: false,
                    negative_ttl,
                }
            }
            ZoneAnswer::NoData => {
                self.stats.negatives += 1;
                DnsMsg::Response {
                    qid,
                    rcode: Rcode::Ok,
                    answers: vec![],
                    authority: vec![],
                    additional: vec![],
                    authoritative: true,
                    negative_ttl,
                }
            }
            ZoneAnswer::NxDomain => {
                self.stats.negatives += 1;
                DnsMsg::Response {
                    qid,
                    rcode: Rcode::NxDomain,
                    answers: vec![],
                    authority: vec![],
                    additional: vec![],
                    authoritative: true,
                    negative_ttl,
                }
            }
            ZoneAnswer::NotAuthoritative => DnsMsg::Response {
                qid,
                rcode: Rcode::Refused,
                answers: vec![],
                authority: vec![],
                additional: vec![],
                authoritative: false,
                negative_ttl: 0,
            },
        };
        ctx.send_datagram(from, resp.encode());
    }

    #[allow(clippy::too_many_arguments)] // mirrors the message fields
    fn handle_update(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Endpoint,
        qid: u64,
        zone_name: DnsName,
        ops: Vec<UpdateOp>,
        key_name: String,
        mac: [u8; 32],
    ) {
        ctx.metrics().inc("dns.auth.update_reqs", 1);
        let verified = self
            .tsig_keys
            .get(&key_name)
            .map(|secret| tsig_verify(secret, &zone_name, &ops, &key_name, &mac))
            .unwrap_or(false);
        if !verified {
            self.stats.rejected_updates += 1;
            ctx.metrics().inc("dns.auth.update_rejected", 1);
            let resp = DnsMsg::UpdateResp {
                qid,
                rcode: Rcode::NotAuth,
            };
            ctx.send_datagram(from, resp.encode());
            return;
        }
        let Some(zone) = self.zones.get_mut(&zone_name.to_string()) else {
            self.stats.rejected_updates += 1;
            let resp = DnsMsg::UpdateResp {
                qid,
                rcode: Rcode::Refused,
            };
            ctx.send_datagram(from, resp.encode());
            return;
        };
        for op in &ops {
            match op {
                UpdateOp::Add(rr) => zone.add(rr.clone()),
                UpdateOp::DeleteRrset(name, rtype) => {
                    zone.remove(name, *rtype);
                }
            }
        }
        self.stats.updates += 1;
        ctx.trace_info(
            "dns.auth",
            format!("applied {} update ops to {zone_name}", ops.len()),
        );
        let resp = DnsMsg::UpdateResp {
            qid,
            rcode: Rcode::Ok,
        };
        ctx.send_datagram(from, resp.encode());
        // Primary: replicate the (already verified) update to
        // secondaries, re-signed with the same key.
        if let Some(secs) = self.secondaries.get(&zone_name.to_string()) {
            let msg = DnsMsg::Update {
                qid,
                zone: zone_name.clone(),
                ops: ops.clone(),
                key_name,
                mac,
            };
            for sec in secs.clone() {
                ctx.send_datagram(sec, msg.encode());
            }
        }
    }
}

impl Default for AuthServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Service for AuthServer {
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        let msg = match DnsMsg::decode(&payload) {
            Ok(m) => m,
            Err(_) => {
                ctx.metrics().inc("dns.auth.malformed", 1);
                return;
            }
        };
        match msg {
            DnsMsg::Query {
                qid, name, rtype, ..
            } => self.handle_query(ctx, from, qid, name, rtype),
            DnsMsg::Update {
                qid,
                zone,
                ops,
                key_name,
                mac,
            } => self.handle_update(ctx, from, qid, zone, ops, key_name, mac),
            DnsMsg::Response { .. } | DnsMsg::UpdateResp { .. } => {
                ctx.metrics().inc("dns.auth.unexpected", 1);
            }
        }
    }

    impl_service_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{RData, ResourceRecord};
    use globe_net::HostId;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    #[test]
    fn zone_for_picks_most_specific() {
        let mut s = AuthServer::new()
            .with_zone(Zone::new(DnsName::root(), 60))
            .with_zone(Zone::new(name("glb"), 60));
        let z = s.zone_for_mut(&name("x.glb")).unwrap();
        assert_eq!(z.origin(), &name("glb"));
        let z = s.zone_for_mut(&name("x.com")).unwrap();
        assert_eq!(z.origin(), &DnsName::root());
    }

    #[test]
    fn builder_accessors() {
        let mut zone = Zone::new(name("gdn.glb"), 60);
        zone.add(ResourceRecord::new(
            name("a.gdn.glb"),
            30,
            RData::A(HostId(1)),
        ));
        let s = AuthServer::new()
            .with_zone(zone)
            .with_tsig_key("k", b"s".to_vec());
        assert!(s.zone(&name("gdn.glb")).is_some());
        assert!(s.zone(&name("other")).is_none());
        assert_eq!(s.zone(&name("gdn.glb")).unwrap().num_records(), 1);
    }
}
