//! The directory node: one GLS service instance per `(domain, subnode)`.
//!
//! Each node stores, per object id, a set of contact addresses and/or a
//! set of forwarding pointers to child domains (paper §3.5). Lookups
//! climb until they hit an entry and then descend the pointer tree;
//! inserts store the address at the configured level and grow the
//! pointer path toward the root; deletes shrink it.
//!
//! Nodes optionally persist their tables to stable storage, giving the
//! crash-recovery behaviour the paper's Java implementation was in the
//! process of adding (§7).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use globe_net::{
    impl_service_any, Endpoint, Service, ServiceCtx, WireError, WireReader, WireWriter,
};
use globe_sim::SimTime;

use crate::proto::{AckOp, GlsMsg, Status};
use crate::tree::{DomainId, GlsDeployment};
use crate::types::{ContactAddress, Level, ObjectId};

/// One object's record at a directory node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Entry {
    /// Contact addresses stored at this node with their lease expiry
    /// ([`SimTime::MAX`] when leases are disabled). Normally only at the
    /// store-level node; intermediate nodes hold addresses only for
    /// mobile objects.
    pub addrs: Vec<(ContactAddress, SimTime)>,
    /// Child domains known to hold an entry for this object.
    pub pointers: BTreeSet<DomainId>,
}

impl Entry {
    fn is_empty(&self) -> bool {
        self.addrs.is_empty() && self.pointers.is_empty()
    }

    /// Addresses whose lease has not expired at `now`.
    pub fn live_addrs(&self, now: SimTime) -> Vec<ContactAddress> {
        self.addrs
            .iter()
            .filter(|(_, exp)| *exp > now)
            .map(|(a, _)| *a)
            .collect()
    }

    /// Drops expired addresses; returns whether any were removed.
    fn purge(&mut self, now: SimTime) -> bool {
        let before = self.addrs.len();
        self.addrs.retain(|(_, exp)| *exp > now);
        self.addrs.len() != before
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(self.addrs.len() as u32);
        for (a, exp) in &self.addrs {
            a.encode(&mut w);
            w.put_u64(exp.as_nanos());
        }
        w.put_u32(self.pointers.len() as u32);
        for p in &self.pointers {
            w.put_u32(p.0);
        }
        w.finish()
    }

    fn decode(buf: &[u8]) -> Result<Entry, WireError> {
        let mut r = WireReader::new(buf);
        let na = r.u32()?;
        if na > 4096 {
            return Err(WireError::TooLarge);
        }
        let mut addrs = Vec::with_capacity(na as usize);
        for _ in 0..na {
            let a = ContactAddress::decode(&mut r)?;
            let exp = SimTime::from_nanos(r.u64()?);
            addrs.push((a, exp));
        }
        let np = r.u32()?;
        if np > 65_536 {
            return Err(WireError::TooLarge);
        }
        let mut pointers = BTreeSet::new();
        for _ in 0..np {
            pointers.insert(DomainId(r.u32()?));
        }
        r.expect_end()?;
        Ok(Entry { addrs, pointers })
    }
}

/// Load counters for one directory node (experiment E2 reads these).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Lookup requests processed (up or down).
    pub lookups: u64,
    /// Insert requests processed.
    pub inserts: u64,
    /// Delete requests processed.
    pub deletes: u64,
    /// Requests forwarded to another node.
    pub forwards: u64,
    /// Pointer maintenance messages processed.
    pub pointer_ops: u64,
}

impl NodeStats {
    /// Total requests that consumed capacity at this node.
    pub fn total(&self) -> u64 {
        self.lookups + self.inserts + self.deletes + self.pointer_ops
    }
}

/// A GLS directory node service (one subnode of one domain).
pub struct DirectoryNode {
    deploy: Arc<GlsDeployment>,
    domain: DomainId,
    subnode: u32,
    entries: BTreeMap<u128, Entry>,
    /// Load counters, readable by experiments.
    pub stats: NodeStats,
}

impl DirectoryNode {
    /// Creates the node for `(domain, subnode)` of `deploy`.
    pub fn new(deploy: Arc<GlsDeployment>, domain: DomainId, subnode: u32) -> DirectoryNode {
        DirectoryNode {
            deploy,
            domain,
            subnode,
            entries: BTreeMap::new(),
            stats: NodeStats::default(),
        }
    }

    /// Number of objects this node currently has entries for.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Read access to an entry (testing / experiments).
    pub fn entry(&self, oid: ObjectId) -> Option<&Entry> {
        self.entries.get(&oid.0)
    }

    fn level(&self) -> Level {
        self.deploy.level(self.domain)
    }

    fn stable_key(&self, oid: ObjectId) -> String {
        format!("gls/{}/{}/{:032x}", self.domain.0, self.subnode, oid.0)
    }

    fn persist_entry(&self, ctx: &mut ServiceCtx<'_>, oid: ObjectId) {
        if !self.deploy.persist() {
            return;
        }
        let key = self.stable_key(oid);
        match self.entries.get(&oid.0) {
            Some(e) => ctx.stable_put(&key, e.encode()),
            None => ctx.stable_delete(&key),
        }
    }

    fn send(&self, ctx: &mut ServiceCtx<'_>, dst: Endpoint, msg: &GlsMsg) {
        ctx.send_datagram(dst, msg.encode());
    }

    fn reply_lookup(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        origin: Endpoint,
        req: u64,
        status: Status,
        addrs: Vec<ContactAddress>,
        hops: u32,
    ) {
        self.send(
            ctx,
            origin,
            &GlsMsg::LookupResp {
                req,
                status,
                addrs,
                hops,
            },
        );
    }

    fn handle_lookup(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        req: u64,
        oid: ObjectId,
        origin: Endpoint,
        hops: u32,
        descending: bool,
    ) {
        self.stats.lookups += 1;
        ctx.metrics().inc("gls.node.lookups", 1);
        let hops = hops + 1;
        // Lazy lease sweep: expired registrations vanish here, and if
        // the entry empties out the pointer path shrinks (the node never
        // learns of crashes any other way).
        let now = ctx.now();
        let mut purged_empty = false;
        if let Some(e) = self.entries.get_mut(&oid.0) {
            if e.purge(now) {
                if e.is_empty() {
                    self.entries.remove(&oid.0);
                    purged_empty = true;
                }
                self.persist_entry(ctx, oid);
                ctx.metrics().inc("gls.node.leases_expired", 1);
            }
        }
        if purged_empty {
            if let Some(parent) = self.deploy.parent(self.domain) {
                let dst = self.deploy.route(parent, oid);
                self.send(
                    ctx,
                    dst,
                    &GlsMsg::PointerDel {
                        oid,
                        child: self.domain,
                    },
                );
            }
        }
        match self.entries.get(&oid.0) {
            Some(e) if !e.live_addrs(now).is_empty() => {
                // Found: reply directly to the origin, with the
                // contact addresses ranked by network distance from
                // the *requester* (not from this node) so the client
                // binds near itself by default. Callers that also track
                // replica health re-rank this list locally; the GLS
                // only knows geography.
                let mut addrs = e.live_addrs(now);
                addrs.sort_by_key(|a| {
                    (
                        ctx.topo().distance(origin.host, a.endpoint.host),
                        a.endpoint.host.0,
                        a.endpoint.port,
                    )
                });
                ctx.trace_debug(
                    "gls.node",
                    format!("{oid:?} found at {}", self.deploy.name(self.domain)),
                );
                self.reply_lookup(ctx, origin, req, Status::Ok, addrs, hops);
            }
            Some(e) if !e.pointers.is_empty() => {
                // Descend: pick one forwarding pointer at random
                // (paper §3.5: "one is chosen at random").
                let children: Vec<DomainId> = e.pointers.iter().copied().collect();
                let child = *ctx
                    .rng()
                    .choose(&children)
                    .expect("pointer set is nonempty");
                let dst = self.deploy.route(child, oid);
                self.stats.forwards += 1;
                self.send(
                    ctx,
                    dst,
                    &GlsMsg::LookupDown {
                        req,
                        oid,
                        origin,
                        hops,
                    },
                );
            }
            _ if descending => {
                // A pointer led here but nothing is stored: transient
                // inconsistency (e.g. racing delete).
                self.reply_lookup(ctx, origin, req, Status::Inconsistent, Vec::new(), hops);
            }
            _ => {
                // No entry: climb, or give up at the root.
                match self.deploy.parent(self.domain) {
                    Some(parent) => {
                        let dst = self.deploy.route(parent, oid);
                        self.stats.forwards += 1;
                        self.send(
                            ctx,
                            dst,
                            &GlsMsg::LookupUp {
                                req,
                                oid,
                                origin,
                                hops,
                            },
                        );
                    }
                    None => {
                        self.reply_lookup(ctx, origin, req, Status::NotFound, Vec::new(), hops);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the message fields
    fn handle_insert(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        req: u64,
        oid: ObjectId,
        addr: ContactAddress,
        origin: Endpoint,
        store_level: Level,
        hops: u32,
    ) {
        self.stats.inserts += 1;
        ctx.metrics().inc("gls.node.inserts", 1);
        let hops = hops + 1;
        if self.level() < store_level {
            // Not the storing node yet: climb.
            let parent = self
                .deploy
                .parent(self.domain)
                .expect("below-root levels have parents");
            let dst = self.deploy.route(parent, oid);
            self.stats.forwards += 1;
            self.send(
                ctx,
                dst,
                &GlsMsg::Insert {
                    req,
                    oid,
                    addr,
                    origin,
                    store_level,
                    hops,
                },
            );
            return;
        }
        // Store here, stamping (or refreshing) the lease.
        let expires = match self.deploy.address_ttl() {
            Some(ttl) => ctx.now() + ttl,
            None => SimTime::MAX,
        };
        let entry = self.entries.entry(oid.0).or_default();
        let was_empty = entry.is_empty();
        match entry.addrs.iter_mut().find(|(a, _)| *a == addr) {
            Some(slot) => slot.1 = expires,
            None => entry.addrs.push((addr, expires)),
        }
        self.persist_entry(ctx, oid);
        ctx.trace_info(
            "gls.node",
            format!("{oid:?} registered at {}", self.deploy.name(self.domain)),
        );
        self.send(
            ctx,
            origin,
            &GlsMsg::Ack {
                req,
                op: AckOp::Insert,
                hops,
            },
        );
        // Grow the pointer path toward the root if this entry is new.
        if was_empty {
            if let Some(parent) = self.deploy.parent(self.domain) {
                let dst = self.deploy.route(parent, oid);
                self.send(
                    ctx,
                    dst,
                    &GlsMsg::PointerAdd {
                        oid,
                        child: self.domain,
                    },
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the message fields
    fn handle_delete(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        req: u64,
        oid: ObjectId,
        addr: ContactAddress,
        origin: Endpoint,
        store_level: Level,
        hops: u32,
    ) {
        self.stats.deletes += 1;
        ctx.metrics().inc("gls.node.deletes", 1);
        let hops = hops + 1;
        if self.level() < store_level {
            let parent = self
                .deploy
                .parent(self.domain)
                .expect("below-root levels have parents");
            let dst = self.deploy.route(parent, oid);
            self.stats.forwards += 1;
            self.send(
                ctx,
                dst,
                &GlsMsg::Delete {
                    req,
                    oid,
                    addr,
                    origin,
                    store_level,
                    hops,
                },
            );
            return;
        }
        let mut now_empty = false;
        if let Some(entry) = self.entries.get_mut(&oid.0) {
            entry.addrs.retain(|(a, _)| a != &addr);
            if entry.is_empty() {
                self.entries.remove(&oid.0);
                now_empty = true;
            }
        }
        self.persist_entry(ctx, oid);
        // Deletion is idempotent: removing an absent address still acks.
        self.send(
            ctx,
            origin,
            &GlsMsg::Ack {
                req,
                op: AckOp::Delete,
                hops,
            },
        );
        if now_empty {
            if let Some(parent) = self.deploy.parent(self.domain) {
                let dst = self.deploy.route(parent, oid);
                self.send(
                    ctx,
                    dst,
                    &GlsMsg::PointerDel {
                        oid,
                        child: self.domain,
                    },
                );
            }
        }
    }

    fn handle_pointer_add(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, child: DomainId) {
        self.stats.pointer_ops += 1;
        let entry = self.entries.entry(oid.0).or_default();
        let was_empty = entry.is_empty();
        entry.pointers.insert(child);
        self.persist_entry(ctx, oid);
        if was_empty {
            if let Some(parent) = self.deploy.parent(self.domain) {
                let dst = self.deploy.route(parent, oid);
                self.send(
                    ctx,
                    dst,
                    &GlsMsg::PointerAdd {
                        oid,
                        child: self.domain,
                    },
                );
            }
        }
    }

    fn handle_pointer_del(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, child: DomainId) {
        self.stats.pointer_ops += 1;
        let mut now_empty = false;
        if let Some(entry) = self.entries.get_mut(&oid.0) {
            entry.pointers.remove(&child);
            if entry.is_empty() {
                self.entries.remove(&oid.0);
                now_empty = true;
            }
        }
        self.persist_entry(ctx, oid);
        if now_empty {
            if let Some(parent) = self.deploy.parent(self.domain) {
                let dst = self.deploy.route(parent, oid);
                self.send(
                    ctx,
                    dst,
                    &GlsMsg::PointerDel {
                        oid,
                        child: self.domain,
                    },
                );
            }
        }
    }
}

impl Service for DirectoryNode {
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, _from: Endpoint, payload: Vec<u8>) {
        let msg = match GlsMsg::decode(&payload) {
            Ok(m) => m,
            Err(_) => {
                // Bogus protocol messages must never crash the node
                // (paper §6.3); count and drop.
                ctx.metrics().inc("gls.node.malformed", 1);
                return;
            }
        };
        match msg {
            GlsMsg::LookupUp {
                req,
                oid,
                origin,
                hops,
            } => self.handle_lookup(ctx, req, oid, origin, hops, false),
            GlsMsg::LookupDown {
                req,
                oid,
                origin,
                hops,
            } => self.handle_lookup(ctx, req, oid, origin, hops, true),
            GlsMsg::Insert {
                req,
                oid,
                addr,
                origin,
                store_level,
                hops,
            } => self.handle_insert(ctx, req, oid, addr, origin, store_level, hops),
            GlsMsg::Delete {
                req,
                oid,
                addr,
                origin,
                store_level,
                hops,
            } => self.handle_delete(ctx, req, oid, addr, origin, store_level, hops),
            GlsMsg::PointerAdd { oid, child } => self.handle_pointer_add(ctx, oid, child),
            GlsMsg::PointerDel { oid, child } => self.handle_pointer_del(ctx, oid, child),
            GlsMsg::LookupResp { .. } | GlsMsg::Ack { .. } => {
                // Replies are addressed to clients, not nodes.
                ctx.metrics().inc("gls.node.unexpected", 1);
            }
        }
    }

    fn on_crash(&mut self, _now: globe_sim::SimTime) {
        // Volatile tables are lost; stable storage survives.
        self.entries.clear();
    }

    fn on_restart(&mut self, ctx: &mut ServiceCtx<'_>) {
        if !self.deploy.persist() {
            return;
        }
        let prefix = format!("gls/{}/{}/", self.domain.0, self.subnode);
        self.entries.clear();
        for key in ctx.stable_keys(&prefix) {
            let hex = &key[prefix.len()..];
            let Ok(oid) = u128::from_str_radix(hex, 16) else {
                continue;
            };
            if let Some(buf) = ctx.stable_get(&key) {
                if let Ok(entry) = Entry::decode(buf) {
                    self.entries.insert(oid, entry);
                }
            }
        }
        ctx.trace_info(
            "gls.node",
            format!(
                "recovered {} entries at {}",
                self.entries.len(),
                self.deploy.name(self.domain)
            ),
        );
    }

    impl_service_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_net::HostId;

    #[test]
    fn entry_round_trip() {
        let mut e = Entry::default();
        e.addrs.push((
            ContactAddress::new(Endpoint::new(HostId(3), 2112), 2, 1),
            SimTime::from_secs(120),
        ));
        e.pointers.insert(DomainId(4));
        e.pointers.insert(DomainId(9));
        let back = Entry::decode(&e.encode()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn entry_empty_and_lease_checks() {
        let mut e = Entry::default();
        assert!(e.is_empty());
        e.pointers.insert(DomainId(1));
        assert!(!e.is_empty());
        e.pointers.clear();
        e.addrs.push((
            ContactAddress::new(Endpoint::new(HostId(0), 1), 1, 0),
            SimTime::from_secs(10),
        ));
        assert!(!e.is_empty());
        // Lease filtering and purging.
        assert_eq!(e.live_addrs(SimTime::from_secs(5)).len(), 1);
        assert_eq!(e.live_addrs(SimTime::from_secs(10)).len(), 0);
        assert!(e.purge(SimTime::from_secs(10)));
        assert!(e.is_empty());
        assert!(!e.purge(SimTime::from_secs(10)));
    }

    #[test]
    fn entry_decode_rejects_garbage() {
        assert!(Entry::decode(&[1, 2, 3]).is_err());
        let mut w = WireWriter::new();
        w.put_u32(1_000_000);
        assert!(Entry::decode(&w.finish()).is_err());
    }

    #[test]
    fn stats_total() {
        let s = NodeStats {
            lookups: 1,
            inserts: 2,
            deletes: 3,
            forwards: 10,
            pointer_ops: 4,
        };
        assert_eq!(s.total(), 10);
    }
}
