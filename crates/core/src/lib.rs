//! The Globe Distribution Network (GDN) application.
//!
//! This crate is the paper's contribution assembled: "an application for
//! the efficient, worldwide distribution of free software and other
//! free data" built on the Globe middleware's per-object replication.
//!
//! - [`package`] — the package DSO, declared through the typed interface
//!   layer (`dso_interface!`): files with SHA-256 digests, `addFile` /
//!   `listContents` / `getFileContents` / metadata.
//! - [`catalog`] — the catalog DSO: a read-heavy package index that is
//!   itself a replicated object, proving the interface layer's "new DSO
//!   class in one file" claim.
//! - [`stats`] — the download-stats DSO: write-heavy per-package
//!   download accounting, the workload the delta-propagation pipeline
//!   is built for.
//! - [`mirrors`] — the mirror-list DSO: write-rarely mirror-site
//!   metadata, read by every client choosing a download source
//!   (superdistribution economics per PAPERS.md).
//! - [`httpd`] — the GDN-enabled HTTPD: URL → object name → bind →
//!   invoke → HTML/bytes (paper §4). Doubles as the user-machine GDN
//!   proxy.
//! - [`browser`] — scripted user agents fetching over plain HTTP.
//! - [`modtool`] — the moderator tool: replication-scenario definition,
//!   first-replica creation, additional replicas, content upload and
//!   name registration (paper §6.1 flow).
//! - [`security`] — the certification authority and the Figure 4
//!   channel configuration matrix.
//! - [`http`] — the minimal HTTP/1.0 subset browsers speak.
//! - [`deploy`] — one-call world assembly of GLS + GNS + object servers
//!   + HTTPDs.
//!
//! See the repository's `examples/` for runnable end-to-end scenarios
//! and `EXPERIMENTS.md` for the reproduction of the paper's claims.

pub mod browser;
pub mod catalog;
mod delta;
pub mod deploy;
pub mod http;
pub mod httpd;
pub mod mirrors;
pub mod modtool;
pub mod package;
pub mod security;
pub mod stats;

pub use browser::{Browser, FetchResult};
pub use catalog::{catalog_publish_op, CatalogDso, CatalogEntry, CatalogInterface, CATALOG_IMPL};
pub use deploy::{GdnDeployment, GdnOptions};
pub use http::{HttpRequest, HttpResponse};
pub use httpd::{GdnHttpd, HttpdStats};
pub use mirrors::{
    mirrors_publish_op, Mirror, MirrorListDso, MirrorListInterface, RegionQuery, MIRRORS_IMPL,
};
pub use modtool::{ModEvent, ModOp, ModeratorTool, Scenario};

// The object-identifier type every moderator operation addresses
// replicas by, re-exported so binary crates (`gdn-node`) need no
// direct `globe-gls` dependency to parse one back from a publish.
pub use globe_gls::ObjectId;
pub use package::{FileInfo, PackageDso, PackageInterface, PACKAGE_IMPL};
pub use security::GdnSecurity;
pub use stats::{
    stats_publish_op, DownloadStatsDso, DownloadStatsInterface, PackageStat, RecordDownload,
    StatsTotals, STATS_IMPL,
};
