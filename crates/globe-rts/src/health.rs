//! Per-replica health accounting for candidate-set binding.
//!
//! The paper binds a client to whichever contact address the location
//! service lists first and retries blind. That makes every sick replica
//! a repeated latency tax: each op walks into the same dead endpoint,
//! eats the forward timeout, and only then fails over. The
//! [`HealthLedger`] closes that loop locally: every client attempt
//! outcome — success with its observed latency, or a classified
//! failure — is recorded against the replica endpoint that served (or
//! failed to serve) it, and decays into one of three buckets:
//!
//! | bucket | meaning | binding treatment |
//! |---|---|---|
//! | [`Bucket::Hot`] | recent attempts succeed | preferred candidate |
//! | [`Bucket::Warm`] | some recent failures | kept, ranked behind hot |
//! | [`Bucket::Cold`] | chronic failures | bound only as a last resort |
//!
//! Failures are classified by *reason* ([`FailureReason`]) because the
//! reasons age differently: a connect refusal usually means the process
//! is gone (heavy penalty), a timeout may be transient load, a protocol
//! error points at a wedged replica, and an invalidation ("no such
//! object here") means the replica was torn down under us. The ledger
//! is process-local and purely observational — it never talks to the
//! network — so the runtime, the client retry loop, and the adaptive
//! controller can all consume the same signal without coordination.
//!
//! Scoring is integral and deterministic: a failure adds
//! [its reason's penalty](FailureReason::penalty) to a saturating
//! score, a success subtracts one, and one point drains per
//! [`DECAY_STEP`] of quiet. Consecutive failures therefore push a
//! replica monotonically toward [`Bucket::Cold`], and any replica left
//! alone long enough drains back to [`Bucket::Hot`] — both properties
//! are locked in by tests below.

use std::collections::BTreeMap;

use globe_net::Endpoint;
use globe_sim::{SimDuration, SimTime};

/// Why a client attempt against a replica failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The transport died: connection refused, reset, or the peer
    /// crashed mid-exchange.
    Connect,
    /// The forwarded invocation timed out without any answer.
    Timeout,
    /// The replica answered, but unintelligibly or with an internal
    /// error — it is up but wedged.
    Protocol,
    /// The replica disowned the object ("no such object here"): it was
    /// deleted or re-placed under our binding.
    Invalidated,
}

impl FailureReason {
    /// Score penalty for one failure of this kind. Connect failures and
    /// invalidations are near-certain signs the endpoint is useless to
    /// us; timeouts and protocol errors may be transient.
    pub const fn penalty(self) -> u32 {
        match self {
            FailureReason::Connect => 3,
            FailureReason::Timeout => 2,
            FailureReason::Protocol => 2,
            FailureReason::Invalidated => 3,
        }
    }
}

/// Health classification of a replica endpoint. Ordered best-first so
/// it can be used directly as the leading sort key when ranking
/// candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Bucket {
    /// Recent attempts succeed; bind here first.
    #[default]
    Hot = 0,
    /// Mixed recent history; usable but ranked behind hot replicas.
    Warm = 1,
    /// Chronic failures; avoid unless nothing better exists.
    Cold = 2,
}

impl Bucket {
    /// Stable lowercase name, for metrics keys and reports.
    pub const fn name(self) -> &'static str {
        match self {
            Bucket::Hot => "hot",
            Bucket::Warm => "warm",
            Bucket::Cold => "cold",
        }
    }
}

/// Quiet time that drains one point of failure score.
pub const DECAY_STEP: SimDuration = SimDuration::from_secs(5);

/// Ceiling on the failure score; bounds how long decay back to
/// [`Bucket::Hot`] can take (`SCORE_CAP * DECAY_STEP`).
pub const SCORE_CAP: u32 = 12;

/// Scores at or above this are [`Bucket::Cold`].
const COLD_AT: u32 = 6;

/// Scores at or above this (and below [`COLD_AT`]) are
/// [`Bucket::Warm`].
const WARM_AT: u32 = 2;

/// EWMA smoothing: `ewma' = (7*ewma + sample) / 8`.
const EWMA_OLD_WEIGHT: u64 = 7;

/// Everything the ledger knows about one replica endpoint.
#[derive(Debug, Clone, Default)]
pub struct ReplicaHealth {
    /// Saturating failure score as of `last_event` (decay is applied
    /// lazily on read and folded in on write).
    score: u32,
    /// Consecutive failures since the last success.
    pub streak: u32,
    /// Exponentially weighted moving average of successful invocation
    /// latency, in microseconds (0 until the first success).
    pub ewma_latency_us: u64,
    /// Lifetime successes.
    pub successes: u64,
    /// Lifetime failures, total and by reason.
    pub failures: u64,
    /// Connect-class failures (see [`FailureReason::Connect`]).
    pub connect_failures: u64,
    /// Timeout-class failures.
    pub timeout_failures: u64,
    /// Protocol-class failures.
    pub protocol_failures: u64,
    /// Invalidation-class failures.
    pub invalidated_failures: u64,
    /// When the score was last touched; decay runs from here.
    last_event: SimTime,
}

impl ReplicaHealth {
    /// Failure score after draining one point per [`DECAY_STEP`] of
    /// quiet since the last recorded event.
    pub fn score_at(&self, now: SimTime) -> u32 {
        let steps = now.saturating_sub(self.last_event).as_nanos() / DECAY_STEP.as_nanos();
        self.score
            .saturating_sub(steps.min(u64::from(u32::MAX)) as u32)
    }

    /// The bucket this replica occupies at `now`.
    pub fn bucket_at(&self, now: SimTime) -> Bucket {
        match self.score_at(now) {
            s if s >= COLD_AT => Bucket::Cold,
            s if s >= WARM_AT => Bucket::Warm,
            _ => Bucket::Hot,
        }
    }

    /// Folds pending decay into the stored score so a new event applies
    /// against the *current* effective score.
    fn settle(&mut self, now: SimTime) {
        self.score = self.score_at(now);
        self.last_event = now;
    }
}

/// The process-local replica-health ledger.
///
/// Keyed by [`Endpoint`] (not object id): health is a property of the
/// *process* serving replicas, so one sick host discovered through any
/// object demotes it for every object's candidate ranking.
#[derive(Debug, Default)]
pub struct HealthLedger {
    replicas: BTreeMap<Endpoint, ReplicaHealth>,
}

impl HealthLedger {
    /// Creates an empty ledger.
    pub fn new() -> HealthLedger {
        HealthLedger::default()
    }

    /// Records a successful attempt served by `ep` with the observed
    /// round-trip `latency`.
    pub fn record_success(&mut self, ep: Endpoint, latency: SimDuration, now: SimTime) {
        let r = self.replicas.entry(ep).or_default();
        r.settle(now);
        r.score = r.score.saturating_sub(1);
        r.streak = 0;
        r.successes += 1;
        let sample = latency.as_micros();
        r.ewma_latency_us = if r.ewma_latency_us == 0 {
            sample
        } else {
            (r.ewma_latency_us * EWMA_OLD_WEIGHT + sample) / (EWMA_OLD_WEIGHT + 1)
        };
    }

    /// Records a failed attempt against `ep`, classified by `reason`.
    pub fn record_failure(&mut self, ep: Endpoint, reason: FailureReason, now: SimTime) {
        let r = self.replicas.entry(ep).or_default();
        r.settle(now);
        r.score = (r.score + reason.penalty()).min(SCORE_CAP);
        r.streak += 1;
        r.failures += 1;
        match reason {
            FailureReason::Connect => r.connect_failures += 1,
            FailureReason::Timeout => r.timeout_failures += 1,
            FailureReason::Protocol => r.protocol_failures += 1,
            FailureReason::Invalidated => r.invalidated_failures += 1,
        }
    }

    /// The bucket `ep` occupies at `now` (unknown endpoints are
    /// [`Bucket::Hot`]: never punish a replica we have not tried).
    pub fn bucket(&self, ep: Endpoint, now: SimTime) -> Bucket {
        self.replicas
            .get(&ep)
            .map(|r| r.bucket_at(now))
            .unwrap_or(Bucket::Hot)
    }

    /// Ranking key for candidate ordering: bucket first, then observed
    /// EWMA latency. Ties (unknown endpoints in particular) are left to
    /// the caller's secondary key — typically topology distance.
    pub fn rank_key(&self, ep: Endpoint, now: SimTime) -> (Bucket, u64) {
        match self.replicas.get(&ep) {
            Some(r) => (r.bucket_at(now), r.ewma_latency_us),
            None => (Bucket::Hot, 0),
        }
    }

    /// The full record for `ep`, if any attempt has ever been recorded.
    pub fn get(&self, ep: Endpoint) -> Option<&ReplicaHealth> {
        self.replicas.get(&ep)
    }

    /// Iterates all tracked endpoints with their records.
    pub fn iter(&self) -> impl Iterator<Item = (&Endpoint, &ReplicaHealth)> {
        self.replicas.iter()
    }

    /// Number of endpoints ever observed.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when no attempt has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Drops the record for `ep` (the replica was torn down and any
    /// future process at this address starts fresh).
    pub fn forget(&mut self, ep: Endpoint) {
        self.replicas.remove(&ep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_net::HostId;

    fn ep(n: u16) -> Endpoint {
        Endpoint {
            host: HostId(7),
            port: n,
        }
    }

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn unknown_endpoint_is_hot() {
        let l = HealthLedger::new();
        assert_eq!(l.bucket(ep(1), at(100)), Bucket::Hot);
        assert_eq!(l.rank_key(ep(1), at(100)), (Bucket::Hot, 0));
    }

    #[test]
    fn consecutive_failures_reach_cold() {
        let mut l = HealthLedger::new();
        for i in 0..3 {
            l.record_failure(ep(1), FailureReason::Timeout, at(i));
        }
        assert_eq!(l.bucket(ep(1), at(3)), Bucket::Cold);
        assert_eq!(l.get(ep(1)).unwrap().streak, 3);
    }

    /// Property: within one instant (no decay), each additional failure
    /// never *improves* the bucket — transitions are monotone in the
    /// failure streak, for every reason and every prefix history.
    #[test]
    fn bucket_monotone_in_failure_streak() {
        let reasons = [
            FailureReason::Connect,
            FailureReason::Timeout,
            FailureReason::Protocol,
            FailureReason::Invalidated,
        ];
        for &reason in &reasons {
            // Start from a variety of prior histories.
            for prior_successes in 0..4 {
                let mut l = HealthLedger::new();
                let now = at(1000);
                for _ in 0..prior_successes {
                    l.record_success(ep(1), SimDuration::from_millis(5), now);
                }
                let mut last = l.bucket(ep(1), now);
                for _ in 0..20 {
                    l.record_failure(ep(1), reason, now);
                    let b = l.bucket(ep(1), now);
                    assert!(b >= last, "bucket improved on a failure: {last:?} -> {b:?}");
                    last = b;
                }
                assert_eq!(last, Bucket::Cold);
            }
        }
    }

    /// Property: a replica left alone decays back to hot, no matter how
    /// cold it got — and the wait is bounded by `SCORE_CAP` steps.
    #[test]
    fn decay_restores_hot_eventually() {
        let mut l = HealthLedger::new();
        for i in 0..50 {
            l.record_failure(ep(1), FailureReason::Connect, at(i));
        }
        assert_eq!(l.bucket(ep(1), at(50)), Bucket::Cold);
        let horizon = at(50) + SimDuration::from_secs(u64::from(SCORE_CAP) * DECAY_STEP.as_secs());
        assert_eq!(l.bucket(ep(1), horizon), Bucket::Hot);
        // And monotone on the way: sampling forward never re-worsens.
        let mut last = l.bucket(ep(1), at(50));
        for s in 50..50 + u64::from(SCORE_CAP) * DECAY_STEP.as_secs() {
            let b = l.bucket(ep(1), at(s));
            assert!(b <= last, "bucket worsened during quiet decay");
            last = b;
        }
    }

    #[test]
    fn flapping_replica_trends_cold() {
        // Alternating success/failure still climbs: the per-failure
        // penalty outweighs the per-success credit.
        let mut l = HealthLedger::new();
        let now = at(10);
        for _ in 0..12 {
            l.record_failure(ep(1), FailureReason::Timeout, now);
            l.record_success(ep(1), SimDuration::from_millis(3), now);
        }
        assert_eq!(l.bucket(ep(1), now), Bucket::Cold);
    }

    #[test]
    fn success_latency_feeds_ewma() {
        let mut l = HealthLedger::new();
        l.record_success(ep(1), SimDuration::from_millis(8), at(1));
        assert_eq!(l.get(ep(1)).unwrap().ewma_latency_us, 8000);
        l.record_success(ep(1), SimDuration::from_millis(16), at(2));
        let e = l.get(ep(1)).unwrap().ewma_latency_us;
        assert!(
            e > 8000 && e < 16000,
            "ewma should move between samples: {e}"
        );
    }

    #[test]
    fn failure_reasons_counted_separately() {
        let mut l = HealthLedger::new();
        l.record_failure(ep(1), FailureReason::Connect, at(1));
        l.record_failure(ep(1), FailureReason::Timeout, at(1));
        l.record_failure(ep(1), FailureReason::Protocol, at(1));
        l.record_failure(ep(1), FailureReason::Invalidated, at(1));
        let r = l.get(ep(1)).unwrap();
        assert_eq!(
            (
                r.connect_failures,
                r.timeout_failures,
                r.protocol_failures,
                r.invalidated_failures
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(r.failures, 4);
    }

    #[test]
    fn forget_resets_to_hot() {
        let mut l = HealthLedger::new();
        for i in 0..10 {
            l.record_failure(ep(1), FailureReason::Connect, at(i));
        }
        assert_eq!(l.bucket(ep(1), at(10)), Bucket::Cold);
        l.forget(ep(1));
        assert_eq!(l.bucket(ep(1), at(10)), Bucket::Hot);
        assert!(l.is_empty());
    }
}
