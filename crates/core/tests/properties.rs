//! Property-based tests of the GDN application layer: the package DSO's
//! semantics behave like a keyed store, state transfer is lossless, and
//! the HTTP codec is total.

use proptest::prelude::*;

use gdn_core::package::{PackageControl, PackageDso};
use gdn_core::{HttpRequest, HttpResponse};
use globe_rts::SemanticsObject;

const FNAME: &str = "[a-zA-Z][a-zA-Z0-9._-]{0,20}";

proptest! {
    /// addFile/getFile behave like map insert/lookup, digests verify,
    /// and full state transfer reproduces the object exactly — the
    /// invariant replication (push, fetch, recovery) depends on.
    #[test]
    fn package_is_a_consistent_store(
        files in prop::collection::btree_map(FNAME, prop::collection::vec(any::<u8>(), 0..512), 1..10),
        description in "[ -~]{0,64}",
    ) {
        let mut pkg = PackageDso::new();
        pkg.dispatch(&PackageControl::set_meta(&description)).unwrap();
        for (name, data) in &files {
            pkg.dispatch(&PackageControl::add_file(name, data)).unwrap();
        }
        // Listing reflects exactly the inserted keys and sizes.
        let listing = PackageControl::decode_listing(
            &pkg.dispatch(&PackageControl::list_contents()).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(listing.len(), files.len());
        for info in &listing {
            prop_assert_eq!(info.size as usize, files[&info.name].len());
        }
        // Every file reads back identically (digest-verified).
        for (name, data) in &files {
            let got = PackageControl::decode_file(
                &pkg.dispatch(&PackageControl::get_file(name)).unwrap(),
            )
            .unwrap();
            prop_assert_eq!(&got, data);
        }
        // State transfer: a blank replica fed the state blob is
        // indistinguishable.
        let mut replica = PackageDso::new();
        replica.set_state(&pkg.get_state()).unwrap();
        prop_assert_eq!(replica.get_state(), pkg.get_state());
        let meta = PackageControl::decode_meta(
            &replica.dispatch(&PackageControl::get_meta()).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(meta, description);
        // Removal empties the store.
        for name in files.keys() {
            replica.dispatch(&PackageControl::remove_file(name)).unwrap();
        }
        prop_assert_eq!(replica.num_files(), 0);
    }

    /// The package dispatcher is total over arbitrary method ids and
    /// argument bytes (paper §6.3: survive bogus protocol messages).
    #[test]
    fn package_dispatch_is_total(
        method: u32,
        args in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut pkg = PackageDso::new();
        let _ = pkg.dispatch(&globe_rts::Invocation::new(
            globe_rts::MethodId(method),
            args,
        ));
        let _ = pkg.set_state(&[0xFF, 0x00, 0x01]);
    }

    /// HTTP requests and responses round-trip; parsers are total.
    #[test]
    fn http_codec(
        path in "/[a-z0-9/._?=-]{0,60}",
        status in prop::sample::select(vec![200u16, 400, 403, 404, 500, 502, 504]),
        body in prop::collection::vec(any::<u8>(), 0..512),
        garbage in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let req = HttpRequest::parse(&HttpRequest::get(&path)).unwrap();
        prop_assert_eq!(req.method, "GET");
        prop_assert_eq!(req.path, path);

        let resp = HttpResponse::parse(&HttpResponse::build(status, "application/octet-stream", &body)).unwrap();
        prop_assert_eq!(resp.status, status);
        prop_assert_eq!(resp.body, body);

        let _ = HttpRequest::parse(&garbage);
        let _ = HttpResponse::parse(&garbage);
    }
}
