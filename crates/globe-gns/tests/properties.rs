//! Property-based tests of the name machinery: the Globe↔DNS mapping is
//! a bijection on valid names, codecs are total, zones behave like sets.

use proptest::prelude::*;

use globe_gls::ObjectId;
use globe_gns::proto::{tsig_mac, tsig_verify, DnsMsg, UpdateOp};
use globe_gns::{
    oid_to_txt, txt_to_oid, DnsName, GlobeName, RData, RecordType, ResourceRecord, Zone,
};

const LABEL: &str = "[a-z][a-z0-9_-]{0,10}";

proptest! {
    /// DNS names survive parse → display → parse.
    #[test]
    fn dns_name_round_trip(labels in prop::collection::vec(LABEL, 1..5)) {
        let text = labels.join(".");
        let name = DnsName::parse(&text).unwrap();
        let again = DnsName::parse(&name.to_string()).unwrap();
        prop_assert_eq!(name, again);
    }

    /// The Globe↔DNS mapping under a zone is a bijection (paper §5).
    #[test]
    fn globe_dns_mapping_is_bijective(
        components in prop::collection::vec(LABEL, 1..4),
        zone_labels in prop::collection::vec(LABEL, 1..3),
    ) {
        let globe = GlobeName::parse(&format!("/{}", components.join("/"))).unwrap();
        let zone = DnsName::parse(&zone_labels.join(".")).unwrap();
        let dns = globe.to_dns(&zone).unwrap();
        prop_assert!(dns.is_subdomain_of(&zone));
        let back = GlobeName::from_dns(&dns, &zone).unwrap();
        prop_assert_eq!(back, globe);
    }

    /// Object-id TXT encoding round-trips and rejects corruption.
    #[test]
    fn oid_txt_round_trip(oid: u128) {
        let txt = oid_to_txt(ObjectId(oid));
        prop_assert_eq!(txt_to_oid(&txt).unwrap(), ObjectId(oid));
        prop_assert!(txt_to_oid(&txt[1..]).is_none());
    }

    /// DNS message decoding is total; encoding round-trips queries.
    #[test]
    fn dns_codec(
        qid: u64,
        labels in prop::collection::vec(LABEL, 1..4),
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let name = DnsName::parse(&labels.join(".")).unwrap();
        let q = DnsMsg::Query {
            qid,
            name,
            rtype: RecordType::Txt,
            recursion_desired: true,
        };
        prop_assert_eq!(DnsMsg::decode(&q.encode()).unwrap(), q);
        let _ = DnsMsg::decode(&garbage); // totality
    }

    /// TSIG accepts genuine updates and rejects any altered op list or
    /// wrong key.
    #[test]
    fn tsig_detects_tampering(
        secret in prop::collection::vec(any::<u8>(), 1..32),
        labels in prop::collection::vec(LABEL, 1..3),
        oid: u128,
    ) {
        let zone = DnsName::parse(&labels.join(".")).unwrap();
        let rec = zone.child("pkg").unwrap();
        let ops = vec![UpdateOp::Add(ResourceRecord::new(
            rec.clone(),
            60,
            RData::Txt(oid_to_txt(ObjectId(oid))),
        ))];
        let mac = tsig_mac(&secret, &zone, &ops, "k");
        prop_assert!(tsig_verify(&secret, &zone, &ops, "k", &mac));
        prop_assert!(!tsig_verify(&secret, &zone, &[], "k", &mac));
        prop_assert!(!tsig_verify(b"other", &zone, &ops, "k", &mac));
        prop_assert!(!tsig_verify(&secret, &zone, &ops, "k2", &mac));
    }

    /// Zone add/remove behaves like a keyed set with a monotone serial.
    #[test]
    fn zone_set_semantics(
        labels in prop::collection::vec(LABEL, 1..8),
        ttl in 1u32..100_000,
    ) {
        let origin = DnsName::parse("gdn.glb").unwrap();
        let mut zone = Zone::new(origin.clone(), 60);
        let mut serials = vec![zone.serial()];
        let mut names = Vec::new();
        for l in &labels {
            let name = origin.child(l).unwrap();
            zone.add(ResourceRecord::new(name.clone(), ttl, RData::Txt(l.clone())));
            names.push(name);
            serials.push(zone.serial());
        }
        // Serials never decrease.
        for w in serials.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Unique names are all present.
        let unique: std::collections::BTreeSet<_> = labels.iter().collect();
        prop_assert_eq!(zone.num_records(), unique.len());
        // Removing everything empties the zone.
        for name in &names {
            zone.remove(name, RecordType::Txt);
        }
        prop_assert_eq!(zone.num_records(), 0);
    }
}
