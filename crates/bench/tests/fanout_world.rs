//! Fan-out world tests: the delta pipeline's acceptance criteria.
//!
//! One master, N slaves, a write-heavy download-stats workload, run
//! under `PushState` and `PushDelta` with identical seeds and write
//! counts. Push-delta must encode fewer GRP bytes and issue fewer
//! `stable_put` calls, with no correctness or staleness regression:
//! every slave converges to the final version and the probe's
//! slave-local reads see the complete totals.

use globe_bench::grp_fanout_run;
use globe_rts::PropagationMode;

const SEED: u64 = 20_000_626;
const WRITES: usize = 24;

#[test]
fn push_delta_beats_push_state_at_eight_slaves() {
    let state = grp_fanout_run(8, PropagationMode::PushState, WRITES, SEED);
    let delta = grp_fanout_run(8, PropagationMode::PushDelta, WRITES, SEED);

    for r in [&state, &delta] {
        assert_eq!(r.writes_completed, WRITES, "{:?}", r);
        // Every slave converged to the final version — no stale
        // replicas left behind by delta shipping.
        assert_eq!(r.slave_versions, vec![WRITES as u64; 8], "{r:?}");
        // The probe read its local slave and saw every write.
        let totals = r.probe_totals.as_ref().expect("probe read totals");
        assert_eq!(totals.downloads, WRITES as u64, "{r:?}");
        // 24 writes cycling over 8 names: the hot package has 3.
        assert_eq!(r.probe_hot_downloads, 3, "{r:?}");
        // The probe's local reads were fresh (no stale-read
        // regression).
        assert!(r.fresh_reads >= 2, "{r:?}");
        assert_eq!(r.stale_reads, 0, "{r:?}");
    }

    // The wins the pipeline exists for: fewer bytes encoded on the
    // wire-facing path, fewer stable-storage writes.
    assert!(
        delta.grp_bytes_encoded < state.grp_bytes_encoded,
        "delta {} >= state {}",
        delta.grp_bytes_encoded,
        state.grp_bytes_encoded
    );
    assert!(
        delta.stable_puts < state.stable_puts,
        "delta {} >= state {}",
        delta.stable_puts,
        state.stable_puts
    );
    // The mechanism is visible: slaves actually applied deltas, and
    // checkpoints were deferred under the stride.
    assert!(delta.deltas_applied >= (WRITES as u64 - 1) * 8, "{delta:?}");
    assert!(delta.persist_deferred > 0, "{delta:?}");
    assert_eq!(state.deltas_applied, 0, "{state:?}");
}

#[test]
fn single_slave_still_wins_and_converges() {
    let state = grp_fanout_run(1, PropagationMode::PushState, WRITES, SEED + 1);
    let delta = grp_fanout_run(1, PropagationMode::PushDelta, WRITES, SEED + 1);
    for r in [&state, &delta] {
        assert_eq!(r.writes_completed, WRITES);
        assert_eq!(r.slave_versions, vec![WRITES as u64]);
        assert_eq!(
            r.probe_totals.as_ref().expect("totals").downloads,
            WRITES as u64
        );
    }
    assert!(delta.grp_bytes_encoded < state.grp_bytes_encoded);
    assert!(delta.stable_puts <= state.stable_puts);
}
