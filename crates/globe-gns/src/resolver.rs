//! The caching resolver service and the embeddable stub client.
//!
//! Every site runs a resolver (the campus resolver of the era). Stub
//! clients on the site's hosts send it recursive queries; the resolver
//! walks the delegation chain iteratively from the root hints, caching
//! every record it sees with its TTL, plus negative answers with the
//! zone's negative TTL. The paper's scalability argument for a DNS-based
//! GNS (§5) is exactly this caching: name→OID mappings are stable, so
//! cache hit rates are high and authoritative load stays low
//! (experiment E6).

use std::collections::BTreeMap;

use globe_net::{
    impl_service_any, ns_token, owns_token, ports, token_id, Endpoint, Service, ServiceCtx, TimerId,
};
use globe_sim::{SimDuration, SimTime};

use crate::name::DnsName;
use crate::proto::{DnsMsg, Rcode};
use crate::records::{RData, RecordType, ResourceRecord};

/// Timer namespace used by the resolver for upstream query timeouts.
const RESOLVER_NS: u16 = 0x0D25;

/// Counters for one resolver (experiment E6 reads these).
#[derive(Clone, Copy, Debug, Default)]
pub struct ResolverStats {
    /// Client queries received.
    pub client_queries: u64,
    /// Client queries answered entirely from cache.
    pub cache_hits: u64,
    /// Queries sent to authoritative servers.
    pub upstream_queries: u64,
    /// Client queries that ended in SERVFAIL.
    pub failures: u64,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    rrs: Vec<ResourceRecord>,
    expires: SimTime,
}

#[derive(Debug)]
struct InFlight {
    client: Endpoint,
    client_qid: u64,
    name: DnsName,
    rtype: RecordType,
    /// Candidate servers for the current delegation level.
    servers: Vec<Endpoint>,
    /// Index of the server the current attempt used.
    attempt: usize,
    /// Total upstream sends, bounded to stop loops.
    budget: u32,
    timer: TimerId,
}

/// A caching, iterative DNS resolver.
pub struct Resolver {
    root_hints: Vec<Endpoint>,
    cache: BTreeMap<(String, u8), CacheEntry>,
    negative: BTreeMap<(String, u8), SimTime>,
    inflight: BTreeMap<u64, InFlight>,
    next_qid: u64,
    /// Upstream retry timeout.
    timeout: SimDuration,
    /// Load counters.
    pub stats: ResolverStats,
}

impl Resolver {
    /// Creates a resolver bootstrapped with the root server endpoints.
    pub fn new(root_hints: Vec<Endpoint>) -> Resolver {
        assert!(!root_hints.is_empty(), "resolver needs root hints");
        Resolver {
            root_hints,
            cache: BTreeMap::new(),
            negative: BTreeMap::new(),
            inflight: BTreeMap::new(),
            next_qid: 1,
            timeout: SimDuration::from_millis(2_000),
            stats: ResolverStats::default(),
        }
    }

    fn cache_key(name: &DnsName, rtype: RecordType) -> (String, u8) {
        (name.to_string(), rtype.tag())
    }

    fn cache_get(&self, now: SimTime, name: &DnsName, rtype: RecordType) -> Option<&CacheEntry> {
        self.cache
            .get(&Self::cache_key(name, rtype))
            .filter(|e| e.expires > now)
    }

    fn cache_put(&mut self, now: SimTime, rrs: &[ResourceRecord]) {
        for rr in rrs {
            let key = Self::cache_key(&rr.name, rr.data.rtype());
            let expires = now + SimDuration::from_secs(rr.ttl as u64);
            match self.cache.get_mut(&key) {
                Some(e) if e.expires >= expires => {
                    if !e.rrs.contains(rr) {
                        e.rrs.push(rr.clone());
                    }
                }
                _ => {
                    // Group same-key records from this response set.
                    let group: Vec<ResourceRecord> = rrs
                        .iter()
                        .filter(|r| Self::cache_key(&r.name, r.data.rtype()) == key)
                        .cloned()
                        .collect();
                    self.cache.insert(
                        key,
                        CacheEntry {
                            rrs: group,
                            expires,
                        },
                    );
                }
            }
        }
    }

    /// Finds the best cached name-server set for `name`: the deepest
    /// suffix with unexpired NS records whose addresses are also cached.
    fn best_servers(&self, now: SimTime, name: &DnsName) -> Vec<Endpoint> {
        let mut candidate = Some(name.clone());
        while let Some(n) = candidate {
            if let Some(entry) = self.cache_get(now, &n, RecordType::Ns) {
                let mut eps = Vec::new();
                for rr in &entry.rrs {
                    if let RData::Ns(server) = &rr.data {
                        if let Some(a) = self.cache_get(now, server, RecordType::A) {
                            for arr in &a.rrs {
                                if let RData::A(h) = arr.data {
                                    eps.push(Endpoint::new(h, ports::DNS));
                                }
                            }
                        }
                    }
                }
                if !eps.is_empty() {
                    return eps;
                }
            }
            candidate = n.parent();
        }
        self.root_hints.clone()
    }

    fn respond(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        client: Endpoint,
        client_qid: u64,
        rcode: Rcode,
        answers: Vec<ResourceRecord>,
    ) {
        let resp = DnsMsg::Response {
            qid: client_qid,
            rcode,
            answers,
            authority: vec![],
            additional: vec![],
            authoritative: false,
            negative_ttl: 0,
        };
        ctx.send_datagram(client, resp.encode());
    }

    fn start_resolution(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        client: Endpoint,
        client_qid: u64,
        name: DnsName,
        rtype: RecordType,
    ) {
        let servers = self.best_servers(ctx.now(), &name);
        let qid = self.next_qid;
        self.next_qid += 1;
        let timer = ctx.set_timer(self.timeout, ns_token(RESOLVER_NS, qid));
        let inflight = InFlight {
            client,
            client_qid,
            name,
            rtype,
            servers,
            attempt: 0,
            budget: 16,
            timer,
        };
        self.send_upstream(ctx, qid, &inflight);
        self.inflight.insert(qid, inflight);
    }

    fn send_upstream(&mut self, ctx: &mut ServiceCtx<'_>, qid: u64, inf: &InFlight) {
        let server = inf.servers[inf.attempt % inf.servers.len()];
        let q = DnsMsg::Query {
            qid,
            name: inf.name.clone(),
            rtype: inf.rtype,
            recursion_desired: false,
        };
        self.stats.upstream_queries += 1;
        ctx.metrics().inc("dns.resolver.upstream", 1);
        ctx.send_datagram(server, q.encode());
    }

    fn handle_client_query(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Endpoint,
        qid: u64,
        name: DnsName,
        rtype: RecordType,
    ) {
        self.stats.client_queries += 1;
        ctx.metrics().inc("dns.resolver.queries", 1);
        // Positive cache.
        if let Some(entry) = self.cache_get(ctx.now(), &name, rtype) {
            let answers = entry.rrs.clone();
            self.stats.cache_hits += 1;
            ctx.metrics().inc("dns.resolver.hits", 1);
            self.respond(ctx, from, qid, Rcode::Ok, answers);
            return;
        }
        // Negative cache.
        if let Some(&expires) = self.negative.get(&Self::cache_key(&name, rtype)) {
            if expires > ctx.now() {
                self.stats.cache_hits += 1;
                ctx.metrics().inc("dns.resolver.neg_hits", 1);
                self.respond(ctx, from, qid, Rcode::NxDomain, vec![]);
                return;
            }
        }
        self.start_resolution(ctx, from, qid, name, rtype);
    }

    #[allow(clippy::too_many_arguments)] // mirrors the message fields
    fn handle_upstream_response(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        qid: u64,
        rcode: Rcode,
        answers: Vec<ResourceRecord>,
        authority: Vec<ResourceRecord>,
        additional: Vec<ResourceRecord>,
        authoritative: bool,
        negative_ttl: u32,
    ) {
        let Some(mut inf) = self.inflight.remove(&qid) else {
            return; // late duplicate
        };
        ctx.cancel_timer(inf.timer);
        match rcode {
            Rcode::Ok if !answers.is_empty() => {
                self.cache_put(ctx.now(), &answers);
                self.respond(ctx, inf.client, inf.client_qid, Rcode::Ok, answers);
            }
            Rcode::Ok if !authority.is_empty() => {
                // Referral: cache the delegation and descend.
                self.cache_put(ctx.now(), &authority);
                self.cache_put(ctx.now(), &additional);
                let mut next = Vec::new();
                for rr in &additional {
                    if let RData::A(h) = rr.data {
                        next.push(Endpoint::new(h, ports::DNS));
                    }
                }
                if next.is_empty() || inf.budget == 0 {
                    self.stats.failures += 1;
                    self.respond(ctx, inf.client, inf.client_qid, Rcode::ServFail, vec![]);
                    return;
                }
                inf.servers = next;
                inf.attempt = 0;
                inf.budget -= 1;
                inf.timer = ctx.set_timer(self.timeout, ns_token(RESOLVER_NS, qid));
                self.send_upstream(ctx, qid, &inf);
                self.inflight.insert(qid, inf);
            }
            Rcode::Ok if authoritative => {
                // Authoritative empty answer: NODATA.
                self.negative.insert(
                    Self::cache_key(&inf.name, inf.rtype),
                    ctx.now() + SimDuration::from_secs(negative_ttl as u64),
                );
                self.respond(ctx, inf.client, inf.client_qid, Rcode::NxDomain, vec![]);
            }
            Rcode::NxDomain => {
                self.negative.insert(
                    Self::cache_key(&inf.name, inf.rtype),
                    ctx.now() + SimDuration::from_secs(negative_ttl as u64),
                );
                self.respond(ctx, inf.client, inf.client_qid, Rcode::NxDomain, vec![]);
            }
            _ => {
                // Refused / ServFail / non-authoritative empty: try the
                // next server at this level if any remain.
                if inf.budget > 0 && inf.attempt + 1 < inf.servers.len() {
                    inf.attempt += 1;
                    inf.budget -= 1;
                    inf.timer = ctx.set_timer(self.timeout, ns_token(RESOLVER_NS, qid));
                    self.send_upstream(ctx, qid, &inf);
                    self.inflight.insert(qid, inf);
                } else {
                    self.stats.failures += 1;
                    self.respond(ctx, inf.client, inf.client_qid, Rcode::ServFail, vec![]);
                }
            }
        }
    }
}

impl Service for Resolver {
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        let msg = match DnsMsg::decode(&payload) {
            Ok(m) => m,
            Err(_) => {
                ctx.metrics().inc("dns.resolver.malformed", 1);
                return;
            }
        };
        match msg {
            DnsMsg::Query {
                qid, name, rtype, ..
            } => self.handle_client_query(ctx, from, qid, name, rtype),
            DnsMsg::Response {
                qid,
                rcode,
                answers,
                authority,
                additional,
                authoritative,
                negative_ttl,
            } => self.handle_upstream_response(
                ctx,
                qid,
                rcode,
                answers,
                authority,
                additional,
                authoritative,
                negative_ttl,
            ),
            _ => {
                ctx.metrics().inc("dns.resolver.unexpected", 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if !owns_token(RESOLVER_NS, token) {
            return;
        }
        let qid = token_id(token);
        let Some(mut inf) = self.inflight.remove(&qid) else {
            return;
        };
        if inf.budget == 0 {
            self.stats.failures += 1;
            self.respond(ctx, inf.client, inf.client_qid, Rcode::ServFail, vec![]);
            return;
        }
        inf.attempt += 1;
        inf.budget -= 1;
        inf.timer = ctx.set_timer(self.timeout, ns_token(RESOLVER_NS, qid));
        self.send_upstream(ctx, qid, &inf);
        self.inflight.insert(qid, inf);
    }

    fn on_crash(&mut self, _now: SimTime) {
        // Cache and in-flight state are volatile.
        self.cache.clear();
        self.negative.clear();
        self.inflight.clear();
    }

    impl_service_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_net::HostId;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    #[test]
    #[should_panic(expected = "root hints")]
    fn resolver_requires_hints() {
        let _ = Resolver::new(vec![]);
    }

    #[test]
    fn best_servers_falls_back_to_root() {
        let hints = vec![Endpoint::new(HostId(0), ports::DNS)];
        let r = Resolver::new(hints.clone());
        assert_eq!(r.best_servers(SimTime::ZERO, &name("a.b.c")), hints);
    }

    #[test]
    fn cache_respects_expiry() {
        let hints = vec![Endpoint::new(HostId(0), ports::DNS)];
        let mut r = Resolver::new(hints);
        let rr = ResourceRecord::new(name("x.glb"), 10, RData::A(HostId(5)));
        r.cache_put(SimTime::ZERO, std::slice::from_ref(&rr));
        assert!(r
            .cache_get(SimTime::from_secs(5), &name("x.glb"), RecordType::A)
            .is_some());
        assert!(r
            .cache_get(SimTime::from_secs(11), &name("x.glb"), RecordType::A)
            .is_none());
    }
}
