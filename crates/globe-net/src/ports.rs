//! Well-known port numbers used across the GDN deployment.
//!
//! Mirrors the paper's architecture (Figure 3): every daemon listens on a
//! fixed port so that contact addresses and configuration can name services
//! by `(host, port)` pairs.

/// DNS — authoritative name servers and the resolver protocol (datagrams).
pub const DNS: u16 = 53;
/// HTTP — GDN-enabled HTTPDs, plaintext (user-facing, streams).
pub const HTTP: u16 = 80;
/// HTTPS — GDN-enabled HTTPDs over gTLS with server authentication.
pub const HTTPS: u16 = 443;
/// Globe Location Service directory nodes (datagrams; the paper notes the
/// GLS is UDP-based for efficiency, §6.3).
pub const GLS: u16 = 411;
/// GNS Naming Authority — accepts authenticated add/remove requests from
/// moderator tools and issues DNS UPDATEs (streams over gTLS).
pub const GNS_NA: u16 = 953;
/// Globe Object Server control interface — replica creation/deletion
/// commands from moderator tools (streams over gTLS, two-way auth).
pub const GOS_CTL: u16 = 700;
/// Globe Replication Protocol — inter-replica state traffic (streams over
/// gTLS, two-way auth between GDN hosts).
pub const GRP: u16 = 2112;
/// Workload drivers, test harnesses and other simulation-only endpoints.
pub const DRIVER: u16 = 9000;
