//! World-engine bench: raw speed of the deterministic simulation
//! kernel on a synthetic many-host broadcast + request/reply workload
//! (see [`globe_bench::engine`]). Writes `BENCH_world_engine.json`
//! (events/sec, allocs/event, alloc bytes/event) and gates it against
//! the committed baseline: CI's `bench-smoke` job fails when
//! events/sec drops more than 10% or the allocation proxy grows more
//! than 10%. Bypass with `GLOBE_ENGINE_BASELINE=skip` for intentional
//! shifts and commit the regenerated file.
//!
//! A counting global allocator supplies the allocs-proxy: heap
//! allocations per processed event are a machine-independent measure
//! of how much copying the engine does per unit of work, so the gate
//! still catches copy regressions on CI machines whose raw events/sec
//! differs from the machine the baseline was recorded on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use globe_bench::engine::{
    engine_gate, engine_json, engine_summary_markdown, run_engine_workload, EngineGateOutcome,
    EngineReport, EngineSpec,
};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Counts every heap allocation the process makes; deallocation is
/// free. The deltas around a workload run are the allocs-proxy.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Anchors `file` at the workspace root regardless of cargo's bench
/// CWD.
fn workspace_file(file: &str) -> String {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => format!("{dir}/../../{file}"),
        Err(_) => file.to_owned(),
    }
}

/// Appends `summary` to the file named by `GLOBE_SWEEP_SUMMARY` or
/// `GITHUB_STEP_SUMMARY`.
fn write_summary(summary: &str) {
    let path = std::env::var("GLOBE_SWEEP_SUMMARY")
        .or_else(|_| std::env::var("GITHUB_STEP_SUMMARY"))
        .ok();
    let Some(path) = path.filter(|p| !p.is_empty()) else {
        return;
    };
    use std::io::Write;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{summary}"));
    if let Err(e) = result {
        eprintln!("could not write engine summary to {path}: {e}");
    }
}

const MEASURED_RUNS: usize = 3;

fn bench_world_engine(_c: &mut Criterion) {
    let spec = EngineSpec::standard();

    // Warmup run: pays one-time lazy initialization and faults in the
    // working set, and pins the deterministic counts.
    let (counts, _world) = run_engine_workload(&spec);

    let mut best_wall_ms = f64::MAX;
    let mut min_allocs = u64::MAX;
    let mut min_bytes = u64::MAX;
    for _ in 0..MEASURED_RUNS {
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let (run_counts, world) = run_engine_workload(&spec);
        let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
        let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - b0;
        drop(world);
        assert_eq!(run_counts, counts, "engine workload must be deterministic");
        best_wall_ms = best_wall_ms.min(wall_ms);
        min_allocs = min_allocs.min(allocs);
        min_bytes = min_bytes.min(bytes);
    }

    let events = counts.events;
    let report = EngineReport {
        workload: spec.workload_key(),
        events,
        wall_ms: best_wall_ms,
        events_per_sec: events as f64 / (best_wall_ms / 1000.0),
        allocs_per_event: min_allocs as f64 / events as f64,
        alloc_bytes_per_event: min_bytes as f64 / events as f64,
        msgs_delivered: counts.bcast_msgs + counts.replies,
    };
    println!(
        "world_engine: {} events in {:.1} ms  ->  {:.0} events/sec, \
         {:.3} allocs/event, {:.1} alloc bytes/event, {} msgs",
        report.events,
        report.wall_ms,
        report.events_per_sec,
        report.allocs_per_event,
        report.alloc_bytes_per_event,
        report.msgs_delivered
    );

    let json = engine_json(&report);
    let path = workspace_file("BENCH_world_engine.json");
    let baseline = std::fs::read_to_string(&path).ok();
    let skip_reason = (std::env::var("GLOBE_ENGINE_BASELINE").as_deref() == Ok("skip"))
        .then_some("GLOBE_ENGINE_BASELINE=skip (baseline regeneration)");
    let gate = engine_gate(baseline.as_deref(), &report, skip_reason)
        .expect("committed engine baseline must stay parseable");

    write_summary(&engine_summary_markdown(&report, &gate));

    // A failing run must not ratchet its own numbers into the
    // baseline; park them next to it for the CI artifact instead.
    let rejected = format!("{path}.rejected");
    match &gate {
        EngineGateOutcome::Skipped { reason } => eprintln!("engine gate skipped: {reason}"),
        EngineGateOutcome::NoBaseline => eprintln!("engine gate: no committed baseline"),
        EngineGateOutcome::Pass { baseline } => println!(
            "engine gate: pass (baseline {:.0} events/sec, {:.3} allocs/event)",
            baseline.events_per_sec, baseline.allocs_per_event
        ),
        EngineGateOutcome::Fail { violations, .. } => {
            if let Err(e) = std::fs::write(&rejected, &json) {
                eprintln!("could not write {rejected}: {e}");
            }
            panic!(
                "world engine trajectory regressions vs committed baseline \
                 (fresh numbers at {rejected}):\n  {}",
                violations.join("\n  ")
            );
        }
    }
    if gate.allows_baseline_write() {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("could not write {path}: {e}");
        }
    }
}

criterion_group!(benches, bench_world_engine);
criterion_main!(benches);
