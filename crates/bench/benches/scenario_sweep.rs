//! Scenario sweep bench: the full policy × propagation-mode ×
//! DSO-class matrix plus the churn/adaptive cells, at the scale
//! selected by `GLOBE_SWEEP_SCALE` (`smoke` — the default, what CI's
//! `bench-smoke` job runs on every push — or `full`, the nightly
//! `bench-full` scale with wider worlds and a longer read phase).
//!
//! Every cell's world-level measurements are printed as markdown
//! tables and written to `BENCH_scenario_sweep.json` (smoke) or
//! `BENCH_scenario_sweep_full.json` (full — the committed smoke
//! baseline is never rewritten by a full-scale run). The run *fails*
//! on invariant violations ([`check_sweep_invariants`]): any stale
//! read — including under churn — any cell without read traffic,
//! delta propagation losing to state propagation on the write-heavy
//! class at 8+ slaves, an availability window over the bound in a
//! churn cell, or an idle adaptive controller. Smoke runs additionally
//! fail the trajectory gate ([`trajectory_gate`]) when a steady-state
//! cell regresses >10% (churn cells: the wider band) on grp bytes or
//! p99 against the committed baseline; bypass with
//! `GLOBE_SWEEP_BASELINE=skip` for intentional shifts and commit the
//! regenerated file.
//!
//! When `GLOBE_SWEEP_SUMMARY` (or the CI-provided
//! `GITHUB_STEP_SUMMARY`) names a file, the matrix, the availability
//! columns, and the per-cell trajectory diff are appended to it as
//! markdown — the job summary shows regressions without anyone
//! downloading the artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use globe_bench::sweep::{SweepScale, AVAIL_TABLE_HEADERS, SWEEP_TABLE_HEADERS};
use globe_bench::{
    all_cells, avail_table_rows, check_sweep_invariants, print_table, run_cell, summary_markdown,
    sweep_json, sweep_table_rows, trajectory_gate, CellReport, GateOutcome,
};

/// Anchors `file` at the workspace root regardless of cargo's bench
/// CWD.
fn workspace_file(file: &str) -> String {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => format!("{dir}/../../{file}"),
        Err(_) => file.to_owned(),
    }
}

/// Appends `summary` to the file named by `GLOBE_SWEEP_SUMMARY` or
/// `GITHUB_STEP_SUMMARY` (appending is the step-summary convention:
/// other steps of the job may have written their own sections).
fn write_summary(summary: &str) {
    let path = std::env::var("GLOBE_SWEEP_SUMMARY")
        .or_else(|_| std::env::var("GITHUB_STEP_SUMMARY"))
        .ok();
    let Some(path) = path.filter(|p| !p.is_empty()) else {
        return;
    };
    use std::io::Write;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{summary}"));
    if let Err(e) = result {
        eprintln!("could not write sweep summary to {path}: {e}");
    }
}

fn bench_scenario_sweep(c: &mut Criterion) {
    let scale = SweepScale::from_env();
    let spec = scale.spec();
    let full_scale = scale == SweepScale::Full;
    let mut reports: Vec<CellReport> = Vec::new();
    let mut g = c.benchmark_group("scenario_sweep");
    for cell in all_cells(&spec) {
        let mut last: Option<CellReport> = None;
        g.bench_function(cell.key(), |b| {
            b.iter(|| last = Some(run_cell(&cell, &spec)))
        });
        reports.push(last.expect("bench ran at least once"));
    }
    g.finish();

    print_table(
        "scenario sweep — policy × propagation mode × DSO class × churn",
        &SWEEP_TABLE_HEADERS,
        &sweep_table_rows(&reports),
    );
    let avail = avail_table_rows(&reports);
    if !avail.is_empty() {
        print_table("availability under churn", &AVAIL_TABLE_HEADERS, &avail);
    }

    let json = sweep_json(&reports);
    // A full-scale run gets its own file: the committed smoke baseline
    // is only ever rewritten by a passing (or explicitly skipped)
    // smoke run.
    let path = workspace_file(scale.matrix_file());
    // The committed smoke JSON is the previous revision's trajectory
    // point.
    let baseline = std::fs::read_to_string(workspace_file(SweepScale::Smoke.matrix_file())).ok();

    let skip_reason = if std::env::var("GLOBE_SWEEP_BASELINE").as_deref() == Ok("skip") {
        Some("GLOBE_SWEEP_BASELINE=skip (baseline regeneration)")
    } else if full_scale {
        Some("full-scale run; the committed baseline is smoke-scale")
    } else {
        None
    };
    let gate = trajectory_gate(baseline.as_deref(), &json, skip_reason)
        .expect("committed sweep baseline must stay parseable");

    let violations = check_sweep_invariants(&reports);
    // The summary goes out before any panic below, so a failing CI run
    // still renders its matrix and verdicts into the job summary.
    write_summary(&summary_markdown(&reports, &violations, &gate));

    // A failing run — invariants or trajectory — must not ratchet its
    // own numbers into the baseline a rerun would compare against;
    // park the fresh matrix next to it instead, so the CI artifact
    // carries the numbers that actually failed.
    let rejected = format!("{path}.rejected");
    if !violations.is_empty() || !gate.allows_baseline_write() {
        if let Err(e) = std::fs::write(&rejected, &json) {
            eprintln!("could not write {rejected}: {e}");
        }
    }

    assert!(
        violations.is_empty(),
        "scenario sweep invariant violations (fresh matrix at {rejected}):\n  {}",
        violations.join("\n  ")
    );

    match &gate {
        GateOutcome::Skipped { reason } => eprintln!("trajectory gate skipped: {reason}"),
        GateOutcome::NoBaseline => eprintln!("trajectory gate: no committed baseline"),
        GateOutcome::Pass { rows } => println!(
            "trajectory gate: {} cells within tolerance of the committed baseline",
            rows.len()
        ),
        GateOutcome::Fail { violations, .. } => panic!(
            "scenario sweep trajectory regressions vs committed baseline \
             (fresh matrix at {rejected}):\n  {}",
            violations.join("\n  ")
        ),
    }
    if gate.allows_baseline_write() {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("could not write {path}: {e}");
        }
    }
}

criterion_group!(benches, bench_scenario_sweep);
criterion_main!(benches);
