//! The download-stats DSO: per-package download accounting.
//!
//! "On the Superdistribution of Digital Goods" motivates tracking how
//! often each package is fetched — mirror operators and moderators want
//! usage telemetry. Unlike packages (write-rarely) and catalogs
//! (read-heavy), this class is *write-heavy*: every fetch anywhere in
//! the world records an increment, so the replication scenario of
//! choice is a master with many slaves and the cost that matters is the
//! master's per-write fan-out. That makes it the natural workload for
//! the delta pipeline: an increment's delta is a few dozen bytes where
//! the full state grows with the number of tracked packages.
//!
//! Deltas are *coalesced*: pending increments merge per package name,
//! so the delta for a burst of writes is bounded by the number of
//! distinct packages touched, not the number of writes — and because
//! increments are additive, concatenating consecutive deltas is itself
//! a valid delta (the property [`GrpBody::Refresh`] catch-up splicing
//! relies on).
//!
//! [`GrpBody::Refresh`]: globe_rts::GrpBody::Refresh

use std::collections::BTreeMap;

use globe_rts::interface::{DsoInterface, DsoState};
use globe_rts::{dso_interface, wire_struct, ImplId, SemError};

use crate::modtool::{ModOp, Scenario};

/// The download-stats class's identifier in the implementation
/// repository.
pub const STATS_IMPL: ImplId = <DownloadStatsInterface as DsoInterface>::IMPL;

/// Coalesced pending increments past this many distinct names overflow
/// the delta log (consumers then fall back to full state transfer).
const PENDING_CAP: usize = 4096;

wire_struct! {
    /// `record` arguments: one completed download.
    pub struct RecordDownload {
        /// The fetched package's Globe object name.
        pub name: String,
        /// Bytes served for the fetch.
        pub bytes: u64,
    }
}

wire_struct! {
    /// `getStat` arguments.
    pub struct StatQuery {
        /// The package name to look up.
        pub name: String,
    }
}

wire_struct! {
    /// Per-package counters (`record` / `getStat` result, `top`
    /// element).
    pub struct PackageStat {
        /// The package's Globe object name.
        pub name: String,
        /// Completed downloads.
        pub downloads: u64,
        /// Total bytes served.
        pub bytes: u64,
    }
}

wire_struct! {
    /// Site-wide totals (`totals` result).
    pub struct StatsTotals {
        /// Completed downloads across all packages.
        pub downloads: u64,
        /// Total bytes served across all packages.
        pub bytes: u64,
    }
}

wire_struct! {
    /// `top` arguments.
    pub struct TopQuery {
        /// Maximum number of packages to return.
        pub limit: u32,
    }
}

/// The download-stats semantics subobject: additive per-name counters.
#[derive(Default)]
pub struct DownloadStatsDso {
    /// name → (downloads, bytes).
    stats: BTreeMap<String, (u64, u64)>,
    /// Coalesced increments since the last delta drain.
    pending: BTreeMap<String, (u64, u64)>,
    /// The pending map outgrew [`PENDING_CAP`]: report "no delta".
    pending_overflow: bool,
    /// Bumped on every state change: the cheap persistence digest.
    gen: u64,
}

impl DownloadStatsDso {
    /// Creates an empty stats object.
    pub fn new() -> DownloadStatsDso {
        DownloadStatsDso::default()
    }

    /// Number of tracked packages (direct inspection for tests).
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether no downloads have been recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    fn bump(&mut self, name: &str, downloads: u64, bytes: u64) {
        let entry = self.stats.entry(name.to_owned()).or_insert((0, 0));
        entry.0 += downloads;
        entry.1 += bytes;
        self.gen += 1;
    }

    // Typed method handlers, dispatched by the interface declaration
    // below.

    fn record(&mut self, args: RecordDownload) -> Result<PackageStat, SemError> {
        self.bump(&args.name, 1, args.bytes);
        if !self.pending_overflow {
            let pending = self.pending.entry(args.name.clone()).or_insert((0, 0));
            pending.0 += 1;
            pending.1 += args.bytes;
            if self.pending.len() > PENDING_CAP {
                self.pending.clear();
                self.pending_overflow = true;
            }
        }
        let (downloads, bytes) = self.stats[&args.name];
        Ok(PackageStat {
            name: args.name,
            downloads,
            bytes,
        })
    }

    fn get_stat(&mut self, args: StatQuery) -> Result<PackageStat, SemError> {
        let (downloads, bytes) = self.stats.get(&args.name).copied().unwrap_or((0, 0));
        Ok(PackageStat {
            name: args.name,
            downloads,
            bytes,
        })
    }

    fn totals(&mut self, _args: ()) -> Result<StatsTotals, SemError> {
        let (downloads, bytes) = self
            .stats
            .values()
            .fold((0, 0), |(d, b), &(dd, bb)| (d + dd, b + bb));
        Ok(StatsTotals { downloads, bytes })
    }

    fn top(&mut self, args: TopQuery) -> Result<Vec<PackageStat>, SemError> {
        let mut all: Vec<PackageStat> = self
            .stats
            .iter()
            .map(|(name, &(downloads, bytes))| PackageStat {
                name: name.clone(),
                downloads,
                bytes,
            })
            .collect();
        // Most-downloaded first; names break ties deterministically.
        all.sort_by(|a, b| b.downloads.cmp(&a.downloads).then(a.name.cmp(&b.name)));
        all.truncate(args.limit as usize);
        Ok(all)
    }
}

impl DsoState for DownloadStatsDso {
    fn save(&self) -> Vec<u8> {
        use globe_net::WireWriter;
        let mut w = WireWriter::new();
        w.put_u32(self.stats.len() as u32);
        for (name, &(downloads, bytes)) in &self.stats {
            w.put_str(name);
            w.put_u64(downloads);
            w.put_u64(bytes);
        }
        w.finish()
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        let parse = || -> Result<BTreeMap<String, (u64, u64)>, WireError> {
            let mut r = WireReader::new(state);
            let n = r.u32()?;
            if n > 1_000_000 {
                return Err(WireError::TooLarge);
            }
            let mut stats = BTreeMap::new();
            for _ in 0..n {
                let name = r.str()?.to_owned();
                let downloads = r.u64()?;
                let bytes = r.u64()?;
                stats.insert(name, (downloads, bytes));
            }
            r.expect_end()?;
            Ok(stats)
        };
        self.stats = parse().map_err(|_| SemError::BadState)?;
        // New baseline: undrained increments predate it.
        self.pending.clear();
        self.pending_overflow = false;
        self.gen += 1;
        Ok(())
    }

    fn digest(&self) -> u64 {
        self.gen
    }

    fn take_delta(&mut self) -> Option<Vec<u8>> {
        use globe_net::WireWriter;
        if self.pending_overflow {
            self.pending_overflow = false;
            return None;
        }
        let mut w = WireWriter::new();
        for (name, &(downloads, bytes)) in &self.pending {
            w.put_str(name);
            w.put_u64(downloads);
            w.put_u64(bytes);
        }
        self.pending.clear();
        Some(w.finish())
    }

    fn apply_delta(&mut self, delta: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        let parse = || -> Result<Vec<(String, u64, u64)>, WireError> {
            let mut r = WireReader::new(delta);
            let mut incs = Vec::new();
            while r.remaining() > 0 {
                incs.push((r.str()?.to_owned(), r.u64()?, r.u64()?));
            }
            Ok(incs)
        };
        let incs = parse().map_err(|_| SemError::BadState)?;
        for (name, downloads, bytes) in incs {
            self.bump(&name, downloads, bytes);
        }
        Ok(())
    }
}

dso_interface! {
    /// The download-stats DSO interface: increment-per-fetch telemetry.
    pub interface DownloadStatsInterface {
        class: "gdn-download-stats",
        impl_id: 12,
        semantics: DownloadStatsDso,
        methods: {
            /// Records one completed download. Write; an *increment*,
            /// so deliberately NOT marked idempotent — a blind re-invoke
            /// after an ambiguous failure would double-count.
            1 => write RECORD/record(RecordDownload) -> PackageStat,
            /// Reads one package's counters. Read.
            2 => read GET_STAT/get_stat(StatQuery) -> PackageStat,
            /// Reads the site-wide totals. Read.
            3 => read TOTALS/totals(()) -> StatsTotals,
            /// The most-downloaded packages. Read.
            4 => read TOP/top(TopQuery) -> Vec<PackageStat>,
        }
    }
}

/// Builds the moderator operation publishing an (empty) stats object
/// under `name` with the given replication scenario.
pub fn stats_publish_op(name: &str, scenario: Scenario) -> ModOp {
    ModOp::PublishObject {
        name: name.to_owned(),
        impl_id: STATS_IMPL,
        scenario,
        fill: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_rts::{Invocation, MethodId, MethodKind, SemanticsObject};

    fn record(s: &mut DownloadStatsDso, name: &str, bytes: u64) -> PackageStat {
        let raw = s
            .dispatch(&DownloadStatsInterface::RECORD.invocation(&RecordDownload {
                name: name.into(),
                bytes,
            }))
            .unwrap();
        DownloadStatsInterface::RECORD.decode_result(&raw).unwrap()
    }

    #[test]
    fn record_accumulates_and_ranks() {
        let mut s = DownloadStatsDso::new();
        record(&mut s, "/apps/graphics/gimp", 100);
        record(&mut s, "/apps/graphics/gimp", 50);
        let stat = record(&mut s, "/apps/editors/emacs", 10);
        assert_eq!(stat.downloads, 1);

        let raw = s
            .dispatch(&DownloadStatsInterface::GET_STAT.invocation(&StatQuery {
                name: "/apps/graphics/gimp".into(),
            }))
            .unwrap();
        let stat = DownloadStatsInterface::GET_STAT
            .decode_result(&raw)
            .unwrap();
        assert_eq!((stat.downloads, stat.bytes), (2, 150));

        let raw = s
            .dispatch(&DownloadStatsInterface::TOTALS.invocation(&()))
            .unwrap();
        let totals = DownloadStatsInterface::TOTALS.decode_result(&raw).unwrap();
        assert_eq!((totals.downloads, totals.bytes), (3, 160));

        let raw = s
            .dispatch(&DownloadStatsInterface::TOP.invocation(&TopQuery { limit: 1 }))
            .unwrap();
        let top = DownloadStatsInterface::TOP.decode_result(&raw).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].name, "/apps/graphics/gimp");

        // Unknown packages read as zero.
        let raw = s
            .dispatch(&DownloadStatsInterface::GET_STAT.invocation(&StatQuery {
                name: "/nope".into(),
            }))
            .unwrap();
        let stat = DownloadStatsInterface::GET_STAT
            .decode_result(&raw)
            .unwrap();
        assert_eq!(stat.downloads, 0);
    }

    #[test]
    fn deltas_coalesce_per_name_and_concatenate() {
        let mut a = DownloadStatsDso::new();
        let mut b = DownloadStatsDso::new();
        b.set_state(&a.get_state()).unwrap();
        let _ = SemanticsObject::take_delta(&mut b);

        record(&mut a, "/x", 10);
        record(&mut a, "/x", 20);
        record(&mut a, "/y", 5);
        let d1 = SemanticsObject::take_delta(&mut a).unwrap();
        record(&mut a, "/x", 1);
        let d2 = SemanticsObject::take_delta(&mut a).unwrap();

        // Coalescing: three writes, two pending entries.
        assert!(d1.len() < 3 * d2.len() + 16);

        // Concatenated deltas apply as one.
        let mut joined = d1.clone();
        joined.extend_from_slice(&d2);
        SemanticsObject::apply_delta(&mut b, &joined).unwrap();
        assert_eq!(b.get_state(), a.get_state());
    }

    #[test]
    fn pending_overflow_falls_back_to_full_state() {
        let mut s = DownloadStatsDso::new();
        for i in 0..(PENDING_CAP + 2) {
            record(&mut s, &format!("/pkg/{i}"), 1);
        }
        assert_eq!(SemanticsObject::take_delta(&mut s), None);
        // The log recovers after the overflow drain.
        record(&mut s, "/pkg/0", 1);
        assert!(SemanticsObject::take_delta(&mut s).is_some());
    }

    #[test]
    fn state_transfer_and_totality() {
        let mut a = DownloadStatsDso::new();
        record(&mut a, "/x", 7);
        let mut b = DownloadStatsDso::new();
        b.set_state(&a.get_state()).unwrap();
        assert_eq!(b.get_state(), a.get_state());
        assert!(b.set_state(&[9]).is_err());
        assert!(SemanticsObject::apply_delta(&mut b, &[0xFF]).is_err());
        assert!(matches!(
            b.dispatch(&Invocation::new(MethodId(99), vec![])),
            Err(SemError::NoSuchMethod(_))
        ));
        assert_eq!(
            b.dispatch(&Invocation::new(
                DownloadStatsInterface::RECORD.id(),
                vec![0xFF]
            )),
            Err(SemError::BadArguments)
        );
    }

    #[test]
    fn digest_tracks_changes_only() {
        let mut s = DownloadStatsDso::new();
        let d0 = SemanticsObject::state_digest(&s);
        let raw = s
            .dispatch(&DownloadStatsInterface::TOTALS.invocation(&()))
            .unwrap();
        let _ = raw;
        assert_eq!(
            SemanticsObject::state_digest(&s),
            d0,
            "reads must not move the digest"
        );
        record(&mut s, "/x", 1);
        assert_ne!(SemanticsObject::state_digest(&s), d0);
    }

    #[test]
    fn class_registration_and_kinds() {
        let mut repo = globe_rts::ImplRepository::new();
        DownloadStatsInterface::register(&mut repo);
        assert!(repo.contains(STATS_IMPL));
        assert_eq!(
            repo.kind_of(STATS_IMPL, DownloadStatsInterface::RECORD.id()),
            Some(MethodKind::Write)
        );
        assert_eq!(
            repo.kind_of(STATS_IMPL, DownloadStatsInterface::TOTALS.id()),
            Some(MethodKind::Read)
        );
    }
}
