//! A scripted web browser: the user side of the GDN (paper §4,
//! Figure 3).
//!
//! Browsers talk ordinary HTTP to their nearest GDN-enabled HTTPD
//! ("users communicate with only one GDN-HTTPD, in particular, with the
//! one nearest to them"). The [`Browser`] service fetches a script of
//! URLs sequentially and records outcome and latency per fetch;
//! workload generators in `globe-workloads` drive open-loop variants.

use std::collections::BTreeMap;

use globe_net::{impl_service_any, ConnEvent, ConnId, Endpoint, Service, ServiceCtx};
use globe_sim::{SimDuration, SimTime};

use crate::http::{HttpRequest, HttpResponse};

/// Outcome of one fetch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchResult {
    /// The requested path.
    pub path: String,
    /// HTTP status (0 when the connection failed).
    pub status: u16,
    /// Body size in bytes.
    pub body_len: usize,
    /// End-to-end latency (connect → full response).
    pub latency: SimDuration,
    /// Response body (kept only when `keep_bodies` is set).
    pub body: Vec<u8>,
}

struct InFlight {
    path: String,
    started: SimTime,
}

/// A scripted browser issuing sequential GET requests.
pub struct Browser {
    httpd: Endpoint,
    script: Vec<String>,
    cursor: usize,
    inflight: BTreeMap<u64, InFlight>,
    keep_bodies: bool,
    /// Completed fetches, in order.
    pub results: Vec<FetchResult>,
}

impl Browser {
    /// Creates a browser fetching `script` paths from `httpd`, one at a
    /// time.
    pub fn new(httpd: Endpoint, script: Vec<String>) -> Browser {
        Browser {
            httpd,
            script,
            cursor: 0,
            inflight: BTreeMap::new(),
            keep_bodies: false,
            results: Vec::new(),
        }
    }

    /// Keep response bodies in the results (tests that check contents).
    pub fn keeping_bodies(mut self) -> Browser {
        self.keep_bodies = true;
        self
    }

    /// Whether every scripted fetch has completed.
    pub fn done(&self) -> bool {
        self.cursor >= self.script.len() && self.inflight.is_empty()
    }

    fn kick(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.cursor >= self.script.len() {
            return;
        }
        let path = self.script[self.cursor].clone();
        self.cursor += 1;
        let conn = ctx.connect(self.httpd);
        ctx.send(conn, HttpRequest::get(&path));
        self.inflight.insert(
            conn.0,
            InFlight {
                path,
                started: ctx.now(),
            },
        );
    }
}

impl Service for Browser {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.kick(ctx);
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match ev {
            ConnEvent::Msg(data) => {
                let Some(inflight) = self.inflight.remove(&conn.0) else {
                    return;
                };
                let latency = ctx.now().saturating_sub(inflight.started);
                ctx.metrics()
                    .record("browser.fetch_us", latency.as_micros());
                let (status, body) = match HttpResponse::parse(&data) {
                    Some(resp) => (resp.status, resp.body),
                    None => (0, Vec::new()),
                };
                self.results.push(FetchResult {
                    path: inflight.path,
                    status,
                    body_len: body.len(),
                    latency,
                    body: if self.keep_bodies { body } else { Vec::new() },
                });
                ctx.close(conn);
                self.kick(ctx);
            }
            ConnEvent::Closed(reason) => {
                if let Some(inflight) = self.inflight.remove(&conn.0) {
                    // Connection died before a response arrived.
                    ctx.metrics().inc("browser.failures", 1);
                    self.results.push(FetchResult {
                        path: inflight.path,
                        status: 0,
                        body_len: 0,
                        latency: ctx.now().saturating_sub(inflight.started),
                        body: format!("connection failed: {reason}").into_bytes(),
                    });
                    self.kick(ctx);
                }
            }
            ConnEvent::Opened | ConnEvent::Incoming { .. } => {}
        }
    }

    impl_service_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browser_starts_idle_with_empty_script() {
        let b = Browser::new(Endpoint::new(globe_net::HostId(0), 80), vec![]);
        assert!(b.done());
        assert!(b.results.is_empty());
    }
}
