//! The world-engine bench workload and its trajectory gate.
//!
//! ROADMAP names "make the world engine itself hardware-fast" as the
//! item that unlocks running cells with millions of requests. This
//! module defines the synthetic workload that measures raw engine
//! speed — a many-host broadcast fan-out plus site-local request/reply
//! pipelines, the two schedule patterns that dominate every real
//! sweep cell — and the machinery that ratchets the measurement:
//! `BENCH_world_engine.json` is committed at the repository root and
//! [`engine_gate`] fails the bench when events/sec regresses more than
//! [`ENGINE_TOLERANCE`] (or the allocation proxy grows by more than the
//! same band) against that baseline. Regenerate with
//! `GLOBE_ENGINE_BASELINE=skip` when a change intentionally moves the
//! numbers, then commit the fresh JSON.
//!
//! The workload itself is deterministic: given the same
//! [`EngineSpec`], two runs process the same events in the same order
//! and deliver the same messages (the `workload_is_deterministic` test
//! holds the engine to that). Only the wall-clock side of the report —
//! events/sec — varies between machines; the allocation counters are a
//! machine-independent proxy for copying work, which is why the gate
//! checks them too.

use globe_net::{
    impl_service_any, ConnEvent, ConnId, Endpoint, HostId, NetParams, Payload, Service, ServiceCtx,
    Topology, World,
};
use globe_sim::{MetricId, SimDuration};

/// Port of the broadcast source service.
pub const ENGINE_BCAST_PORT: u16 = 9501;
/// Port of the per-host broadcast subscribers.
pub const ENGINE_SUB_PORT: u16 = 9502;
/// Port of the per-host request responders.
pub const ENGINE_RESP_PORT: u16 = 9503;
/// Port of the site-local requesters.
pub const ENGINE_REQ_PORT: u16 = 9504;

/// Parameters of the synthetic engine workload.
///
/// The `workload` string in the emitted JSON is derived from these, so
/// a baseline recorded against one shape is never silently compared
/// against another.
#[derive(Clone, Debug)]
pub struct EngineSpec {
    /// Grid dimensions: regions × countries × sites × hosts-per-site.
    pub regions: u32,
    /// Countries per region.
    pub countries: u32,
    /// Sites per country.
    pub sites: u32,
    /// Hosts per site.
    pub hosts_per_site: u32,
    /// Virtual seconds to run.
    pub virtual_secs: u64,
    /// Broadcast tick period.
    pub broadcast_every: SimDuration,
    /// Broadcast payload size (bytes).
    pub broadcast_bytes: usize,
    /// Request and reply payload size (bytes).
    pub rpc_bytes: usize,
    /// Outstanding requests per requester (closed-loop pipeline depth).
    pub pipeline: usize,
    /// World seed.
    pub seed: u64,
}

impl EngineSpec {
    /// The standard workload the committed baseline is recorded
    /// against: 32 hosts, a 31-way broadcast fan-out every 2 ms, and a
    /// 4-deep request/reply pipeline per site-local host pair.
    pub fn standard() -> EngineSpec {
        EngineSpec {
            regions: 4,
            countries: 1,
            sites: 2,
            hosts_per_site: 4,
            virtual_secs: 10,
            broadcast_every: SimDuration::from_millis(2),
            broadcast_bytes: 1024,
            rpc_bytes: 256,
            pipeline: 4,
            seed: 7,
        }
    }

    /// The identity key written into the JSON report.
    pub fn workload_key(&self) -> String {
        format!(
            "grid{}x{}x{}x{}/v{}s/b{}B@{}us/rpc{}Bx{}/seed{}",
            self.regions,
            self.countries,
            self.sites,
            self.hosts_per_site,
            self.virtual_secs,
            self.broadcast_bytes,
            self.broadcast_every.as_micros(),
            self.rpc_bytes,
            self.pipeline,
            self.seed
        )
    }
}

/// Deterministic outputs of one workload run (everything except wall
/// time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineCounts {
    /// Events the world processed.
    pub events: u64,
    /// Broadcast messages delivered to subscribers.
    pub bcast_msgs: u64,
    /// Broadcast bytes delivered to subscribers.
    pub bcast_bytes: u64,
    /// Request/reply round trips completed.
    pub replies: u64,
}

// The workload services hold their fixed payloads as [`Payload`]s and
// send clones, the sharing idiom the runtime services use for fan-out:
// each send is a refcount bump, not a buffer copy, so the bench
// measures engine overhead rather than payload memcpy.

struct Broadcaster {
    subs: Vec<Endpoint>,
    payload: Payload,
    every: SimDuration,
    conns: Vec<ConnId>,
}

impl Service for Broadcaster {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.conns = self.subs.iter().map(|&d| ctx.connect(d)).collect();
        ctx.set_timer(self.every, 1);
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, _token: u64) {
        for &c in &self.conns {
            ctx.send(c, self.payload.clone());
        }
        ctx.set_timer(self.every, 1);
    }
    impl_service_any!();
}

struct Subscriber {
    msgs: u64,
    bytes: u64,
    id_msgs: Option<MetricId>,
}

impl Service for Subscriber {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.id_msgs = Some(ctx.metrics().metric_id("engine.sub.msgs"));
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, _conn: ConnId, ev: ConnEvent) {
        if let ConnEvent::Msg(m) = ev {
            self.msgs += 1;
            self.bytes += m.len() as u64;
            let id = self.id_msgs.expect("interned in on_start");
            ctx.metrics().inc_id(id, 1);
        }
    }
    impl_service_any!();
}

struct Responder {
    reply: Payload,
}

impl Service for Responder {
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        if let ConnEvent::Msg(_) = ev {
            ctx.send(conn, self.reply.clone());
        }
    }
    impl_service_any!();
}

struct Requester {
    dst: Endpoint,
    request: Payload,
    pipeline: usize,
    conn: Option<ConnId>,
    replies: u64,
}

impl Service for Requester {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        let conn = ctx.connect(self.dst);
        self.conn = Some(conn);
        for _ in 0..self.pipeline {
            ctx.send(conn, self.request.clone());
        }
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        if let ConnEvent::Msg(_) = ev {
            self.replies += 1;
            ctx.send(conn, self.request.clone());
        }
    }
    impl_service_any!();
}

/// Builds and runs the synthetic workload; returns the deterministic
/// counts and the finished world (whose `Metrics::report` the
/// golden-determinism test compares between runs).
pub fn run_engine_workload(spec: &EngineSpec) -> (EngineCounts, World) {
    let topo = Topology::grid(
        spec.regions,
        spec.countries,
        spec.sites,
        spec.hosts_per_site,
    );
    let mut world = World::new(topo, NetParams::default(), spec.seed);

    let hosts: Vec<HostId> = world.topology().hosts().collect();
    let source = hosts[0];
    let subs: Vec<Endpoint> = hosts
        .iter()
        .filter(|&&h| h != source)
        .map(|&h| Endpoint::new(h, ENGINE_SUB_PORT))
        .collect();
    world.add_service(
        source,
        ENGINE_BCAST_PORT,
        Broadcaster {
            subs,
            payload: vec![0xB7; spec.broadcast_bytes].into(),
            every: spec.broadcast_every,
            conns: Vec::new(),
        },
    );
    for &h in &hosts {
        world.add_service(
            h,
            ENGINE_SUB_PORT,
            Subscriber {
                msgs: 0,
                bytes: 0,
                id_msgs: None,
            },
        );
        world.add_service(
            h,
            ENGINE_RESP_PORT,
            Responder {
                reply: vec![0x9D; spec.rpc_bytes].into(),
            },
        );
    }
    // Site-local host pairs: the first of each pair runs the
    // closed-loop requester against the second's responder.
    let sites: Vec<_> = world.topology().sites().collect();
    let mut pairs = Vec::new();
    for s in sites {
        let in_site = world.topology().hosts_in_site(s).to_vec();
        for pair in in_site.chunks(2) {
            if let [a, b] = pair {
                pairs.push((*a, *b));
            }
        }
    }
    for (a, b) in &pairs {
        world.add_service(
            *a,
            ENGINE_REQ_PORT,
            Requester {
                dst: Endpoint::new(*b, ENGINE_RESP_PORT),
                request: vec![0x5A; spec.rpc_bytes].into(),
                pipeline: spec.pipeline,
                conn: None,
                replies: 0,
            },
        );
    }

    world.start();
    world.run_for(SimDuration::from_secs(spec.virtual_secs));

    let mut counts = EngineCounts {
        events: world.events_processed(),
        bcast_msgs: 0,
        bcast_bytes: 0,
        replies: 0,
    };
    for &h in &hosts {
        let sub = world
            .service::<Subscriber>(h, ENGINE_SUB_PORT)
            .expect("subscriber installed");
        counts.bcast_msgs += sub.msgs;
        counts.bcast_bytes += sub.bytes;
    }
    for (a, _) in &pairs {
        counts.replies += world
            .service::<Requester>(*a, ENGINE_REQ_PORT)
            .expect("requester installed")
            .replies;
    }
    (counts, world)
}

// ------------------------------------------------------------- the gate

/// Maximum tolerated relative regression per gated metric (0.10 =
/// events/sec may drop 10%, allocs/event may grow 10%).
pub const ENGINE_TOLERANCE: f64 = 0.10;

/// Absolute slack on allocs/event: sub-allocation jitter around a tiny
/// baseline must not fail the gate.
const ALLOCS_SLACK: f64 = 0.25;

/// One engine-bench measurement, as serialized to
/// `BENCH_world_engine.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineReport {
    /// Workload identity ([`EngineSpec::workload_key`]); baselines for
    /// a different workload are never compared.
    pub workload: String,
    /// Events processed in one run.
    pub events: u64,
    /// Best wall time over the measured runs, milliseconds.
    pub wall_ms: f64,
    /// Events per wall-clock second (best run).
    pub events_per_sec: f64,
    /// Heap allocations per event (min over runs) — the copying proxy.
    pub allocs_per_event: f64,
    /// Heap bytes allocated per event (min over runs).
    pub alloc_bytes_per_event: f64,
    /// Messages delivered (broadcast + replies), a workload checksum.
    pub msgs_delivered: u64,
}

/// Serializes a report in the flat one-field-per-line JSON format the
/// parser and gate understand.
pub fn engine_json(r: &EngineReport) -> String {
    format!(
        "{{\n  \"workload\": \"{}\",\n  \"events\": {},\n  \"wall_ms\": {:.3},\n  \
         \"events_per_sec\": {:.0},\n  \"allocs_per_event\": {:.3},\n  \
         \"alloc_bytes_per_event\": {:.1},\n  \"msgs_delivered\": {}\n}}\n",
        r.workload,
        r.events,
        r.wall_ms,
        r.events_per_sec,
        r.allocs_per_event,
        r.alloc_bytes_per_event,
        r.msgs_delivered
    )
}

fn field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest.find([',', '}', '\n'])?;
    Some(rest[..end].trim())
}

/// Parses the format [`engine_json`] emits.
pub fn parse_engine_json(json: &str) -> Result<EngineReport, String> {
    let workload = field(json, "workload")
        .map(|v| v.trim_matches('"').to_owned())
        .ok_or("engine JSON lacks workload")?;
    let num = |key: &str| -> Result<f64, String> {
        field(json, key)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("engine JSON lacks numeric {key}"))
    };
    Ok(EngineReport {
        workload,
        events: num("events")? as u64,
        wall_ms: num("wall_ms")?,
        events_per_sec: num("events_per_sec")?,
        allocs_per_event: num("allocs_per_event")?,
        alloc_bytes_per_event: num("alloc_bytes_per_event")?,
        msgs_delivered: num("msgs_delivered")? as u64,
    })
}

/// What the engine trajectory gate decided.
#[derive(Clone, Debug)]
pub enum EngineGateOutcome {
    /// Comparison bypassed (`GLOBE_ENGINE_BASELINE=skip`, or the
    /// baseline was recorded against a different workload shape).
    Skipped {
        /// Why.
        reason: String,
    },
    /// No committed baseline file was found.
    NoBaseline,
    /// Within tolerance of the baseline.
    Pass {
        /// The committed baseline.
        baseline: EngineReport,
    },
    /// Regressed against the baseline.
    Fail {
        /// The committed baseline.
        baseline: EngineReport,
        /// One message per violated metric.
        violations: Vec<String>,
    },
}

impl EngineGateOutcome {
    /// Whether the run may overwrite the committed baseline.
    pub fn allows_baseline_write(&self) -> bool {
        !matches!(self, EngineGateOutcome::Fail { .. })
    }
}

/// Gates `current` against the committed baseline JSON: events/sec may
/// not drop more than [`ENGINE_TOLERANCE`], and allocs/event (the
/// machine-independent copying proxy) may not grow more than the same
/// band. A baseline recorded against a different workload key skips
/// the comparison — the regenerated file becomes the new baseline.
pub fn engine_gate(
    baseline: Option<&str>,
    current: &EngineReport,
    skip_reason: Option<&str>,
) -> Result<EngineGateOutcome, String> {
    if let Some(reason) = skip_reason {
        return Ok(EngineGateOutcome::Skipped {
            reason: reason.to_owned(),
        });
    }
    let Some(baseline) = baseline else {
        return Ok(EngineGateOutcome::NoBaseline);
    };
    let base = parse_engine_json(baseline)?;
    if base.workload != current.workload {
        return Ok(EngineGateOutcome::Skipped {
            reason: format!(
                "workload changed ({} -> {}); baseline not comparable",
                base.workload, current.workload
            ),
        });
    }
    let mut violations = Vec::new();
    if current.events_per_sec < base.events_per_sec * (1.0 - ENGINE_TOLERANCE) {
        violations.push(format!(
            "events/sec regressed {:.0} -> {:.0} (> {:.0}%)",
            base.events_per_sec,
            current.events_per_sec,
            ENGINE_TOLERANCE * 100.0
        ));
    }
    if current.allocs_per_event > base.allocs_per_event * (1.0 + ENGINE_TOLERANCE) + ALLOCS_SLACK {
        violations.push(format!(
            "allocs/event regressed {:.3} -> {:.3} (> {:.0}% + slack)",
            base.allocs_per_event,
            current.allocs_per_event,
            ENGINE_TOLERANCE * 100.0
        ));
    }
    Ok(if violations.is_empty() {
        EngineGateOutcome::Pass { baseline: base }
    } else {
        EngineGateOutcome::Fail {
            baseline: base,
            violations,
        }
    })
}

/// Renders the run and its gate verdict as markdown for
/// `$GITHUB_STEP_SUMMARY`.
pub fn engine_summary_markdown(r: &EngineReport, gate: &EngineGateOutcome) -> String {
    let mut out = String::new();
    out.push_str("## World engine bench\n\n");
    out.push_str(&format!("workload: `{}`\n\n", r.workload));
    out.push_str("| metric | value |\n|---|---|\n");
    out.push_str(&format!("| events | {} |\n", r.events));
    out.push_str(&format!("| wall ms (best) | {:.1} |\n", r.wall_ms));
    out.push_str(&format!("| events/sec | {:.0} |\n", r.events_per_sec));
    out.push_str(&format!("| allocs/event | {:.3} |\n", r.allocs_per_event));
    out.push_str(&format!(
        "| alloc bytes/event | {:.1} |\n",
        r.alloc_bytes_per_event
    ));
    out.push_str(&format!("| msgs delivered | {} |\n\n", r.msgs_delivered));
    match gate {
        EngineGateOutcome::Skipped { reason } => {
            out.push_str(&format!("Gate skipped: {reason}.\n"));
        }
        EngineGateOutcome::NoBaseline => {
            out.push_str("No committed baseline found; nothing to gate against.\n");
        }
        EngineGateOutcome::Pass { baseline } => {
            out.push_str(&format!(
                "**PASS** — events/sec {:.0} vs baseline {:.0} ({}), allocs/event {:.3} vs {:.3}.\n",
                r.events_per_sec,
                baseline.events_per_sec,
                pct(baseline.events_per_sec, r.events_per_sec),
                r.allocs_per_event,
                baseline.allocs_per_event,
            ));
        }
        EngineGateOutcome::Fail { violations, .. } => {
            out.push_str(&format!("**FAIL** — {} violation(s):\n", violations.len()));
            for v in violations {
                out.push_str(&format!("- ❌ {v}\n"));
            }
        }
    }
    out
}

fn pct(base: f64, cur: f64) -> String {
    if base == 0.0 {
        return "new".into();
    }
    format!("{:+.1}%", (cur - base) / base * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> EngineSpec {
        EngineSpec {
            regions: 2,
            countries: 1,
            sites: 1,
            hosts_per_site: 2,
            virtual_secs: 1,
            broadcast_every: SimDuration::from_millis(10),
            broadcast_bytes: 128,
            rpc_bytes: 64,
            pipeline: 2,
            seed: 3,
        }
    }

    #[test]
    fn workload_delivers_traffic() {
        let (counts, world) = run_engine_workload(&small_spec());
        assert!(counts.events > 0);
        assert!(counts.bcast_msgs > 0, "{counts:?}");
        assert!(counts.replies > 0, "{counts:?}");
        assert_eq!(
            counts.bcast_bytes,
            counts.bcast_msgs * 128,
            "broadcast payloads arrive whole"
        );
        assert_eq!(
            world.metrics().counter("engine.sub.msgs"),
            counts.bcast_msgs
        );
    }

    #[test]
    fn workload_is_deterministic() {
        let (a, wa) = run_engine_workload(&small_spec());
        let (b, wb) = run_engine_workload(&small_spec());
        assert_eq!(a, b);
        assert_eq!(wa.metrics().report(), wb.metrics().report());
    }

    fn report(eps: f64, allocs: f64) -> EngineReport {
        EngineReport {
            workload: "test-shape".into(),
            events: 1_000_000,
            wall_ms: 500.0,
            events_per_sec: eps,
            allocs_per_event: allocs,
            alloc_bytes_per_event: allocs * 100.0,
            msgs_delivered: 123_456,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report(2_000_000.0, 3.5);
        let parsed = parse_engine_json(&engine_json(&r)).unwrap();
        assert_eq!(parsed.workload, r.workload);
        assert_eq!(parsed.events, r.events);
        assert!((parsed.events_per_sec - r.events_per_sec).abs() < 1.0);
        assert!((parsed.allocs_per_event - r.allocs_per_event).abs() < 1e-3);
        assert_eq!(parsed.msgs_delivered, r.msgs_delivered);
        assert!(parse_engine_json("garbage").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let base = engine_json(&report(1_000_000.0, 4.0));
        // 5% slower: within band.
        let ok = engine_gate(Some(&base), &report(950_000.0, 4.0), None).unwrap();
        assert!(matches!(ok, EngineGateOutcome::Pass { .. }));
        assert!(ok.allows_baseline_write());
        // 20% slower: fail.
        let slow = engine_gate(Some(&base), &report(800_000.0, 4.0), None).unwrap();
        match &slow {
            EngineGateOutcome::Fail { violations, .. } => {
                assert_eq!(violations.len(), 1);
                assert!(violations[0].contains("events/sec"));
            }
            other => panic!("expected fail, got {other:?}"),
        }
        assert!(!slow.allows_baseline_write());
        // Faster is always fine.
        let fast = engine_gate(Some(&base), &report(3_000_000.0, 4.0), None).unwrap();
        assert!(matches!(fast, EngineGateOutcome::Pass { .. }));
        // Alloc growth beyond the band fails even at equal speed.
        let leaky = engine_gate(Some(&base), &report(1_000_000.0, 5.0), None).unwrap();
        match &leaky {
            EngineGateOutcome::Fail { violations, .. } => {
                assert!(violations[0].contains("allocs/event"));
            }
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn gate_skip_and_missing_baseline_paths() {
        let cur = report(1.0, 1.0);
        assert!(matches!(
            engine_gate(None, &cur, None).unwrap(),
            EngineGateOutcome::NoBaseline
        ));
        let skipped = engine_gate(Some("garbage"), &cur, Some("skip")).unwrap();
        assert!(matches!(skipped, EngineGateOutcome::Skipped { .. }));
        assert!(skipped.allows_baseline_write());
        assert!(engine_gate(Some("garbage"), &cur, None).is_err());
    }

    #[test]
    fn changed_workload_skips_comparison() {
        let base = engine_json(&report(1_000_000.0, 4.0));
        let mut cur = report(1.0, 100.0); // would fail badly if compared
        cur.workload = "other-shape".into();
        let outcome = engine_gate(Some(&base), &cur, None).unwrap();
        match outcome {
            EngineGateOutcome::Skipped { ref reason } => {
                assert!(reason.contains("workload changed"), "{reason}");
            }
            other => panic!("expected skip, got {other:?}"),
        }
        assert!(outcome.allows_baseline_write());
    }

    #[test]
    fn summary_renders_verdicts() {
        let r = report(1_000_000.0, 4.0);
        let base = engine_json(&r);
        let gate = engine_gate(Some(&base), &r, None).unwrap();
        let md = engine_summary_markdown(&r, &gate);
        assert!(md.contains("## World engine bench"));
        assert!(md.contains("**PASS**"));
        let gate = engine_gate(Some(&base), &report(1.0, 100.0), None).unwrap();
        let md = engine_summary_markdown(&report(1.0, 100.0), &gate);
        assert!(md.contains("**FAIL**"));
    }
}
