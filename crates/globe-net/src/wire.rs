//! Length-prefixed binary wire format used by every protocol in the
//! system.
//!
//! The paper's replication and communication subobjects operate on
//! *opaque* invocation messages (§3.3); this module is the common encoding
//! those messages — and all service protocols (GLS, DNS, GRP, HTTP
//! framing) — are built from. Integers are big-endian; byte strings and
//! UTF-8 strings carry a `u32` length prefix.
//!
//! Decoding is total: every read returns a [`Result`] and malformed input
//! can never panic, which matters because the GDN accepts traffic from
//! unauthenticated user machines (paper §6.3 counters "bogus protocol
//! messages" with careful parsing).

use std::error::Error;
use std::fmt;

/// Errors produced while decoding a wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced data.
    Truncated,
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// The message decoded cleanly but bytes were left over.
    TrailingBytes,
    /// An enum tag byte had no defined meaning.
    BadTag(u8),
    /// A length or count field exceeded a sanity limit.
    TooLarge,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            WireError::TooLarge => write!(f, "length field exceeds sanity limit"),
        }
    }
}

impl Error for WireError {}

/// Sanity cap on any single length-prefixed field (64 MiB). Prevents a
/// malformed length from causing a giant allocation.
pub const MAX_FIELD: u32 = 64 << 20;

/// Incremental encoder.
///
/// # Examples
///
/// ```
/// use globe_net::{WireReader, WireWriter};
///
/// let mut w = WireWriter::new();
/// w.put_u32(7);
/// w.put_str("gimp");
/// let buf = w.finish();
///
/// let mut r = WireReader::new(&buf);
/// assert_eq!(r.u32().unwrap(), 7);
/// assert_eq!(r.str().unwrap(), "gimp");
/// r.expect_end().unwrap();
/// ```
#[derive(Default, Debug)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds the 64 MiB field limit (callers control their
    /// own payload sizes; exceeding the limit is a programming error).
    pub fn put_bytes(&mut self, v: &[u8]) {
        assert!(v.len() <= MAX_FIELD as usize, "field exceeds 64 MiB limit");
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends raw bytes without a length prefix (for fixed-size fields
    /// and nested pre-encoded messages).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded message.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Incremental decoder over a borrowed buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean (any nonzero byte is `true`).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_be_bytes(b))
    }

    /// Reads a big-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        let s = self.take(16)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(s);
        Ok(u128::from_be_bytes(b))
    }

    /// Reads a length-prefixed byte string (borrowed).
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()?;
        if n > MAX_FIELD {
            return Err(WireError::TooLarge);
        }
        self.take(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string (borrowed).
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads `n` raw bytes without a length prefix.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Succeeds only if the whole buffer was consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_u128(0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("hello");
        w.put_raw(&[9, 9]);
        let buf = w.finish();

        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.u128().unwrap(), 0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.raw(2).unwrap(), &[9, 9]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = WireWriter::new();
        w.put_u32(10);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        // Announces 10 bytes but none follow.
        assert_eq!(r.bytes().unwrap_err(), WireError::Truncated);

        let mut r2 = WireReader::new(&[0x01]);
        assert_eq!(r2.u16().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let _ = r.u8().unwrap();
        assert_eq!(r.expect_end().unwrap_err(), WireError::TrailingBytes);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.str().unwrap_err(), WireError::InvalidUtf8);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX); // absurd length prefix
        w.put_raw(&[0; 16]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes().unwrap_err(), WireError::TooLarge);
    }

    #[test]
    fn empty_fields() {
        let mut w = WireWriter::new();
        w.put_bytes(&[]);
        w.put_str("");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes().unwrap(), &[] as &[u8]);
        assert_eq!(r.str().unwrap(), "");
        r.expect_end().unwrap();
    }

    #[test]
    fn error_display_messages() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::BadTag(7).to_string().contains("0x07"));
    }

    #[test]
    fn writer_len_tracking() {
        let mut w = WireWriter::with_capacity(16);
        assert!(w.is_empty());
        w.put_u32(1);
        assert_eq!(w.len(), 4);
    }
}
