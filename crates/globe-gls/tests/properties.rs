//! Property-based tests of GLS invariants: message codec totality and
//! round trips, subnode routing stability, and deployment structure.

use proptest::prelude::*;

use globe_gls::proto::{AckOp, GlsMsg, Status};
use globe_gls::{ContactAddress, GlsConfig, GlsDeployment, Level, ObjectId};
use globe_net::{Endpoint, HostId, Topology};

fn arb_addr() -> impl Strategy<Value = ContactAddress> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(h, p, proto, imp, flags)| {
            ContactAddress::new(Endpoint::new(HostId(h), p), proto, flags & 1).with_impl(imp)
        })
}

fn arb_msg() -> impl Strategy<Value = GlsMsg> {
    let ep = (any::<u32>(), any::<u16>()).prop_map(|(h, p)| Endpoint::new(HostId(h), p));
    prop_oneof![
        (any::<u64>(), any::<u128>(), ep.clone(), any::<u32>()).prop_map(
            |(req, oid, origin, hops)| {
                GlsMsg::LookupUp {
                    req,
                    oid: ObjectId(oid),
                    origin,
                    hops,
                }
            }
        ),
        (any::<u64>(), any::<u128>(), ep.clone(), any::<u32>()).prop_map(
            |(req, oid, origin, hops)| {
                GlsMsg::LookupDown {
                    req,
                    oid: ObjectId(oid),
                    origin,
                    hops,
                }
            }
        ),
        (
            any::<u64>(),
            any::<u128>(),
            arb_addr(),
            ep.clone(),
            0u8..4,
            any::<u32>()
        )
            .prop_map(|(req, oid, addr, origin, lvl, hops)| GlsMsg::Insert {
                req,
                oid: ObjectId(oid),
                addr,
                origin,
                store_level: Level::from_tag(lvl).expect("0..4 is valid"),
                hops,
            }),
        (
            any::<u64>(),
            prop::collection::vec(arb_addr(), 0..8),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(req, addrs, hops, found)| GlsMsg::LookupResp {
                req,
                status: if found { Status::Ok } else { Status::NotFound },
                addrs,
                hops,
            }),
        (any::<u64>(), any::<u32>(), any::<bool>()).prop_map(|(req, hops, ins)| GlsMsg::Ack {
            req,
            op: if ins { AckOp::Insert } else { AckOp::Delete },
            hops,
        }),
    ]
}

proptest! {
    /// Every GLS message round-trips through the wire codec.
    #[test]
    fn gls_messages_round_trip(msg in arb_msg()) {
        let encoded = msg.encode();
        prop_assert_eq!(GlsMsg::decode(&encoded).unwrap(), msg);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn gls_decode_is_total(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = GlsMsg::decode(&garbage);
    }

    /// Subnode routing: deterministic, in range, and independent of
    /// unrelated ids.
    #[test]
    fn subnode_index_properties(oid: u128, k in 1u32..64) {
        let o = ObjectId(oid);
        let i = o.subnode_index(k);
        prop_assert!(i < k);
        prop_assert_eq!(i, o.subnode_index(k));
        prop_assert_eq!(o.subnode_index(1), 0);
    }

    /// Deployment structure holds for arbitrary grid shapes: every host
    /// has a site-level leaf whose ancestor chain reaches the root in
    /// exactly four levels, and routing picks endpoints of the domain.
    #[test]
    fn deployment_structure(
        regions in 1u32..3, countries in 1u32..3, sites in 1u32..3, hosts in 1u32..3,
        oid: u128, root_subnodes in 1u32..8,
    ) {
        let topo = Topology::grid(regions, countries, sites, hosts);
        let cfg = GlsConfig::default().with_root_subnodes(root_subnodes);
        let deploy = GlsDeployment::plan(&topo, &cfg);
        prop_assert_eq!(
            deploy.num_domains(),
            1 + topo.num_regions() + topo.num_countries() + topo.num_sites()
        );
        for h in topo.hosts() {
            let mut d = deploy.leaf_domain(&topo, h);
            let mut depth = 1;
            while let Some(p) = deploy.parent(d) {
                d = p;
                depth += 1;
            }
            prop_assert_eq!(depth, 4);
            prop_assert_eq!(d, deploy.root());
        }
        let ep = deploy.route(deploy.root(), ObjectId(oid));
        prop_assert!(deploy.subnodes(deploy.root()).contains(&ep));
    }
}
