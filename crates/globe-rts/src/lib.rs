//! The Globe run-time system: distributed shared objects for the GDN.
//!
//! This crate is the paper's middleware layer (§3): the *distributed
//! shared object* (DSO) model in which an object is physically
//! distributed over address spaces, each holding a *local
//! representative* composed of subobjects with standard interfaces:
//!
//! - **semantics** ([`object::SemanticsObject`]) — application behaviour,
//!   written without any distribution awareness;
//! - **replication** ([`replication::ReplicationSubobject`],
//!   [`protocols`]) — per-object protocol keeping replicas coherent,
//!   seeing only opaque invocations;
//! - **communication** — pooled gTLS stream connections, owned by the
//!   [`runtime::GlobeRuntime`];
//! - **control** — the typed marshalling layer, now provided generically
//!   by [`interface`]: interfaces are declared once with
//!   [`dso_interface!`] and the runtime hands out typed
//!   [`interface::TypedProxy`] handles (see the package and catalog DSOs
//!   in `gdn-core`).
//!
//! Around the object model sit the pieces of paper §3.4–§4:
//! [`repository`] (implementation loading), binding via the Globe
//! Location Service, the [`grp`] replication wire protocol, and the
//! [`server::GlobeObjectServer`] daemon with stable-storage replica
//! recovery. On top of it all sits [`client`]: [`client::GlobeClient`]
//! sessions that own the whole resolve → bind → invoke → retry
//! lifecycle, so applications start typed operations and receive one
//! completion event instead of juggling bind/invoke tokens.
//!
//! The replication protocol attached to an object — together with which
//! object servers host its replicas — is the object's *replication
//! scenario*, the per-object degree of freedom the whole paper is
//! about.

pub mod chunks;
pub mod client;
pub mod grp;
pub mod health;
pub mod interface;
pub mod object;
pub mod protocols;
pub mod replication;
pub mod repository;
pub mod runtime;
pub mod server;

pub use chunks::{
    assemble, chunk_id, new_store, release_chunks, short_id, store_chunks, ChunkId, ChunkRef,
    ChunkStats, ChunkStore, ChunkStoreRef, CHUNK_SIZE,
};
pub use client::{
    Candidate, CandidateSet, ClientConfig, ClientError, ClientStats, GlobeClient, OpBuilder,
    OpDone, OpId, OpOutput, OpTarget, Placement, RetryPolicy, RotationMode,
};
pub use grp::{protocol_id, GrpBody, GrpMsg, PropagationMode, RoleSpec};
pub use health::{Bucket, FailureReason, HealthLedger, ReplicaHealth};
pub use interface::{
    BoundObject, DsoInterface, DsoState, InterfaceError, MethodDef, MethodSpec, TypedProxy,
    WireCodec,
};
pub use object::{ClassSpec, Invocation, MethodId, MethodKind, SemError, SemanticsObject};
pub use protocols::{
    spawn_replication, CacheProxy, ForwardingProxy, MasterReplica, ServerReplica, SlaveReplica,
};
pub use replication::{InvokeError, Peer, ReplCtx, ReplicationSubobject};
pub use repository::{ImplId, ImplRepository};
pub use runtime::{BindError, BindInfo, BindRequest, GlobeRuntime, RtConn, RtEvent, RuntimeConfig};
pub use server::{GlobeObjectServer, GosCmd, GosResp, GosStats};
