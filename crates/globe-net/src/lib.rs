//! Simulated wide-area network and service runtime for the Globe/GDN
//! reproduction.
//!
//! The Globe Distribution Network paper ran on the real Internet of 2000;
//! this crate is the substitute substrate (see `DESIGN.md` §2). It models
//! exactly the properties the paper's claims depend on:
//!
//! - **Hierarchical locality** ([`topology`]): hosts live in *sites*
//!   (campus/MAN networks), sites in *countries*, countries in *regions*.
//!   Communication cost is a function of the lowest tier that spans both
//!   endpoints, mirroring the domain hierarchy of the Globe Location
//!   Service (paper §3.5, Figure 2).
//! - **Scarce wide-area bandwidth** (paper §3.1): every message is
//!   accounted against the tier it crosses, so experiments can report
//!   exactly how many bytes crossed country and region boundaries.
//! - **Datagrams and streams** ([`transport`], [`world`]): the GLS runs
//!   over unreliable datagrams (paper §6.3 notes it is UDP-based), while
//!   the replication protocol, HTTP and DNS UPDATE run over reliable,
//!   connection-oriented streams with a 1-RTT handshake. Streams preserve
//!   message boundaries (all protocols in this system are message-framed);
//!   congestion control is out of scope and documented as a simplification.
//! - **Host failures** ([`world`]): hosts crash and recover; stable
//!   storage survives, volatile state does not — which is what makes the
//!   Globe Object Server recovery path (paper §4) meaningful.
//!
//! Deterministic by construction: the event loop consumes a stable-ordered
//! queue from [`globe_sim`], all service maps are ordered, and every
//! service draws randomness from its own forked stream.
//!
//! # Examples
//!
//! A two-host ping over datagrams:
//!
//! ```
//! use globe_net::{
//!     impl_service_any, ports, Endpoint, NetParams, Service, ServiceCtx, TopologyBuilder, World,
//! };
//!
//! struct Ping {
//!     peer: Endpoint,
//!     got: bool,
//! }
//! impl Service for Ping {
//!     fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
//!         ctx.send_datagram(self.peer, b"ping".to_vec());
//!     }
//!     fn on_datagram(&mut self, _ctx: &mut ServiceCtx<'_>, _from: Endpoint, data: Vec<u8>) {
//!         assert_eq!(data, b"ping");
//!         self.got = true;
//!     }
//!     impl_service_any!();
//! }
//!
//! let mut b = TopologyBuilder::new();
//! let r = b.region("eu");
//! let c = b.country(r, "nl");
//! let s = b.site(c, "vu");
//! let h1 = b.host(s, "a");
//! let h2 = b.host(s, "b");
//! let mut world = World::new(b.build(), NetParams::default(), 1);
//! let peer = Endpoint::new(h2, ports::DRIVER);
//! world.add_service(h1, ports::DRIVER, Ping { peer, got: false });
//! world.add_service(h2, ports::DRIVER, Ping { peer: Endpoint::new(h1, 0), got: false });
//! world.start();
//! world.run_to_quiescence();
//! assert!(world.service::<Ping>(h2, ports::DRIVER).unwrap().got);
//! ```

pub mod payload;
pub mod ports;
pub mod service;
pub mod tcp;
pub mod topology;
pub mod transport;
pub mod wire;
pub mod world;

pub use payload::Payload;
pub use service::{ns_token, owns_token, token_id, Service, ServiceCtx};
pub use tcp::{NodeAddr, TcpTransport};
pub use topology::{
    CountryId, HostId, LinkParams, NetParams, RegionId, SiteId, Tier, Topology, TopologyBuilder,
};
pub use transport::{CloseReason, ConnEvent, ConnId, Endpoint, TimerId, Transport};
pub use wire::{WireError, WireReader, WireWriter};
pub use world::World;
