//! Open-loop load generators: Poisson request streams from users and
//! Poisson update streams from maintainers.
//!
//! Generators are ordinary services driven by timers, so their traffic
//! is subject to every real mechanism in the system (name resolution,
//! binding, replication protocols, security). Samples are collected
//! in-memory for the experiment harness to post-process.

use gdn_core::package::{AddFile, PackageInterface};
use globe_gls::ObjectId;
use globe_net::{
    impl_service_any, ns_token, owns_token, ConnEvent, ConnId, Endpoint, Service, ServiceCtx,
};
use globe_rts::{GlobeClient, GlobeRuntime, RtConn};
use globe_sim::{SimDuration, SimTime};

use crate::zipf::ZipfSampler;

/// Timer namespace for generator arrivals (distinct from embedded
/// runtime/GLS namespaces).
const GEN_NS: u16 = 0x7711;

/// One completed request observation.
#[derive(Clone, Debug)]
pub struct Sample {
    /// When the request was issued.
    pub at: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// HTTP status (0 = connection failure).
    pub status: u16,
    /// Which catalog object was requested.
    pub object: usize,
    /// Response body size.
    pub body_len: usize,
}

/// An open-loop HTTP load generator: Poisson arrivals, Zipf object
/// choice, one connection per request to a fixed access point.
pub struct HttpLoadGen {
    httpd: Endpoint,
    names: Vec<String>,
    zipf: ZipfSampler,
    /// Mean requests per second.
    rate: f64,
    /// Stop issuing new requests at this time (in-flight ones finish).
    until: SimTime,
    fetch_file: bool,
    /// HTTPD route the object names are appended to (`/pkg` by
    /// default; `/catalog` and `/mirrors` address the other DSO
    /// classes' routes).
    route: &'static str,
    inflight: std::collections::BTreeMap<u64, (SimTime, usize)>,
    next_arrival: u64,
    /// Completed observations.
    pub samples: Vec<Sample>,
}

impl HttpLoadGen {
    /// Creates a generator fetching from `httpd` at `rate` requests per
    /// second until `until`, choosing among `names` with Zipf skew `s`.
    pub fn new(
        httpd: Endpoint,
        names: Vec<String>,
        s: f64,
        rate: f64,
        until: SimTime,
        fetch_file: bool,
    ) -> HttpLoadGen {
        assert!(rate > 0.0, "rate must be positive");
        let zipf = ZipfSampler::new(names.len(), s);
        HttpLoadGen {
            httpd,
            names,
            zipf,
            rate,
            until,
            fetch_file,
            route: "/pkg",
            inflight: std::collections::BTreeMap::new(),
            next_arrival: 0,
            samples: Vec::new(),
        }
    }

    /// Targets another DSO class's HTTPD route (e.g. `/catalog`,
    /// `/mirrors`); `fetch_file` only applies to the `/pkg` route.
    pub fn with_route(mut self, route: &'static str) -> HttpLoadGen {
        self.route = route;
        self
    }

    fn schedule_next(&mut self, ctx: &mut ServiceCtx<'_>) {
        let gap = ctx.rng().gen_exp(1.0 / self.rate);
        let delay = SimDuration::from_secs_f64(gap);
        if ctx.now() + delay >= self.until {
            return;
        }
        self.next_arrival += 1;
        ctx.set_timer(delay, ns_token(GEN_NS, self.next_arrival));
    }

    fn fire(&mut self, ctx: &mut ServiceCtx<'_>) {
        let object = self.zipf.sample(ctx.rng());
        let path = if self.fetch_file && self.route == "/pkg" {
            format!("{}{}?file=pkg.tar", self.route, self.names[object])
        } else {
            format!("{}{}", self.route, self.names[object])
        };
        let conn = ctx.connect(self.httpd);
        ctx.send(conn, gdn_core::HttpRequest::get(&path));
        self.inflight.insert(conn.0, (ctx.now(), object));
        ctx.metrics().inc(&format!("load.pkg{object}"), 1);
        let region = ctx.topo().region_of_host(ctx.me().host).0;
        ctx.metrics()
            .inc(&format!("load.pkg{object}.region{region}"), 1);
        self.schedule_next(ctx);
    }
}

impl Service for HttpLoadGen {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(GEN_NS, token) {
            self.fire(ctx);
        }
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match ev {
            ConnEvent::Msg(data) => {
                let Some((started, object)) = self.inflight.remove(&conn.0) else {
                    return;
                };
                let latency = ctx.now().saturating_sub(started);
                let (status, body_len) = match gdn_core::HttpResponse::parse(&data) {
                    Some(r) => (r.status, r.body.len()),
                    None => (0, 0),
                };
                ctx.metrics()
                    .record("loadgen.latency_us", latency.as_micros());
                self.samples.push(Sample {
                    at: started,
                    latency,
                    status,
                    object,
                    body_len,
                });
                ctx.close(conn);
            }
            ConnEvent::Closed(_) => {
                if let Some((started, object)) = self.inflight.remove(&conn.0) {
                    ctx.metrics().inc("loadgen.failures", 1);
                    self.samples.push(Sample {
                        at: started,
                        latency: ctx.now().saturating_sub(started),
                        status: 0,
                        object,
                        body_len: 0,
                    });
                }
            }
            _ => {}
        }
    }

    impl_service_any!();
}

/// An open-loop update generator: a maintainer pushing small deltas into
/// packages through a [`GlobeClient`] session (writes travel the full
/// moderator-authenticated path; binding and bind-queueing are the
/// session's job, so each arrival is exactly one op).
pub struct UpdateGen {
    client: GlobeClient,
    /// `(oid, relative update weight)` per object.
    objects: Vec<(ObjectId, f64)>,
    /// Total updates per second across all objects.
    rate: f64,
    until: SimTime,
    payload: usize,
    next_arrival: u64,
    seq: u64,
    /// Completed update count.
    pub completed: u64,
    /// Failed update count.
    pub failed: u64,
}

impl UpdateGen {
    /// Creates an update generator over `objects` (weights proportional
    /// to each object's update rate), issuing `rate` updates/second
    /// until `until`, with `payload`-byte file bodies.
    pub fn new(
        runtime: GlobeRuntime,
        objects: Vec<(ObjectId, f64)>,
        rate: f64,
        until: SimTime,
        payload: usize,
    ) -> UpdateGen {
        assert!(!objects.is_empty(), "update generator needs objects");
        assert!(rate > 0.0, "rate must be positive");
        UpdateGen {
            client: GlobeClient::new(runtime, GEN_NS + 1),
            objects,
            rate,
            until,
            payload,
            next_arrival: 0,
            seq: 0,
            completed: 0,
            failed: 0,
        }
    }

    fn schedule_next(&mut self, ctx: &mut ServiceCtx<'_>) {
        let gap = ctx.rng().gen_exp(1.0 / self.rate);
        let delay = SimDuration::from_secs_f64(gap);
        if ctx.now() + delay >= self.until {
            return;
        }
        self.next_arrival += 1;
        ctx.set_timer(delay, ns_token(GEN_NS, self.next_arrival));
    }

    fn pick_object(&self, ctx: &mut ServiceCtx<'_>) -> ObjectId {
        let total: f64 = self.objects.iter().map(|(_, w)| w).sum();
        let mut u = ctx.rng().gen_f64() * total;
        for (oid, w) in &self.objects {
            u -= w;
            if u <= 0.0 {
                return *oid;
            }
        }
        self.objects.last().expect("nonempty").0
    }

    fn fire(&mut self, ctx: &mut ServiceCtx<'_>) {
        let oid = self.pick_object(ctx);
        self.seq += 1;
        let args = AddFile {
            name: format!("delta-{}", self.seq % 4),
            data: vec![0xD7; self.payload],
        };
        self.client
            .op::<PackageInterface>(ctx, oid)
            .invoke(&PackageInterface::ADD_FILE, &args);
        self.schedule_next(ctx);
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        for done in self.client.take_events() {
            if done.result.is_ok() {
                self.completed += 1;
                ctx.metrics().inc("updategen.ok", 1);
            } else {
                self.failed += 1;
                ctx.metrics().inc("updategen.failed", 1);
            }
        }
    }
}

impl Service for UpdateGen {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(GEN_NS, token) {
            self.fire(ctx);
            return;
        }
        if self.client.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }

    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.client.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.client.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(_) => {}
        }
    }

    impl_service_any!();
}

/// Latency statistics over a sample window.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowStats {
    /// Number of samples.
    pub count: u64,
    /// Successful (HTTP 200) samples.
    pub ok: u64,
    /// Mean latency of successful samples, milliseconds.
    pub mean_ms: f64,
    /// Median latency, milliseconds.
    pub median_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
}

/// Summarizes samples within `[from, to)`.
pub fn window_stats(samples: &[Sample], from: SimTime, to: SimTime) -> WindowStats {
    let mut lats: Vec<u64> = samples
        .iter()
        .filter(|s| s.at >= from && s.at < to && s.status == 200)
        .map(|s| s.latency.as_micros())
        .collect();
    let count = samples.iter().filter(|s| s.at >= from && s.at < to).count() as u64;
    let ok = lats.len() as u64;
    if lats.is_empty() {
        return WindowStats {
            count,
            ..WindowStats::default()
        };
    }
    lats.sort_unstable();
    let mean = lats.iter().sum::<u64>() as f64 / lats.len() as f64;
    let pick = |q: f64| lats[((lats.len() - 1) as f64 * q) as usize] as f64 / 1000.0;
    WindowStats {
        count,
        ok,
        mean_ms: mean / 1000.0,
        median_ms: pick(0.5),
        p99_ms: pick(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_stats_basic() {
        let mk = |at_ms: u64, lat_ms: u64, status: u16| Sample {
            at: SimTime::from_millis(at_ms),
            latency: SimDuration::from_millis(lat_ms),
            status,
            object: 0,
            body_len: 0,
        };
        let samples = vec![
            mk(100, 10, 200),
            mk(200, 20, 200),
            mk(300, 30, 200),
            mk(400, 1000, 0),   // failure: excluded from latency stats
            mk(5000, 999, 200), // outside window
        ];
        let w = window_stats(&samples, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(w.count, 4);
        assert_eq!(w.ok, 3);
        assert!((w.mean_ms - 20.0).abs() < 0.01, "{w:?}");
        assert!((w.median_ms - 20.0).abs() < 0.01);
    }

    #[test]
    fn empty_window() {
        let w = window_stats(&[], SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(w.count, 0);
        assert_eq!(w.ok, 0);
        assert_eq!(w.mean_ms, 0.0);
    }
}
