//! The time-ordered event queue at the heart of the simulation loop.
//!
//! # Structure: timer wheel + far heap
//!
//! The dominant schedule pattern in the simulation is *near-future*:
//! per-hop delivery delays and send-tail CPU queues land within a few
//! milliseconds of the clock. The queue therefore keeps a single-level
//! timer wheel of [`SLOTS`] slots, each [`GRANULARITY_NS`] wide
//! (window ≈ 134 ms), and spills anything beyond the window into a
//! binary heap. Scheduling into the wheel is O(1); the heap is only
//! touched by far timers (leases, churn schedules, timeouts), which are
//! migrated into the wheel lazily as the cursor advances.
//!
//! # The FIFO tie-break contract
//!
//! Two events scheduled for the same instant fire in the order they
//! were scheduled. Every entry carries a sequence number from one
//! counter shared by the wheel and the heap, and the queue always pops
//! the globally smallest `(time, seq)` pair, so the contract holds
//! across the wheel/heap boundary and across heap→wheel migration.
//! This property is what makes whole-simulation runs reproducible.
//! Within a slot, entries are sorted by `(time, seq)` lazily on first
//! pop; across slots, an entry in a lower slot always precedes one in
//! a higher slot; and every heap entry fires later than everything in
//! the wheel window (that is the invariant deciding wheel vs heap).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Width of one wheel slot in nanoseconds (2^16 ≈ 65.5 µs).
const GRANULARITY_SHIFT: u32 = 16;
/// Width of one wheel slot in nanoseconds.
pub const GRANULARITY_NS: u64 = 1 << GRANULARITY_SHIFT;
/// Number of wheel slots (power of two); the wheel window is
/// `SLOTS * GRANULARITY_NS` ≈ 134 ms.
pub const SLOTS: usize = 2048;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
const WORDS: usize = SLOTS / 64;

/// An event queue ordered by firing time with a stable FIFO tie-break.
///
/// Two events scheduled for the same instant fire in the order they were
/// scheduled (see the module docs for how the wheel preserves this).
///
/// # Examples
///
/// ```
/// use globe_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_millis(1);
/// q.schedule(t, "first");
/// q.schedule(t, "second");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The wheel: `SLOTS` rings of entries, indexed by absolute slot
    /// number masked to the ring. Slot vectors keep their capacity
    /// across reuse, so a warmed-up wheel schedules without
    /// allocating.
    slots: Vec<Slot<E>>,
    /// One bit per ring position: does the slot hold entries?
    occupied: [u64; WORDS],
    /// Absolute slot number of the wheel window's lower edge. Only
    /// ever advances, and never past the earliest pending event.
    cursor: u64,
    /// Events at or beyond `cursor + SLOTS` slots; migrated into the
    /// wheel as the cursor catches up.
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    len: usize,
}

#[derive(Debug)]
struct Slot<E> {
    entries: Vec<Entry<E>>,
    /// Whether `entries` is currently sorted descending by
    /// `(time, seq)` (popping takes from the back). Cleared on insert,
    /// restored lazily on the next pop from this slot.
    sorted: bool,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// The absolute slot a firing time belongs to.
#[inline]
fn slot_of(time: SimTime) -> u64 {
    time.as_nanos() >> GRANULARITY_SHIFT
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, || Slot {
            entries: Vec::new(),
            sorted: true,
        });
        EventQueue {
            slots,
            occupied: [0; WORDS],
            cursor: 0,
            heap: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is allowed (the queue is just an ordering
    /// structure); the simulation loop is responsible for never scheduling
    /// before its current clock. Past-time entries are parked in the
    /// cursor slot and still pop in `(time, seq)` order relative to
    /// everything pending.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let entry = Entry { time, seq, event };
        // The cursor never sits past the earliest pending event, so
        // clamping keeps past-time entries at the front of the wheel.
        let slot = slot_of(time).max(self.cursor);
        if slot < self.cursor + SLOTS as u64 {
            self.ring_insert(slot, entry);
        } else {
            self.heap.push(Reverse(entry));
        }
    }

    #[inline]
    fn ring_insert(&mut self, slot: u64, entry: Entry<E>) {
        let pos = (slot & SLOT_MASK) as usize;
        let s = &mut self.slots[pos];
        s.entries.push(entry);
        s.sorted = s.entries.len() == 1;
        self.occupied[pos / 64] |= 1 << (pos % 64);
    }

    /// Moves heap entries that now fall inside the wheel window into
    /// the wheel. Sound because the cursor never passes the earliest
    /// pending event: every heap entry's slot is `>= cursor`.
    fn migrate(&mut self) {
        let horizon = self.cursor + SLOTS as u64;
        while let Some(Reverse(top)) = self.heap.peek() {
            let slot = slot_of(top.time);
            if slot >= horizon {
                break;
            }
            let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
            debug_assert!(slot >= self.cursor, "heap entry behind the cursor");
            self.ring_insert(slot, entry);
        }
    }

    /// First occupied ring position in circular order from the cursor,
    /// or `None` if the wheel is empty.
    fn first_occupied_pos(&self) -> Option<usize> {
        let start = (self.cursor & SLOT_MASK) as usize;
        let sw = start / 64;
        let w = self.occupied[sw] & (!0u64 << (start % 64));
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        for i in 1..WORDS {
            let wi = (sw + i) % WORDS;
            let w = self.occupied[wi];
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        let w = self.occupied[sw] & !(!0u64 << (start % 64));
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        None
    }

    /// Absolute slot of a ring position, given the current cursor.
    #[inline]
    fn abs_slot(&self, pos: usize) -> u64 {
        let start = self.cursor & SLOT_MASK;
        self.cursor + ((pos as u64).wrapping_sub(start) & SLOT_MASK)
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_before(SimTime::MAX)
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `limit`; returns `None` (leaving the event pending) otherwise.
    ///
    /// This is the bounded-run primitive: a `run_until`-style loop pops
    /// directly instead of paying a [`EventQueue::peek_time`] scan plus
    /// a pop scan for every event.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        self.migrate();
        let slot = match self.first_occupied_pos() {
            Some(pos) => self.abs_slot(pos),
            None => {
                // Wheel empty: jump the window to the heap's earliest
                // entry and pull it (and its neighbors) in.
                let Reverse(top) = self.heap.peek().expect("len > 0 with an empty wheel");
                self.cursor = slot_of(top.time);
                self.migrate();
                let pos = self
                    .first_occupied_pos()
                    .expect("migration filled the wheel");
                self.abs_slot(pos)
            }
        };
        if slot > self.cursor {
            // Advancing the window may bring more heap entries into
            // range; all of them land strictly after `slot` (they were
            // beyond the *old* horizon, which `slot` is within), so
            // `slot` still holds the global minimum.
            self.cursor = slot;
            self.migrate();
        }
        let pos = (slot & SLOT_MASK) as usize;
        let s = &mut self.slots[pos];
        if !s.sorted {
            s.entries
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
            s.sorted = true;
        }
        // The selected slot holds the global minimum (see above), and
        // after the descending sort that minimum sits at the back.
        if s.entries.last().expect("occupied slot has entries").time > limit {
            return None;
        }
        let entry = s.entries.pop().expect("occupied slot has entries");
        if s.entries.is_empty() {
            self.occupied[pos / 64] &= !(1 << (pos % 64));
        }
        self.len -= 1;
        Some((entry.time, entry.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // The wheel's earliest entry lives in its first occupied slot
        // (later slots hold strictly later times); the heap's is its
        // top. The global earliest is whichever is smaller — migration
        // can wait for the next pop.
        let wheel_min = self.first_occupied_pos().map(|pos| {
            self.slots[pos]
                .entries
                .iter()
                .map(|e| e.time)
                .min()
                .expect("occupied slot has entries")
        });
        let heap_min = self.heap.peek().map(|Reverse(e)| e.time);
        match (wheel_min, heap_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.entries.clear();
            s.sorted = true;
        }
        self.occupied = [0; WORDS];
        self.heap.clear();
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), 3);
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_fire_in_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "late");
        q.schedule(SimTime::from_millis(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_millis(5), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn far_timers_take_the_heap_path_and_still_order() {
        let mut q = EventQueue::new();
        // Way beyond the wheel window (~134 ms).
        q.schedule(SimTime::from_secs(100), "c");
        q.schedule(SimTime::from_secs(10), "b");
        q.schedule(SimTime::from_millis(1), "a");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(1), "a"));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(10), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(100), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_holds_across_the_heap_boundary() {
        // Same instant, scheduled at very different cursor positions:
        // the first lands in the heap (far future), the second in the
        // wheel after time advances. FIFO must still hold.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, "heap-first");
        // Advance the cursor close to t.
        q.schedule(SimTime::from_millis(950), "warp");
        assert_eq!(q.pop().unwrap().1, "warp");
        q.schedule(t, "wheel-second");
        assert_eq!(q.pop().unwrap().1, "heap-first");
        assert_eq!(q.pop().unwrap().1, "wheel-second");
    }

    #[test]
    fn migration_interleaves_wheel_and_heap_times_correctly() {
        let mut q = EventQueue::new();
        // A burst far in the future, widely spread, plus near events.
        for i in (0..200u64).rev() {
            q.schedule(SimTime::from_millis(10_000 + i * 7), i);
        }
        for i in 0..50u64 {
            q.schedule(SimTime::from_micros(i * 30), 1000 + i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "time went backwards: {t:?} after {last:?}");
            last = t;
            n += 1;
        }
        assert_eq!(n, 250);
    }

    #[test]
    fn past_time_scheduling_still_pops_in_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "future");
        q.schedule(SimTime::from_secs(1), "now");
        assert_eq!(q.pop().unwrap().1, "now");
        // The cursor sits near 1 s; schedule "in the past".
        q.schedule(SimTime::from_millis(1), "stale");
        q.schedule(SimTime::from_millis(2), "staler");
        assert_eq!(q.pop().unwrap().1, "stale");
        assert_eq!(q.pop().unwrap().1, "staler");
        assert_eq!(q.pop().unwrap().1, "future");
    }

    #[test]
    fn dense_same_slot_traffic_keeps_fifo_under_reinsertion() {
        // Pop-one-schedule-one within one slot: the lazy re-sort must
        // not reorder pending entries.
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(3);
        q.schedule(t, 0u64);
        q.schedule(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(t, 2);
        q.schedule(t, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn wheel_window_wraparound_long_run() {
        // March time far past many full wheel revolutions.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0..500u64 {
            let t = SimTime::from_micros(i * 40_000); // 40 ms apart
            q.schedule(t, i);
            expect.push((t, i));
        }
        for (t, i) in expect {
            assert_eq!(q.pop().unwrap(), (t, i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_respects_the_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "early");
        q.schedule(SimTime::from_secs(50), "far");
        assert!(q.pop_before(SimTime::from_millis(1)).is_none());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_before(SimTime::from_millis(5)).unwrap().1, "early");
        // Limit between the remaining (heap-resident) entry and now.
        assert!(q.pop_before(SimTime::from_secs(49)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(SimTime::MAX).unwrap().1, "far");
        assert!(q.pop_before(SimTime::MAX).is_none());
    }

    #[test]
    fn len_counts_both_structures() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_secs(60), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    /// Advances the cursor to a known slot by popping a warm event, and
    /// returns that absolute slot number.
    fn pin_cursor(q: &mut EventQueue<u64>, slot: u64) -> u64 {
        q.schedule(SimTime::from_nanos(slot << GRANULARITY_SHIFT), u64::MAX);
        assert_eq!(q.pop().unwrap().1, u64::MAX);
        assert_eq!(q.cursor, slot, "pop pins the cursor to the popped slot");
        slot
    }

    #[test]
    fn exact_horizon_edge_routes_to_heap_and_migrates_fifo() {
        // The wheel window is [cursor, cursor + SLOTS) in slots: the
        // last in-window nanosecond must take the ring path and the
        // first out-of-window nanosecond the heap path — the exact
        // `slot < cursor + SLOTS` comparison this test nails down.
        let mut q = EventQueue::new();
        let cursor = pin_cursor(&mut q, 7 * SLOTS as u64);
        let horizon_ns = (cursor + SLOTS as u64) << GRANULARITY_SHIFT;
        let edge = SimTime::from_nanos(horizon_ns);
        let inside = SimTime::from_nanos(horizon_ns - 1);
        q.schedule(edge, 1); // first slot past the window: heap
        q.schedule(inside, 2); // last slot of the window: ring
        q.schedule(edge, 3); // same instant as 1 — a FIFO pair split
        q.schedule(inside, 4); // same instant as 2 — a FIFO pair
        assert_eq!(q.heap.len(), 2, "horizon-edge entries take the heap");
        assert_eq!(q.pop().unwrap(), (inside, 2));
        assert_eq!(q.pop().unwrap(), (inside, 4));
        // Popping `inside` advanced the cursor into migration range:
        // the edge entries move heap→ring and must still fire FIFO.
        assert_eq!(q.pop().unwrap(), (edge, 1));
        assert_eq!(q.pop().unwrap(), (edge, 3));
        assert!(q.is_empty());
        assert_eq!(q.heap.len(), 0, "migration drained the heap");
    }

    #[test]
    fn fifo_holds_when_a_pair_straddles_lazy_migration() {
        // First of a same-instant pair lands in the heap (beyond the
        // horizon), the second in the ring after the window advanced:
        // the migrated entry carries the older seq and must win.
        let mut q = EventQueue::new();
        let cursor = pin_cursor(&mut q, 3 * SLOTS as u64);
        let t = SimTime::from_nanos((cursor + SLOTS as u64) << GRANULARITY_SHIFT);
        q.schedule(t, 1); // heap: exactly at the horizon
        assert_eq!(q.heap.len(), 1);
        // Advance the window so t is now in range, without popping
        // anything at t.
        let mid = SimTime::from_nanos((cursor + 10) << GRANULARITY_SHIFT);
        q.schedule(mid, 2);
        assert_eq!(q.pop().unwrap(), (mid, 2));
        q.schedule(t, 3); // ring: same instant, younger seq
        assert_eq!(
            q.pop().unwrap(),
            (t, 1),
            "migrated entry keeps FIFO priority"
        );
        assert_eq!(q.pop().unwrap(), (t, 3));
    }

    proptest! {
        /// Random schedule/pop interleavings clustered tightly around
        /// the wheel's migration horizon (cursor + SLOTS slots) agree
        /// exactly — order and FIFO ties — with a sorted-list model.
        /// This is the adversarial band for the lazy heap→ring
        /// migration: every scheduled time sits within one slot of the
        /// boundary, so off-by-one routing or a seq-dropping migration
        /// shows up as a reordering.
        #[test]
        fn horizon_edge_interleavings_match_reference_model(
            steps in prop::collection::vec((0u8..4, 0u64..3, 0u64..3), 1..150)
        ) {
            let mut q: EventQueue<u64> = EventQueue::new();
            let base_slot = 5 * SLOTS as u64;
            let mut cursor = pin_cursor(&mut q, base_slot);
            let mut pending: Vec<(SimTime, u64)> = Vec::new();
            let mut next_id = 0u64;
            for &(op, edge, jitter) in &steps {
                if op < 3 {
                    // Schedule within one slot of the current horizon:
                    // the last in-window slot, the exact first
                    // out-of-window slot, or one past it.
                    let slot = cursor + SLOTS as u64 - 1 + edge;
                    let off = match jitter {
                        0 => 0,
                        1 => 1,
                        _ => GRANULARITY_NS - 1,
                    };
                    let t = SimTime::from_nanos((slot << GRANULARITY_SHIFT) + off);
                    q.schedule(t, next_id);
                    pending.push((t, next_id));
                    next_id += 1;
                } else if let Some((t, id)) = q.pop() {
                    // The model's minimum under FIFO: stable order on
                    // equal times is insertion order, which ascending
                    // ids encode.
                    let min = pending
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(mt, mid))| (mt, mid))
                        .map(|(i, _)| i)
                        .expect("queue and model agree on emptiness");
                    let (mt, mid) = pending.remove(min);
                    prop_assert_eq!((t, id), (mt, mid));
                    // Mirror the cursor rule: it advances to the slot
                    // of the popped minimum, keeping later horizon
                    // targets meaningful.
                    cursor = cursor.max(slot_of(t));
                }
                prop_assert_eq!(q.len(), pending.len());
            }
            pending.sort_by_key(|&(t, id)| (t, id));
            for (mt, mid) in pending {
                prop_assert_eq!(q.pop(), Some((mt, mid)));
            }
            prop_assert!(q.is_empty());
        }
    }
}
