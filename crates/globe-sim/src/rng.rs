//! Seedable, splittable pseudo-random number generation.
//!
//! The simulator pins its own generator (xoshiro256** seeded via
//! SplitMix64) instead of depending on `rand`: experiment reproducibility
//! requires that the exact sample stream never changes underneath us, and
//! that independent components can draw from *independent* streams (see
//! [`Rng::fork`]) so that adding randomness to one component does not
//! perturb another.
//!
//! This is simulation-grade randomness, not cryptographic randomness; the
//! security substrate in `globe-crypto` documents the same caveat.

/// A deterministic pseudo-random number generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use globe_sim::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let mut child = a.fork(7);
/// let _ = child.gen_range(0..10);
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and forking.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Every distinct seed yields a statistically independent stream; the
    /// all-zero internal state is unreachable by construction.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator identified by `stream`.
    ///
    /// Forking lets each simulated component own a private stream so that
    /// the order in which components draw numbers cannot affect each
    /// other's samples. Forking is deterministic: the same parent state and
    /// `stream` id always produce the same child.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[range.start, range.end)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution
    /// is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        // Lemire rejection sampling over a 64-bit multiply.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let lo = m as u64;
            if lo >= span {
                return range.start + (m >> 64) as u64;
            }
            // `lo < span`: reject only in the biased sliver.
            let threshold = span.wrapping_neg() % span;
            if lo >= threshold {
                return range.start + (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0..n as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Samples an exponentially distributed value with the given mean.
    ///
    /// Used for inter-arrival times of Poisson request processes.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; `1 - u` avoids ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Returns a reference to a uniformly chosen element, or `None` if the
    /// slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_index(items.len())])
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir sampling).
    ///
    /// The result is in ascending index order. If `k >= n`, all indices are
    /// returned.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.gen_index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir.sort_unstable();
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        let mut ca = a.fork(5);
        let mut cb = b.fork(5);
        assert_eq!(ca.next_u64(), cb.next_u64());
        // A different stream id gives a different child stream.
        let mut c2 = Rng::new(99).fork(6);
        assert_ne!(ca.next_u64(), c2.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Rng::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        Rng::new(0).gen_range(5..5);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::new(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(-0.5));
        assert!(r.gen_bool(1.5));
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut r = Rng::new(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_exp_mean_roughly_matches() {
        let mut r = Rng::new(6);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.gen_exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>()); // astronomically unlikely
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::new(9);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn sample_indices_distinct_and_sorted() {
        let mut r = Rng::new(10);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(r.sample_indices(5, 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mean_of_uniform_stream_is_centred() {
        let mut r = Rng::new(12);
        let n = 100_000u64;
        let sum: f64 = (0..n).map(|_| r.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
