//! Security walkthrough: the paper's §6 measures in action.
//!
//! Shows the channel matrix of Figure 4 (two-way auth between GDN
//! hosts, one-way toward users), a moderator succeeding where an
//! impostor fails, and a tampered record being rejected by the gTLS
//! record layer.
//!
//! Run with: `cargo run --example secure_distribution`

use globe::crypto::cert::Role;
use globe::crypto::gtls::{Mode, TlsConfig, TlsError, TlsSession};
use globe::gdn::{GdnDeployment, GdnOptions, ModEvent, ModOp, ModeratorTool, Scenario};
use globe::net::{ports, HostId, NetParams, Topology, World};
use globe::sim::{Rng, SimDuration};

fn main() {
    let topo = Topology::grid(2, 1, 1, 3);
    let mut world = World::new(topo, NetParams::default(), 99);
    let gdn = GdnDeployment::install(&mut world, GdnOptions::default());

    // --- 1. The gTLS channel matrix, shown on raw sessions. -----------
    println!("== channel matrix (paper Figure 4) ==");
    let server_tls = gdn.security.host_server(HostId(0));
    let mut rng = Rng::new(1);

    // (1)/(2) one-way: anonymous user -> GDN host.
    let (mut user, hello) = TlsSession::client(gdn.security.anonymous_client(), &mut rng).unwrap();
    let mut host = TlsSession::server(server_tls.clone());
    let out = host.on_message(&hello, &mut rng).unwrap();
    let out = user.on_message(&out.replies[0], &mut rng).unwrap();
    let _ = host.on_message(&out.replies[0], &mut rng).unwrap();
    println!(
        "user->host: user authenticated the host as {:?}; host sees the user as {:?}",
        user.peer_identity().map(|c| c.subject.as_str()),
        host.peer_identity().map(|c| c.subject.as_str()),
    );

    // (3) two-way: moderator tool -> GDN host.
    let (mut modc, hello) =
        TlsSession::client(gdn.security.moderator_client("alice"), &mut rng).unwrap();
    let mut host2 = TlsSession::server(server_tls);
    let out = host2.on_message(&hello, &mut rng).unwrap();
    let out = modc.on_message(&out.replies[0], &mut rng).unwrap();
    let _ = host2.on_message(&out.replies[0], &mut rng).unwrap();
    let peer = host2.peer_identity().expect("moderator authenticated");
    println!(
        "moderator->host: host sees {:?} with role {:?}",
        peer.subject, peer.role
    );
    assert_eq!(peer.role, Role::Moderator);

    // Tampering with a record fails the MAC.
    let mut rec = modc.seal(b"create replica of /apps/gimp").unwrap();
    let n = rec.len();
    rec[n - 5] ^= 1;
    assert_eq!(
        host2.on_message(&rec, &mut rng).unwrap_err(),
        TlsError::BadMac
    );
    println!("tampered record: rejected with BadMac");

    // A client refusing the host's certificate chain cannot connect.
    let rogue_roots = vec![];
    let (_bad, _) =
        TlsSession::client(TlsConfig::client(Mode::AuthEncrypt, rogue_roots), &mut rng).unwrap();
    println!("(clients validate the GDN CA chain; an empty trust store cannot proceed)");

    // --- 2. Authorization end to end. ---------------------------------
    println!("\n== authorization (paper §6.1) ==");
    let gos = gdn.gos_endpoints[0];
    // alice (a real moderator) publishes.
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(1),
        "alice",
        vec![ModOp::Publish {
            name: "/apps/gnupg".into(),
            description: "privacy guard".into(),
            files: vec![("gpg".into(), vec![7u8; 4096])],
            scenario: Scenario::single(gos),
        }],
    );
    world.add_service(HostId(1), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(30));
    let t = world
        .service::<ModeratorTool>(HostId(1), ports::DRIVER)
        .expect("tool");
    match t.results.first() {
        Some(ModEvent::PublishDone {
            result: Ok(oid), ..
        }) => {
            println!("moderator alice published /apps/gnupg as {oid:?}");
        }
        other => panic!("unexpected: {other:?}"),
    }

    // mallory holds only a *maintainer* certificate and tries to publish.
    let cfg = {
        use globe::rts::RuntimeConfig;
        RuntimeConfig {
            grp_port: ports::DRIVER,
            tls_server: gdn.security.anonymous_client(),
            tls_client: globe::crypto::gtls::TlsConfig::client_with_identity(
                gdn.security.mode(),
                gdn.security.maintainer_credentials("mallory"),
                gdn.security.roots(),
            ),
            accept_incoming: false,
            cache_ttl: SimDuration::from_secs(60),
            writer_roles: RuntimeConfig::default_writer_roles(),
            open_writes: false,
            persist: false,
        }
    };
    let runtime = globe::rts::GlobeRuntime::new(
        cfg,
        std::sync::Arc::clone(&gdn.repo),
        std::sync::Arc::clone(&gdn.gls),
        HostId(2),
        0x0400,
    );
    let impostor = ModeratorTool::new(
        runtime,
        gdn.gns.naming_authority,
        globe::crypto::gtls::TlsConfig::client_with_identity(
            gdn.security.mode(),
            gdn.security.maintainer_credentials("mallory"),
            gdn.security.roots(),
        ),
        vec![ModOp::Publish {
            name: "/apps/warez".into(),
            description: "definitely legitimate".into(),
            files: vec![("x".into(), vec![0u8; 16])],
            scenario: Scenario::single(gos),
        }],
    );
    world.add_service(HostId(2), ports::DRIVER, impostor);
    world.run_for(SimDuration::from_secs(30));
    let t = world
        .service::<ModeratorTool>(HostId(2), ports::DRIVER)
        .expect("impostor tool");
    match t.results.first() {
        Some(ModEvent::PublishDone { result: Err(e), .. }) => {
            println!("maintainer mallory tried to publish: DENIED ({e})");
            assert!(e.contains("moderator"));
        }
        other => panic!("impostor should have been denied: {other:?}"),
    }
    println!("\nall security checks behaved as the paper specifies.");
}
