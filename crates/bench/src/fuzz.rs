//! Deterministic-schedule fuzzing: randomized fault schedules over a
//! full GDN world, judged by the global consistency auditor
//! ([`mod@crate::audit`]).
//!
//! Every seed expands to a [`SchedulePlan`] — a *complete, explicit*
//! description of one run: topology width, per-object replication
//! assignments, scaled link latencies and datagram jitter, client
//! sessions with their op scripts and think-time gaps, and a list of
//! [`Disturbance`]s (host crashes, link partitions, whole-region
//! outages) on the virtual clock. [`run_plan`] executes the plan in a
//! traced world and replays the recorded operation history against the
//! auditor. Because the plan carries *all* the randomness, a run is a
//! pure function of its plan: the same seed replays bit-for-bit
//! (`GLOBE_FUZZ_SEED=<n>` is a complete repro), and removing one
//! disturbance from the list is a meaningful experiment — which is what
//! the greedy shrinker does to reduce a failing schedule to a minimal
//! one before reporting.
//!
//! Environment knobs (same single-point-of-interpretation idiom as
//! `GLOBE_SWEEP_SCALE` / `GLOBE_ENGINE_*`, documented in
//! EXPERIMENTS.md):
//!
//! - `GLOBE_FUZZ_SEEDS=<n>` — fuzz seeds `1..=n` (default 16, the CI
//!   `fuzz-smoke` budget; the nightly `fuzz-deep` job runs hundreds).
//! - `GLOBE_FUZZ_SEED=<seed>` — run exactly one seed (the repro knob;
//!   overrides `GLOBE_FUZZ_SEEDS`).
//!
//! Unknown values panic, so CI typos fail loudly instead of silently
//! fuzzing the wrong schedule space.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gdn_core::package::{AddFile, PackageInterface};
use gdn_core::{GdnDeployment, GdnOptions, ModOp};
use globe_gls::ObjectId;
use globe_net::{
    impl_service_any, ns_token, owns_token, ports, token_id, ConnEvent, ConnId, Endpoint, HostId,
    NetParams, Service, ServiceCtx, Tier, Topology, World,
};
use globe_rts::{GlobeClient, PropagationMode, RtConn};
use globe_sim::optrace::{self, OpKind, OpRecord};
use globe_sim::{Rng, SimDuration, SimTime, TraceLevel, TraceLog};
use globe_workloads::{gos_by_region, scenario_for, ObjectProfile, ScenarioPolicy};

use crate::audit::{audit, AuditSpec, Violation};
use crate::{driver_hosts, moderator_runtime, publish_objects};

/// Length of the activity window (sessions invoke, disturbances fire).
const ACTIVITY: SimDuration = SimDuration::from_secs(60);
/// Quiet gap between the last scheduled activity and the convergence
/// probe — long enough for retry backoff tails and re-sync after the
/// last disturbance heals.
const GRACE: SimDuration = SimDuration::from_secs(45);
/// Healing pad added to each disturbance's audit window: reconnects,
/// GLS lease expiry and re-replication settle inside it.
const WINDOW_PAD: SimDuration = SimDuration::from_secs(15);
/// How long an eager copy may trail its master outside disturbances.
const PROPAGATION_SLACK: SimDuration = SimDuration::from_secs(10);
/// Read-your-writes slack (see [`AuditSpec::ryw_slack`]).
const RYW_SLACK: SimDuration = SimDuration::from_secs(5);
/// Post-probe drain before the trace is frozen.
const DRAIN: SimDuration = SimDuration::from_secs(90);

/// One scheduled fault in a plan. Offsets are relative to the start of
/// the activity window (the publish phase's length varies with the
/// plan, the schedule's shape must not).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Disturbance {
    /// Crash `host` at `at`, recover it `down` later (object-server
    /// persistence restores its replicas, which re-announce).
    Crash {
        /// The victim (always an object-server host).
        host: HostId,
        /// Offset into the activity window.
        at: SimDuration,
        /// Downtime.
        down: SimDuration,
    },
    /// Partition the link between two hosts for `down`.
    LinkDown {
        /// One end.
        a: HostId,
        /// Other end.
        b: HostId,
        /// Offset into the activity window.
        at: SimDuration,
        /// Partition length.
        down: SimDuration,
    },
    /// Cut every link crossing `region`'s boundary for `down` — the
    /// region keeps running internally but is unreachable.
    RegionOutage {
        /// The isolated region.
        region: u32,
        /// Offset into the activity window.
        at: SimDuration,
        /// Outage length.
        down: SimDuration,
    },
}

impl Disturbance {
    fn window(&self) -> (SimDuration, SimDuration) {
        match *self {
            Disturbance::Crash { at, down, .. }
            | Disturbance::LinkDown { at, down, .. }
            | Disturbance::RegionOutage { at, down, .. } => (at, at + down),
        }
    }

    fn describe(&self) -> String {
        match self {
            Disturbance::Crash { host, at, down } => format!(
                "crash h{} at +{}s for {}s",
                host.0,
                at.as_secs(),
                down.as_secs()
            ),
            Disturbance::LinkDown { a, b, at, down } => format!(
                "partition h{}<->h{} at +{}s for {}s",
                a.0,
                b.0,
                at.as_secs(),
                down.as_secs()
            ),
            Disturbance::RegionOutage { region, at, down } => format!(
                "isolate region {} at +{}s for {}s",
                region,
                at.as_secs(),
                down.as_secs()
            ),
        }
    }
}

/// One object's replication assignment in a plan.
#[derive(Clone, Debug)]
pub struct ObjectPlan {
    /// Placement policy for this object.
    pub policy: ScenarioPolicy,
    /// Propagation mode for eager-push assignments.
    pub mode: PropagationMode,
    /// Update-rate input to the per-object policy.
    pub updates_per_hour: f64,
}

/// One scripted operation of a session.
#[derive(Copy, Clone, Debug)]
pub struct SessionOp {
    /// Write (`addFile` with a unique tag) or read (`listContents`).
    pub write: bool,
    /// Index into the plan's object list.
    pub obj: usize,
}

/// One client session: a sequential op script driven from one driver
/// host, with plan-chosen think-time gaps.
#[derive(Clone, Debug)]
pub struct SessionPlan {
    /// Region whose driver host runs the session.
    pub region: usize,
    /// The ops, played strictly one at a time.
    pub ops: Vec<SessionOp>,
    /// Think time before each op (same length as `ops`).
    pub gaps: Vec<SimDuration>,
    /// Hedge delay for idempotent reads (`None` = no hedging): a
    /// disturbance landing mid-read races the hedge timer against the
    /// failure path, and the auditor must still see exactly one
    /// completion per op.
    pub hedge: Option<SimDuration>,
    /// Retry with the deprecated blind re-resolve instead of
    /// health-ranked candidate rotation — keeps the legacy failover
    /// path under the same fault schedules as the new one.
    pub legacy_rotation: bool,
}

/// A complete randomized schedule: everything one run does, explicit.
#[derive(Clone, Debug)]
pub struct SchedulePlan {
    /// The generating seed (also the world seed).
    pub seed: u64,
    /// World width in regions (one site each, three hosts per site:
    /// GLS/GNS, object server, driver).
    pub regions: usize,
    /// Per-object replication assignments (homes pinned to region 0 so
    /// the master set is known and crash victims never hold the only
    /// copy).
    pub objects: Vec<ObjectPlan>,
    /// Cache-proxy TTL for this world.
    pub cache_ttl: SimDuration,
    /// Multiplier on every non-loopback tier's latency.
    pub latency_scale: f64,
    /// Datagram delivery jitter as a fraction of each tier's latency.
    pub jitter_fraction: f64,
    /// The client sessions.
    pub sessions: Vec<SessionPlan>,
    /// The fault schedule (the shrinker's target).
    pub disturbances: Vec<Disturbance>,
}

impl SchedulePlan {
    /// Renders the plan as the few lines a repro report shows.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "  world: {} regions, {} objects, cache_ttl={}s, latency x{:.2}, jitter {:.0}%",
            self.regions,
            self.objects.len(),
            self.cache_ttl.as_secs(),
            self.latency_scale,
            self.jitter_fraction * 100.0
        );
        for (i, o) in self.objects.iter().enumerate() {
            let _ = writeln!(
                s,
                "  object {i}: {} / {} ({:.1} upd/h)",
                o.policy.name(),
                crate::sweep::mode_label(o.mode),
                o.updates_per_hour
            );
        }
        for (i, sess) in self.sessions.iter().enumerate() {
            let writes = sess.ops.iter().filter(|o| o.write).count();
            let hedge = match sess.hedge {
                Some(d) => format!(", hedge {}ms", d.as_millis()),
                None => String::new(),
            };
            let rotation = if sess.legacy_rotation {
                ", legacy re-resolve"
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "  session {i}: region {}, {} writes / {} reads{hedge}{rotation}",
                sess.region,
                writes,
                sess.ops.len() - writes
            );
        }
        if self.disturbances.is_empty() {
            let _ = writeln!(s, "  disturbances: none");
        }
        for d in &self.disturbances {
            let _ = writeln!(s, "  disturbance: {}", d.describe());
        }
        s
    }
}

/// The object-server host of region `r` (second host of its site in
/// the three-host fuzz layout).
fn gos_host(r: usize) -> HostId {
    HostId(r as u32 * 3 + 1)
}

/// The driver host of region `r` (third host of its site).
fn drv_host(r: usize) -> HostId {
    HostId(r as u32 * 3 + 2)
}

/// Modes the fuzzer assigns: the sweep's four plus chunked push, so
/// crash and partition schedules also land mid-chunk-fetch — a slave
/// holding a half-resolved announcement must still converge by the
/// probe, which the auditor checks like any other mode.
const FUZZ_MODES: [PropagationMode; 5] = [
    PropagationMode::PushState,
    PropagationMode::PushDelta,
    PropagationMode::Invalidate,
    PropagationMode::ApplyOps,
    PropagationMode::PushChunks,
];

/// Expands `seed` into its schedule plan. Pure: same seed, same plan.
pub fn plan_for_seed(seed: u64) -> SchedulePlan {
    let mut rng = Rng::new(seed ^ 0xF0_22_5C_4E_D0_11_AA_01);
    let regions = 2 + rng.gen_index(2); // 2..=3
    let num_objects = 2 + rng.gen_index(3); // 2..=4
    let objects: Vec<ObjectPlan> = (0..num_objects)
        .map(|_| ObjectPlan {
            policy: *rng.choose(&ScenarioPolicy::ALL).unwrap(),
            mode: *rng.choose(&FUZZ_MODES).unwrap(),
            updates_per_hour: if rng.gen_bool(0.5) { 12.0 } else { 0.2 },
        })
        .collect();

    let sessions = (0..2 + rng.gen_index(2)) // 2..=3 sessions
        .map(|_| {
            let region = rng.gen_index(regions);
            let n_ops = 6 + rng.gen_index(5); // 6..=10 ops
            let ops: Vec<SessionOp> = (0..n_ops)
                .map(|_| SessionOp {
                    write: rng.gen_bool(0.4),
                    obj: rng.gen_index(num_objects),
                })
                .collect();
            let gaps = (0..n_ops)
                .map(|_| SimDuration::from_millis(1000 + rng.gen_range(0..3000)))
                .collect();
            let hedge = rng
                .gen_bool(0.4)
                .then(|| SimDuration::from_millis(1000 + rng.gen_range(0..2500)));
            SessionPlan {
                region,
                ops,
                gaps,
                hedge,
                legacy_rotation: rng.gen_bool(0.25),
            }
        })
        .collect();

    // Crash victims are non-home object servers only: homes are pinned
    // to region 0, so region 0's server may hold an object's sole copy.
    let mut crash_free: Vec<HostId> = (1..regions).map(gos_host).collect();
    let mut disturbances = Vec::new();
    for _ in 0..rng.gen_index(4) {
        // 0..=3 disturbances
        let at = SimDuration::from_secs(5 + rng.gen_range(0..36)); // +5..+40s
        let down = SimDuration::from_secs(5 + rng.gen_range(0..8)); // 5..=12s
        let kind = rng.gen_index(3);
        if kind == 0 && !crash_free.is_empty() {
            let host = crash_free.remove(rng.gen_index(crash_free.len()));
            disturbances.push(Disturbance::Crash { host, at, down });
        } else if kind == 1 {
            // Partition two distinct protocol-relevant hosts.
            let mut ends: Vec<HostId> = (0..regions)
                .flat_map(|r| [gos_host(r), drv_host(r)])
                .collect();
            let a = ends.remove(rng.gen_index(ends.len()));
            let b = ends.remove(rng.gen_index(ends.len()));
            disturbances.push(Disturbance::LinkDown { a, b, at, down });
        } else {
            let region = rng.gen_index(regions) as u32;
            disturbances.push(Disturbance::RegionOutage { region, at, down });
        }
    }

    SchedulePlan {
        seed,
        regions,
        objects,
        cache_ttl: SimDuration::from_secs(5 + rng.gen_range(0..11)), // 5..=15s
        latency_scale: 0.5 + rng.gen_f64() * 1.5,                    // 0.5x..2x
        jitter_fraction: rng.gen_f64() * 0.5,
        sessions,
        disturbances,
    }
}

// ----------------------------------------------------------- session

const FUZZ_NS: u16 = 0x4611;
/// Timer id of the final convergence-probe reads.
const PROBE_TOKEN: u64 = 0;
/// Timer id of "play the next scripted op".
const STEP_TOKEN: u64 = 1;

struct PendingOp {
    seq: u64,
    read: bool,
    scripted: bool,
}

/// Plays one [`SessionPlan`]: ops strictly in sequence (the next op is
/// scheduled one gap after the previous completes), every begin/end
/// recorded as an op-trace record, and a final read of every touched
/// object fired at the convergence probe time.
struct FuzzSession {
    client: GlobeClient,
    session: u32,
    oids: Vec<ObjectId>,
    plan: SessionPlan,
    cursor: usize,
    seq: u64,
    pending: BTreeMap<u64, PendingOp>,
    probe_at: SimTime,
    probe_fired: bool,
    /// Ops completed (scripted + probe).
    completed: u64,
    /// Ops still owed: scripted not yet issued plus in flight plus the
    /// probe reads not yet fired.
    outstanding: usize,
}

impl FuzzSession {
    fn new(
        client: GlobeClient,
        session: u32,
        oids: Vec<ObjectId>,
        plan: SessionPlan,
        probe_at: SimTime,
    ) -> FuzzSession {
        let outstanding = plan.ops.len() + touched(&plan).len();
        FuzzSession {
            client,
            session,
            oids,
            plan,
            cursor: 0,
            seq: 0,
            pending: BTreeMap::new(),
            probe_at,
            probe_fired: false,
            completed: 0,
            outstanding,
        }
    }

    fn done(&self) -> bool {
        self.probe_fired && self.pending.is_empty() && self.cursor >= self.plan.ops.len()
    }

    fn issue(&mut self, ctx: &mut ServiceCtx<'_>, op: SessionOp, scripted: bool) {
        let oid = self.oids[op.obj];
        self.seq += 1;
        let seq = self.seq;
        let (id, kind, tag) = if op.write {
            let tag = format!("w-s{}-{}", self.session, seq);
            let id = self.client.op::<PackageInterface>(ctx, oid).invoke(
                &PackageInterface::ADD_FILE,
                &AddFile {
                    name: tag.clone(),
                    data: vec![0x5F; 256],
                },
            );
            (id, OpKind::Write, tag)
        } else {
            let id = self
                .client
                .op::<PackageInterface>(ctx, oid)
                .invoke(&PackageInterface::LIST_CONTENTS, &());
            (id, OpKind::Read, String::new())
        };
        if ctx.trace_enabled(TraceLevel::Info) {
            let rec = OpRecord::Begin {
                session: self.session,
                op: seq,
                oid: oid.0,
                kind,
                tag,
            };
            ctx.trace_info(optrace::COMPONENT, rec.render());
        }
        self.pending.insert(
            id.0,
            PendingOp {
                seq,
                read: !op.write,
                scripted,
            },
        );
    }

    fn step(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.cursor < self.plan.ops.len() {
            let op = self.plan.ops[self.cursor];
            self.cursor += 1;
            self.issue(ctx, op, true);
        }
    }

    fn schedule_step(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.cursor < self.plan.ops.len() {
            let gap = self.plan.gaps[self.cursor];
            ctx.set_timer(gap, ns_token(FUZZ_NS, STEP_TOKEN));
        }
    }

    fn fire_probe(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.probe_fired = true;
        for obj in touched(&self.plan) {
            self.issue(ctx, SessionOp { write: false, obj }, false);
        }
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        for ev in self.client.take_events() {
            let Some(p) = self.pending.remove(&ev.op.0) else {
                continue;
            };
            self.completed += 1;
            self.outstanding = self.outstanding.saturating_sub(1);
            let (ok, listing, own) = match &ev.result {
                Ok(out) if p.read => match out.decode(&PackageInterface::LIST_CONTENTS) {
                    Ok(files) => {
                        let prefix = format!("w-s{}-", self.session);
                        let own = files.iter().filter(|f| f.name.starts_with(&prefix)).count();
                        (true, files.len() as i64, own as i64)
                    }
                    Err(_) => (false, -1, -1),
                },
                Ok(_) => (true, -1, -1),
                Err(_) => (false, -1, -1),
            };
            if ctx.trace_enabled(TraceLevel::Info) {
                let rec = OpRecord::End {
                    session: self.session,
                    op: p.seq,
                    ok,
                    listing,
                    own,
                };
                ctx.trace_info(optrace::COMPONENT, rec.render());
            }
            if p.scripted {
                self.schedule_step(ctx);
            }
        }
    }
}

/// The distinct objects a session's script touches, in first-use order.
fn touched(plan: &SessionPlan) -> Vec<usize> {
    let mut seen = Vec::new();
    for op in &plan.ops {
        if !seen.contains(&op.obj) {
            seen.push(op.obj);
        }
    }
    seen
}

impl Service for FuzzSession {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.schedule_step(ctx);
        // First gap indexes cursor 0; schedule_step reads gaps[cursor].
        let delay = self.probe_at.saturating_sub(ctx.now());
        ctx.set_timer(delay, ns_token(FUZZ_NS, PROBE_TOKEN));
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(FUZZ_NS, token) {
            match token_id(token) {
                PROBE_TOKEN => self.fire_probe(ctx),
                _ => self.step(ctx),
            }
            self.drain(ctx);
            return;
        }
        if self.client.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.client.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.client.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(_) => {}
        }
    }
    impl_service_any!();
}

// ------------------------------------------------------------- runner

/// Executes `plan` in a traced world and audits the recorded history.
/// Deterministic: a pure function of the plan.
pub fn run_plan(plan: &SchedulePlan) -> (Vec<Violation>, Vec<(SimTime, OpRecord)>) {
    let topo = Topology::grid(plan.regions as u32, 1, 1, 3);
    let mut params = NetParams::default();
    for tier in [Tier::Site, Tier::Country, Tier::Region, Tier::World] {
        let link = params.link_mut(tier);
        link.latency =
            SimDuration::from_nanos((link.latency.as_nanos() as f64 * plan.latency_scale) as u64);
    }
    let params = params.with_jitter_fraction(plan.jitter_fraction);
    let mut world = World::new(topo, params, plan.seed);
    world.set_trace(TraceLog::new(TraceLevel::Info));
    let options = GdnOptions {
        cache_ttl: plan.cache_ttl,
        gos_hosts: (0..plan.regions).map(gos_host).collect(),
        gls: globe_gls::GlsConfig::default()
            .with_persistence()
            .with_address_ttl(SimDuration::from_secs(15)),
        ..GdnOptions::default()
    };
    let gdn = GdnDeployment::install(&mut world, options);
    let topo = world.topology().clone();
    let gos = gos_by_region(&topo, &gdn.gos_endpoints);
    let drivers = driver_hosts(&topo);

    // Publish phase: each object under its own assignment, homes
    // pinned to region 0.
    let ops: Vec<ModOp> = plan
        .objects
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let profile = ObjectProfile::new(i, o.updates_per_hour, 0).with_mode(o.mode);
            ModOp::Publish {
                name: format!("/fuzz/pkg{i}"),
                description: format!("fuzz object {i}"),
                files: vec![("pkg.tar".into(), vec![0x5A; 2048])],
                scenario: scenario_for(o.policy, &profile, &gos),
            }
        })
        .collect();
    let oid_pairs = publish_objects(&mut world, &gdn, ops, drivers[0]);
    let oids: Vec<ObjectId> = oid_pairs.iter().map(|&(_, oid)| oid).collect();
    world.run_for(SimDuration::from_secs(10));

    // The activity window starts now; everything below is scheduled
    // relative to t0 so the schedule's shape is publish-independent.
    let t0 = world.now();
    let probe_at = t0 + ACTIVITY + GRACE;

    for d in &plan.disturbances {
        match *d {
            Disturbance::Crash { host, at, down } => {
                world.schedule_crash(host, t0 + at);
                world.schedule_recover(host, t0 + at + down);
            }
            Disturbance::LinkDown { a, b, at, down } => {
                world.schedule_link_down(a, b, t0 + at);
                world.schedule_link_up(a, b, t0 + at + down);
            }
            Disturbance::RegionOutage { region, at, down } => {
                for inside in topo.hosts() {
                    if topo.region_of_host(inside).0 != region {
                        continue;
                    }
                    for outside in topo.hosts() {
                        if topo.region_of_host(outside).0 != region {
                            world.schedule_link_down(inside, outside, t0 + at);
                            world.schedule_link_up(inside, outside, t0 + at + down);
                        }
                    }
                }
            }
        }
    }

    for (i, sess) in plan.sessions.iter().enumerate() {
        let host = drivers[sess.region];
        let mut client = GlobeClient::new(moderator_runtime(&gdn, host), FUZZ_NS + 1);
        // Failover-friendly session: backoff spans the shortened GLS
        // lease, rebinds happen soon after recoveries.
        client.config.retry.max_attempts = 4;
        client.config.retry.backoff = SimDuration::from_secs(5);
        client.config.bind_refresh = SimDuration::from_secs(10);
        client.config.hedge = sess.hedge;
        if sess.legacy_rotation {
            #[allow(deprecated)]
            {
                client.config.retry.rotation = globe_rts::RotationMode::Reresolve;
            }
        }
        let service = FuzzSession::new(client, i as u32, oids.clone(), sess.clone(), probe_at);
        world.add_service(host, ports::DRIVER + 2 + i as u16, service);
    }

    world.run_until(probe_at + DRAIN);

    let records = optrace::extract(world.trace());
    let mut violations = Vec::new();
    for (i, sess) in plan.sessions.iter().enumerate() {
        let s = world
            .service::<FuzzSession>(drivers[sess.region], ports::DRIVER + 2 + i as u16)
            .expect("fuzz session");
        if !s.done() {
            violations.push(Violation {
                rule: "incomplete-session",
                at: world.now(),
                detail: format!(
                    "session {i} still has {} ops outstanding at end of run",
                    s.outstanding
                ),
                slice: Vec::new(),
            });
        }
    }

    let spec = AuditSpec {
        cache_ttl: plan.cache_ttl,
        propagation_slack: PROPAGATION_SLACK,
        ryw_slack: RYW_SLACK,
        disturbances: plan
            .disturbances
            .iter()
            .map(|d| {
                let (from, to) = d.window();
                (t0 + from, t0 + to + WINDOW_PAD)
            })
            .collect(),
        converged_after: probe_at,
    };
    violations.extend(audit(&records, &spec));
    violations.sort_by_key(|v| v.at);
    (violations, records)
}

/// The verdict on one seed.
pub struct SeedOutcome {
    /// The seed.
    pub seed: u64,
    /// Violations of the *minimal* plan (empty = seed passed).
    pub violations: Vec<Violation>,
    /// The shrunk plan that still exhibits them (the original plan when
    /// the seed passed or no disturbance could be removed).
    pub plan: SchedulePlan,
    /// The minimal plan's recorded history (for the trace slices).
    pub trace: Vec<(SimTime, OpRecord)>,
}

/// Runs one seed; on failure, greedily shrinks the disturbance list to
/// a minimal still-failing schedule before reporting.
pub fn run_seed(seed: u64) -> SeedOutcome {
    let plan = plan_for_seed(seed);
    let (violations, trace) = run_plan(&plan);
    if violations.is_empty() {
        return SeedOutcome {
            seed,
            violations,
            plan,
            trace,
        };
    }
    let (plan, violations, trace) = shrink(plan, violations, trace);
    SeedOutcome {
        seed,
        violations,
        plan,
        trace,
    }
}

/// Greedy one-at-a-time shrink over the disturbance list: drop any
/// disturbance whose removal keeps the run failing, to a fixed point.
fn shrink(
    mut plan: SchedulePlan,
    mut violations: Vec<Violation>,
    mut trace: Vec<(SimTime, OpRecord)>,
) -> (SchedulePlan, Vec<Violation>, Vec<(SimTime, OpRecord)>) {
    let mut i = 0;
    while i < plan.disturbances.len() {
        let mut candidate = plan.clone();
        candidate.disturbances.remove(i);
        let (v, t) = run_plan(&candidate);
        if v.is_empty() {
            i += 1; // this disturbance is load-bearing; keep it
        } else {
            plan = candidate;
            violations = v;
            trace = t;
        }
    }
    (plan, violations, trace)
}

/// Renders a failing seed's full report: the violations, the minimal
/// schedule, the offending trace slices, and the one-line repro.
pub fn report(outcome: &SeedOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "seed {}: {} violation(s) on the minimal schedule",
        outcome.seed,
        outcome.violations.len()
    );
    s.push_str(&outcome.plan.describe());
    for v in &outcome.violations {
        let _ = writeln!(s, "  VIOLATION {v}");
        for &i in &v.slice {
            if let Some((t, r)) = outcome.trace.get(i) {
                let _ = writeln!(
                    s,
                    "    trace[{i}] @{:.3}s  {}",
                    t.as_micros() as f64 / 1e6,
                    r.render()
                );
            }
        }
    }
    let _ = writeln!(
        s,
        "  repro: GLOBE_FUZZ_SEED={} cargo bench --bench schedule_fuzz",
        outcome.seed
    );
    s
}

// ---------------------------------------------------------- env knobs

/// The seed list the harness runs, from the environment (module docs
/// describe the knobs).
///
/// # Panics
///
/// Panics on an unparsable value, so CI typos fail loudly.
pub fn seeds_from_env() -> Vec<u64> {
    match std::env::var("GLOBE_FUZZ_SEED").as_deref() {
        Ok(s) if !s.is_empty() => {
            let seed = s
                .parse()
                .unwrap_or_else(|_| panic!("unknown GLOBE_FUZZ_SEED {s:?} (use a number)"));
            return vec![seed];
        }
        _ => {}
    }
    let n: u64 = match std::env::var("GLOBE_FUZZ_SEEDS").as_deref() {
        Err(_) | Ok("") => 16,
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("unknown GLOBE_FUZZ_SEEDS {s:?} (use a count)")),
    };
    (1..=n).collect()
}

/// File failing reports are appended to (the CI jobs echo it into the
/// step summary and upload it as an artifact).
pub const FUZZ_REPORT_FILE: &str = "FUZZ_schedule_failures.md";

/// The shared entry point of `cargo bench --bench schedule_fuzz` and
/// the `gdn-fuzz` binary: runs every seed from the environment, prints
/// one line per passing seed and a full report per failing one, writes
/// failing reports to [`FUZZ_REPORT_FILE`], and panics at the end if
/// any seed failed.
pub fn fuzz_main() {
    let seeds = seeds_from_env();
    println!(
        "schedule fuzzing: {} seed(s) ({}..{})",
        seeds.len(),
        seeds.first().copied().unwrap_or(0),
        seeds.last().copied().unwrap_or(0)
    );
    let mut failing = Vec::new();
    let mut reports = String::new();
    for &seed in &seeds {
        let outcome = run_seed(seed);
        if outcome.violations.is_empty() {
            println!(
                "seed {seed}: ok ({} trace records audited)",
                outcome.trace.len()
            );
        } else {
            let r = report(&outcome);
            print!("{r}");
            let _ = writeln!(reports, "```\n{r}```\n");
            failing.push(seed);
            if std::env::var("GLOBE_FUZZ_DUMP").is_ok() {
                // Full trace of the minimal failing schedule, for
                // post-mortems where the violation slices are not
                // enough context.
                for (i, (t, rec)) in outcome.trace.iter().enumerate() {
                    println!(
                        "  trace[{i}] @{:.3}s  {}",
                        t.as_micros() as f64 / 1e6,
                        rec.render()
                    );
                }
            }
        }
    }
    if !failing.is_empty() {
        let header = format!(
            "## Schedule fuzzing: {} of {} seeds failed\n\n",
            failing.len(),
            seeds.len()
        );
        let _ = std::fs::write(FUZZ_REPORT_FILE, header + &reports);
        panic!(
            "schedule fuzzing found consistency violations in seed(s) {failing:?}; \
             repro with GLOBE_FUZZ_SEED=<n>, full reports in {FUZZ_REPORT_FILE}"
        );
    }
    println!("schedule fuzzing: all {} seed(s) clean", seeds.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_bounded() {
        for seed in 1..=24 {
            let a = plan_for_seed(seed);
            let b = plan_for_seed(seed);
            assert_eq!(a.regions, b.regions);
            assert_eq!(a.disturbances, b.disturbances);
            assert_eq!(a.sessions.len(), b.sessions.len());
            assert!((2..=3).contains(&a.regions));
            assert!((2..=4).contains(&a.objects.len()));
            assert!(a.disturbances.len() <= 3);
            for d in &a.disturbances {
                let (from, to) = d.window();
                assert!(to <= ACTIVITY, "disturbance {d:?} ends after activity");
                assert!(from >= SimDuration::from_secs(5));
                if let Disturbance::Crash { host, .. } = d {
                    // Never the home region's server, never GLS or drivers.
                    assert_ne!(*host, gos_host(0));
                    assert_eq!(host.0 % 3, 1);
                }
            }
            for s in &a.sessions {
                assert!(s.region < a.regions);
                assert_eq!(s.ops.len(), s.gaps.len());
                for op in &s.ops {
                    assert!(op.obj < a.objects.len());
                }
            }
        }
    }

    #[test]
    fn plans_cover_chunked_mode() {
        // The mode table includes PushChunks, and the default 16-seed
        // CI smoke must actually draw it — otherwise chunked
        // propagation silently loses its fault coverage.
        let drawn = (1..=16)
            .filter(|&seed| {
                plan_for_seed(seed)
                    .objects
                    .iter()
                    .any(|o| o.mode == PropagationMode::PushChunks)
            })
            .count();
        assert!(drawn > 0, "no smoke seed assigns push_chunks");
    }

    #[test]
    fn crash_victims_are_distinct() {
        for seed in 1..=64 {
            let plan = plan_for_seed(seed);
            let mut hosts: Vec<u32> = plan
                .disturbances
                .iter()
                .filter_map(|d| match d {
                    Disturbance::Crash { host, .. } => Some(host.0),
                    _ => None,
                })
                .collect();
            let before = hosts.len();
            hosts.sort_unstable();
            hosts.dedup();
            assert_eq!(hosts.len(), before, "seed {seed} crashes one host twice");
        }
    }

    #[test]
    fn seeds_env_defaults() {
        // No env manipulation here (tests run in parallel): just the
        // default path.
        if std::env::var("GLOBE_FUZZ_SEED").is_err() && std::env::var("GLOBE_FUZZ_SEEDS").is_err() {
            assert_eq!(seeds_from_env().len(), 16);
        }
    }
}
