//! Shared harness for the experiment runner and criterion benches.
//!
//! Builds worlds, publishes catalogs, drives GLS operations and load
//! generators, and extracts the measurements that `EXPERIMENTS.md`
//! reports. Every function here is deterministic given its seed.

pub mod audit;
pub mod engine;
pub mod fanout;
pub mod fuzz;
pub mod sweep;
pub mod trajectory;

pub use audit::{audit, AuditSpec, Violation};
pub use engine::{
    engine_gate, engine_json, engine_summary_markdown, parse_engine_json, run_engine_workload,
    EngineGateOutcome, EngineReport, EngineSpec,
};
pub use fanout::{grp_fanout_run, FanoutReport};
pub use fuzz::{
    fuzz_main, plan_for_seed, report, run_plan, run_seed, seeds_from_env, Disturbance,
    SchedulePlan, SeedOutcome,
};
pub use sweep::{
    all_cells, avail_table_rows, check_sweep_invariants, churn_cells, run_cell, run_cell_traced,
    run_sweep, sweep_cell, sweep_json, sweep_table_rows, CellReport, CellSpec, ChurnPlan, DsoClass,
    SweepSpec,
};
pub use trajectory::{
    compare_trajectory, parse_sweep_json, summary_markdown, trajectory_gate, trajectory_rows,
    GateOutcome, RowVerdict, TrajectoryCell, TrajectoryRow,
};

use std::sync::Arc;

use gdn_core::package::{AddFile, PackageInterface};
use gdn_core::{GdnDeployment, GdnOptions, ModEvent, ModOp, ModeratorTool};
use globe_gls::{ContactAddress, GlsClient, GlsConfig, GlsDeployment, GlsEvent, Level, ObjectId};
use globe_net::{
    impl_service_any, ns_token, owns_token, ports, ConnEvent, ConnId, Endpoint, HostId, NetParams,
    Service, ServiceCtx, Topology, World,
};
use globe_rts::{GlobeClient, GlobeRuntime, PropagationMode, RtConn};
use globe_sim::{SimDuration, SimTime};
use globe_workloads::{CatalogEntry, ScenarioPolicy};

/// Prints a markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a millisecond value with one decimal.
pub fn ms(d: SimDuration) -> String {
    format!("{:.1}", d.as_micros() as f64 / 1000.0)
}

/// Wide-area bytes: everything that crossed site boundaries upward
/// (country + region + world tiers) — the scarce resource of paper §3.1.
pub fn wan_bytes(world: &World) -> u64 {
    world.metrics().counter("net.bytes.country")
        + world.metrics().counter("net.bytes.region")
        + world.metrics().counter("net.bytes.world")
}

/// Stale-read fraction observed by the freshness oracle.
pub fn stale_fraction(world: &World) -> f64 {
    let stale = world.metrics().counter("rts.reads.stale") as f64;
    let fresh = world.metrics().counter("rts.reads.fresh") as f64;
    if stale + fresh == 0.0 {
        0.0
    } else {
        stale / (stale + fresh)
    }
}

// ------------------------------------------------------------ GLS driver

/// A scripted GLS driver service (inserts then lookups), recording
/// hops and latency per completed operation.
pub struct GlsDriver {
    gls: GlsClient,
    script: Vec<GlsOp>,
    cursor: usize,
    /// `(hops, latency)` per completed lookup, in script order.
    pub lookups: Vec<(u32, SimDuration)>,
    /// Completed operations of any kind.
    pub completed: usize,
}

/// One scripted GLS operation.
#[derive(Clone)]
pub enum GlsOp {
    /// Register an address for an object.
    Insert(ObjectId, ContactAddress),
    /// Look an object up.
    Lookup(ObjectId),
}

impl GlsDriver {
    /// Creates a driver bound to `host`.
    pub fn new(deploy: Arc<GlsDeployment>, host: HostId, script: Vec<GlsOp>) -> GlsDriver {
        GlsDriver {
            gls: GlsClient::new(deploy, host, 1),
            script,
            cursor: 0,
            lookups: Vec::new(),
            completed: 0,
        }
    }

    fn kick(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.cursor >= self.script.len() {
            return;
        }
        let token = self.cursor as u64;
        match self.script[self.cursor].clone() {
            GlsOp::Insert(oid, addr) => self.gls.insert(ctx, oid, addr, Level::Site, token),
            GlsOp::Lookup(oid) => self.gls.lookup(ctx, oid, token),
        }
        self.cursor += 1;
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        let events = self.gls.take_events();
        let progressed = !events.is_empty();
        for ev in events {
            self.completed += 1;
            if let GlsEvent::LookupDone { hops, latency, .. } = ev {
                self.lookups.push((hops, latency));
            }
        }
        if progressed {
            self.kick(ctx);
        }
    }
}

impl Service for GlsDriver {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.kick(ctx);
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.gls.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.gls.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }
    impl_service_any!();
}

/// Builds a plain world with an installed GLS (no GDN on top).
pub fn gls_world(topo: Topology, cfg: GlsConfig, seed: u64) -> (World, Arc<GlsDeployment>) {
    let mut world = World::new(topo, NetParams::default(), seed);
    let deploy = GlsDeployment::plan(world.topology(), &cfg);
    deploy.install(&mut world);
    (world, deploy)
}

// ------------------------------------------------------------ GDN harness

/// Builds a world with a full GDN installed.
pub fn gdn_world(topo: Topology, options: GdnOptions, seed: u64) -> (World, GdnDeployment) {
    let mut world = World::new(topo, NetParams::default(), seed);
    let gdn = GdnDeployment::install(&mut world, options);
    (world, gdn)
}

/// Builds a moderator-credentialed client runtime on `host` (writers
/// for experiments and the scenario sweep's scripted update drivers).
pub fn moderator_runtime(gdn: &GdnDeployment, host: HostId) -> GlobeRuntime {
    gdn.moderator_runtime(host, "bench-writer")
}

/// Publishes a catalog under `policy` (eager pushes propagating in
/// `mode`); returns `(index, oid)` pairs.
///
/// Runs the world until every publish completes (panics after the
/// deadline if any fails — an experiment with missing objects would
/// silently measure the wrong thing).
pub fn publish_catalog(
    world: &mut World,
    gdn: &GdnDeployment,
    catalog: &[CatalogEntry],
    policy: ScenarioPolicy,
    mode: PropagationMode,
    driver_host: HostId,
) -> Vec<(usize, ObjectId)> {
    let gos_by_region = globe_workloads::gos_by_region(world.topology(), &gdn.gos_endpoints);
    let ops = globe_workloads::publish_ops(catalog, policy, mode, &gos_by_region);
    publish_objects(world, gdn, ops, driver_host)
}

/// Publishes arbitrary moderator operations (any DSO class); returns
/// `(index, oid)` pairs in operation order.
///
/// Runs the world until every publish completes (panics after the
/// deadline if any fails).
pub fn publish_objects(
    world: &mut World,
    gdn: &GdnDeployment,
    ops: Vec<ModOp>,
    driver_host: HostId,
) -> Vec<(usize, ObjectId)> {
    let n = ops.len();
    let tool = gdn.moderator_tool(world.topology(), driver_host, "bench", ops);
    world.add_service(driver_host, ports::DRIVER, tool);
    if world.now() == SimTime::ZERO {
        world.start();
    }
    let deadline = world.now() + SimDuration::from_secs(60 * n as u64 + 120);
    loop {
        world.run_for(SimDuration::from_secs(10));
        let tool = world
            .service::<ModeratorTool>(driver_host, ports::DRIVER)
            .expect("publish tool");
        if tool.results.len() >= n {
            break;
        }
        assert!(world.now() < deadline, "catalog publish stalled");
    }
    let tool = world
        .service::<ModeratorTool>(driver_host, ports::DRIVER)
        .expect("publish tool");
    tool.results
        .iter()
        .enumerate()
        .map(|(i, ev)| match ev {
            ModEvent::PublishDone {
                result: Ok(oid), ..
            } => (i, *oid),
            other => panic!("publish {i} failed: {other:?}"),
        })
        .collect()
}

// --------------------------------------------------------- invoke driver

/// Read/write mix generator invoking one object through a
/// [`GlobeClient`] session (experiment E4: protocol trade-offs without
/// HTTP in the way). Each arrival is one op; the session binds.
pub struct InvokeGen {
    client: GlobeClient,
    oid: ObjectId,
    write_fraction: f64,
    rate: f64,
    until: SimTime,
    started: std::collections::BTreeMap<u64, (SimTime, bool)>,
    next_arrival: u64,
    /// `(latency, was_write)` per completed invocation.
    pub done: Vec<(SimDuration, bool)>,
    /// Failed invocations.
    pub failures: u64,
}

const INVOKE_NS: u16 = 0x7733;

impl InvokeGen {
    /// Creates a generator invoking `oid` at `rate`/s with the given
    /// write fraction.
    pub fn new(
        runtime: GlobeRuntime,
        oid: ObjectId,
        write_fraction: f64,
        rate: f64,
        until: SimTime,
    ) -> InvokeGen {
        InvokeGen {
            client: GlobeClient::new(runtime, INVOKE_NS + 1),
            oid,
            write_fraction,
            rate,
            until,
            started: std::collections::BTreeMap::new(),
            next_arrival: 0,
            done: Vec::new(),
            failures: 0,
        }
    }

    fn schedule_next(&mut self, ctx: &mut ServiceCtx<'_>) {
        let gap = ctx.rng().gen_exp(1.0 / self.rate);
        let delay = SimDuration::from_secs_f64(gap);
        if ctx.now() + delay >= self.until {
            return;
        }
        self.next_arrival += 1;
        ctx.set_timer(delay, ns_token(INVOKE_NS, self.next_arrival));
    }

    fn fire(&mut self, ctx: &mut ServiceCtx<'_>) {
        let write = ctx.rng().gen_bool(self.write_fraction);
        let oid = self.oid;
        let op = if write {
            self.client.op::<PackageInterface>(ctx, oid).invoke(
                &PackageInterface::ADD_FILE,
                &AddFile {
                    name: "delta".into(),
                    data: vec![0xEE; 512],
                },
            )
        } else {
            self.client
                .op::<PackageInterface>(ctx, oid)
                .invoke(&PackageInterface::LIST_CONTENTS, &())
        };
        self.started.insert(op.0, (ctx.now(), write));
        self.schedule_next(ctx);
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        for ev in self.client.take_events() {
            if let Some((at, write)) = self.started.remove(&ev.op.0) {
                match ev.result {
                    Ok(_) => self.done.push((ctx.now().saturating_sub(at), write)),
                    Err(_) => self.failures += 1,
                }
            }
        }
    }

    /// Mean latency of completed reads (`false`) or writes (`true`),
    /// in milliseconds.
    pub fn mean_latency_ms(&self, writes: bool) -> f64 {
        let lats: Vec<u64> = self
            .done
            .iter()
            .filter(|(_, w)| *w == writes)
            .map(|(d, _)| d.as_micros())
            .collect();
        if lats.is_empty() {
            return 0.0;
        }
        lats.iter().sum::<u64>() as f64 / lats.len() as f64 / 1000.0
    }
}

impl Service for InvokeGen {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.schedule_next(ctx);
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(INVOKE_NS, token) {
            self.fire(ctx);
            return;
        }
        if self.client.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.client.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.client.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(_) => {}
        }
    }
    impl_service_any!();
}

/// Last host of each site — free of deployed daemons in the default
/// layout, suitable for drivers and generators.
pub fn driver_hosts(topo: &Topology) -> Vec<HostId> {
    topo.sites()
        .filter_map(|s| topo.hosts_in_site(s).last().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_hosts_are_per_site() {
        let topo = Topology::grid(2, 2, 2, 3);
        let d = driver_hosts(&topo);
        assert_eq!(d.len(), 8);
        assert_eq!(d[0], HostId(2));
    }

    #[test]
    fn wan_bytes_sums_upper_tiers() {
        let topo = Topology::grid(1, 1, 1, 2);
        let world = World::new(topo, NetParams::default(), 1);
        assert_eq!(wan_bytes(&world), 0);
    }
}
