//! Config-file parser for `gdn-node`.
//!
//! Every process of one deployment reads the *same* file, so they all
//! derive the same topology, the same host-id numbering, the same key
//! material and the same service placement — only the `<host>` argument
//! on the command line differs. The format is line-based:
//!
//! ```text
//! # comment
//! seed 42
//! mode auth-encrypt          # null | auth | auth-encrypt
//! cache-ttl-secs 60
//! host eu/nl/vu/alpha 127.0.0.1:21000
//! host eu/nl/vu/beta  127.0.0.1:21100
//! host eu/nl/vu/drv   127.0.0.1:21200
//! gos alpha
//! gos beta
//! ```
//!
//! `host` lines declare topology hosts in order (the Nth line is
//! `HostId(N)`); the path names region/country/site/host, and the
//! address is the node's IP plus its *port base* — simulated port `p`
//! of that host lives at real port `base + p`. `gos` lines pick the
//! object-server hosts (by name or numeric id).

use std::collections::BTreeMap;
use std::net::IpAddr;
use std::path::Path;

use globe_crypto::gtls::Mode;
use globe_net::{HostId, NodeAddr, Topology, TopologyBuilder};

/// A parsed gdn-node configuration: everything a process needs to take
/// part in (or drive) one real-socket deployment.
pub struct NodeConfig {
    /// Seed for key material and per-service RNG streams.
    pub seed: u64,
    /// Channel protection mode for all GDN traffic.
    pub mode: Mode,
    /// Client-side cache proxy TTL in seconds.
    pub cache_ttl_secs: u64,
    /// Secondary GDN-zone DNS servers (`None` keeps the deployment
    /// default). Real-node configs usually set this so the zone fits on
    /// the hosts that actually run a `serve` process: the planners
    /// place DNS on *any* topology host, including a driver host that
    /// only exists for `publish`/`get` commands.
    pub gns_secondaries: Option<u32>,
    /// Naming-Authority update batch interval in seconds (`None` keeps
    /// the default). Real-node walkthroughs set this low: a freshly
    /// published name is invisible to DNS until the batch flushes.
    pub gns_batch_secs: Option<u64>,
    /// GDN-zone negative-caching TTL in seconds (`None` keeps the
    /// default). A query that races a publish caches the miss for this
    /// long, so interactive setups want it short.
    pub gns_negative_ttl: Option<u32>,
    /// The shared topology (host ids follow `host` line order).
    pub topo: Topology,
    /// Real address of every topology host.
    pub addrs: BTreeMap<u32, NodeAddr>,
    /// Hosts running object servers (+ colocated HTTPDs).
    pub gos_hosts: Vec<HostId>,
    /// Host names in id order, for name → id resolution.
    pub names: Vec<String>,
}

impl NodeConfig {
    /// Reads and parses a config file.
    pub fn load(path: &Path) -> Result<NodeConfig, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        NodeConfig::parse(&text)
    }

    /// Parses config text (see the module docs for the format).
    pub fn parse(text: &str) -> Result<NodeConfig, String> {
        let mut seed = 1u64;
        let mut mode = Mode::AuthEncrypt;
        let mut cache_ttl_secs = 60u64;
        let mut gns_secondaries = None;
        let mut gns_batch_secs = None;
        let mut gns_negative_ttl = None;
        let mut builder = TopologyBuilder::new();
        let mut regions = BTreeMap::new();
        let mut countries = BTreeMap::new();
        let mut sites = BTreeMap::new();
        let mut addrs = BTreeMap::new();
        let mut names: Vec<String> = Vec::new();
        let mut gos_refs: Vec<String> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("line {}: {msg}", lineno + 1);
            let mut words = line.split_whitespace();
            let key = words.next().expect("non-empty line has a first word");
            match key {
                "seed" => {
                    let v = words
                        .next()
                        .ok_or_else(|| err("seed needs a value".into()))?;
                    seed = v
                        .parse()
                        .map_err(|_| err(format!("bad seed {v:?} (want a u64)")))?;
                }
                "mode" => {
                    let v = words
                        .next()
                        .ok_or_else(|| err("mode needs a value".into()))?;
                    mode = match v {
                        "null" => Mode::Null,
                        "auth" => Mode::AuthOnly,
                        "auth-encrypt" => Mode::AuthEncrypt,
                        other => {
                            return Err(err(format!(
                                "bad mode {other:?} (want null | auth | auth-encrypt)"
                            )))
                        }
                    };
                }
                "cache-ttl-secs" => {
                    let v = words
                        .next()
                        .ok_or_else(|| err("cache-ttl-secs needs a value".into()))?;
                    cache_ttl_secs = v
                        .parse()
                        .map_err(|_| err(format!("bad cache-ttl-secs {v:?}")))?;
                }
                "gns-secondaries" => {
                    let v = words
                        .next()
                        .ok_or_else(|| err("gns-secondaries needs a value".into()))?;
                    gns_secondaries = Some(
                        v.parse()
                            .map_err(|_| err(format!("bad gns-secondaries {v:?}")))?,
                    );
                }
                "gns-batch-secs" => {
                    let v = words
                        .next()
                        .ok_or_else(|| err("gns-batch-secs needs a value".into()))?;
                    gns_batch_secs = Some(
                        v.parse()
                            .map_err(|_| err(format!("bad gns-batch-secs {v:?}")))?,
                    );
                }
                "gns-negative-ttl" => {
                    let v = words
                        .next()
                        .ok_or_else(|| err("gns-negative-ttl needs a value".into()))?;
                    gns_negative_ttl = Some(
                        v.parse()
                            .map_err(|_| err(format!("bad gns-negative-ttl {v:?}")))?,
                    );
                }
                "host" => {
                    let path = words
                        .next()
                        .ok_or_else(|| err("host needs region/country/site/name".into()))?;
                    let addr = words
                        .next()
                        .ok_or_else(|| err("host needs an ip:port_base address".into()))?;
                    let parts: Vec<&str> = path.split('/').collect();
                    let [r, c, s, n] = parts[..] else {
                        return Err(err(format!(
                            "bad host path {path:?} (want region/country/site/name)"
                        )));
                    };
                    let rid = *regions
                        .entry(r.to_owned())
                        .or_insert_with(|| builder.region(r));
                    let cid = *countries
                        .entry(format!("{r}/{c}"))
                        .or_insert_with(|| builder.country(rid, c));
                    let sid = *sites
                        .entry(format!("{r}/{c}/{s}"))
                        .or_insert_with(|| builder.site(cid, s));
                    if names.iter().any(|existing| existing == n) {
                        return Err(err(format!("duplicate host name {n:?}")));
                    }
                    let hid = builder.host(sid, n);
                    let (ip, base) = addr
                        .rsplit_once(':')
                        .ok_or_else(|| err(format!("bad address {addr:?} (want ip:port_base)")))?;
                    let ip: IpAddr = ip
                        .parse()
                        .map_err(|_| err(format!("bad IP address {ip:?}")))?;
                    let base: u16 = base
                        .parse()
                        .map_err(|_| err(format!("bad port base {base:?}")))?;
                    addrs.insert(hid.0, NodeAddr::new(ip, base));
                    names.push(n.to_owned());
                }
                "gos" => {
                    let v = words.next().ok_or_else(|| err("gos needs a host".into()))?;
                    gos_refs.push(v.to_owned());
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
            if let Some(extra) = words.next() {
                return Err(err(format!("trailing token {extra:?}")));
            }
        }

        if names.is_empty() {
            return Err("config declares no hosts".to_owned());
        }
        let topo = builder.build();
        let mut cfg = NodeConfig {
            seed,
            mode,
            cache_ttl_secs,
            gns_secondaries,
            gns_batch_secs,
            gns_negative_ttl,
            topo,
            addrs,
            gos_hosts: Vec::new(),
            names,
        };
        for r in &gos_refs {
            let h = cfg.resolve_host(r)?;
            if !cfg.gos_hosts.contains(&h) {
                cfg.gos_hosts.push(h);
            }
        }
        Ok(cfg)
    }

    /// Resolves a host reference — a numeric id or a host name from the
    /// config — to its [`HostId`].
    pub fn resolve_host(&self, s: &str) -> Result<HostId, String> {
        if let Ok(n) = s.parse::<u32>() {
            if (n as usize) < self.names.len() {
                return Ok(HostId(n));
            }
            return Err(format!(
                "host id {n} out of range (config has {} hosts)",
                self.names.len()
            ));
        }
        self.names
            .iter()
            .position(|n| n == s)
            .map(|i| HostId(i as u32))
            .ok_or_else(|| format!("unknown host {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# two servers and a driver
seed 7
mode null
cache-ttl-secs 30
gns-secondaries 0
host eu/nl/vu/alpha 127.0.0.1:21000
host eu/nl/vu/beta  127.0.0.1:21100
host us/ny/col/drv  127.0.0.1:21200   # driver
gos alpha
gos 1
";

    #[test]
    fn parses_sample() {
        let cfg = NodeConfig::parse(SAMPLE).expect("parse");
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.mode, Mode::Null);
        assert_eq!(cfg.cache_ttl_secs, 30);
        assert_eq!(cfg.gns_secondaries, Some(0));
        assert_eq!(cfg.topo.num_hosts(), 3);
        assert_eq!(cfg.gos_hosts, vec![HostId(0), HostId(1)]);
        assert_eq!(cfg.addrs[&1].socket_addr(80).port(), 21180);
        assert_eq!(cfg.resolve_host("drv").unwrap(), HostId(2));
        assert_eq!(cfg.resolve_host("2").unwrap(), HostId(2));
        assert!(cfg.resolve_host("nope").is_err());
        assert!(cfg.resolve_host("9").is_err());
    }

    #[test]
    fn shared_site_and_distinct_sites() {
        let cfg = NodeConfig::parse(SAMPLE).expect("parse");
        let s0 = cfg.topo.site_of(HostId(0));
        assert_eq!(s0, cfg.topo.site_of(HostId(1)));
        assert_ne!(s0, cfg.topo.site_of(HostId(2)));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(NodeConfig::parse("host a/b 127.0.0.1:1\n").is_err());
        assert!(NodeConfig::parse("host a/b/c/d notanaddr\n").is_err());
        assert!(NodeConfig::parse("seed x\n").is_err());
        assert!(NodeConfig::parse("mode tls13\nhost a/b/c/d 127.0.0.1:1\n").is_err());
        assert!(NodeConfig::parse("frobnicate 3\n").is_err());
        assert!(NodeConfig::parse("").is_err());
        assert!(NodeConfig::parse("host a/b/c/d 127.0.0.1:1\nhost a/b/c/d 127.0.0.1:2\n").is_err());
        assert!(NodeConfig::parse("host a/b/c/d 127.0.0.1:1 extra\n").is_err());
    }
}
