//! The package DSO: the distributed shared object holding one software
//! package.
//!
//! "All data stored in the GDN is stored in distributed shared objects.
//! For example, every software package is contained in a package DSO."
//! (paper §3.1). The semantics subobject here implements exactly the
//! methods the paper names — adding files, listing contents, retrieving
//! file contents (§3.3, §4) — plus removal and metadata, all free of any
//! replication awareness.
//!
//! The interface is declared once through [`globe_rts::dso_interface!`]:
//! [`PackageInterface`] carries the typed [`MethodDef`]s
//! (client-side marshalling — the paper's control subobject, §3.3), the
//! derived `kind_of` table, and the generated server-side dispatch that
//! unmarshals into the typed handler methods below.
//!
//! [`MethodDef`]: globe_rts::MethodDef

use std::collections::BTreeMap;

use globe_crypto::sha256::sha256;
use globe_rts::interface::{DsoInterface, DsoState};
use globe_rts::{dso_interface, wire_struct, ImplId, SemError};

use crate::delta::MutationLog;

/// The package class's identifier in the implementation repository.
pub const PACKAGE_IMPL: ImplId = <PackageInterface as DsoInterface>::IMPL;

wire_struct! {
    /// `addFile` arguments: add (or replace) one file.
    pub struct AddFile {
        /// File name within the package.
        pub name: String,
        /// File contents.
        pub data: Vec<u8>,
    }
}

wire_struct! {
    /// `removeFile` arguments.
    pub struct RemoveFile {
        /// File name to remove.
        pub name: String,
    }
}

wire_struct! {
    /// `getFileContents` arguments.
    pub struct GetFile {
        /// File name to fetch.
        pub name: String,
    }
}

wire_struct! {
    /// One file in a package listing.
    pub struct FileInfo {
        /// File name within the package.
        pub name: String,
        /// Size in bytes.
        pub size: u64,
        /// SHA-256 digest of the contents (integrity per paper §6.1).
        pub digest: [u8; 32],
    }
}

wire_struct! {
    /// `getFileContents` result: contents plus their digest.
    pub struct FileBlob {
        /// File contents.
        pub data: Vec<u8>,
        /// SHA-256 digest computed at the replica.
        pub digest: [u8; 32],
    }
}

wire_struct! {
    /// Package description (`getMeta` result / `setMeta` arguments).
    pub struct Meta {
        /// Human-readable description.
        pub description: String,
    }
}

impl FileBlob {
    /// Returns the contents after verifying the embedded digest
    /// (end-to-end integrity, paper §6.1).
    pub fn verified(self) -> Result<Vec<u8>, IntegrityError> {
        if sha256(&self.data) != self.digest {
            return Err(IntegrityError);
        }
        Ok(self.data)
    }
}

/// A fetched payload failed its digest check: the bytes were corrupted
/// somewhere beneath the control subobject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegrityError;

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "payload digest mismatch")
    }
}

impl std::error::Error for IntegrityError {}

#[derive(Clone, Debug, Default)]
struct FileEntry {
    data: Vec<u8>,
    digest: [u8; 32],
}

/// Delta op: add (or replace) one file.
const DOP_ADD_FILE: u8 = 1;
/// Delta op: remove one file.
const DOP_REMOVE_FILE: u8 = 2;
/// Delta op: replace the description.
const DOP_SET_META: u8 = 3;

/// The package semantics subobject.
#[derive(Default)]
pub struct PackageDso {
    description: String,
    files: BTreeMap<String, FileEntry>,
    /// Mutations since the last delta drain (delta replication).
    log: MutationLog,
    /// Bumped on every state change: the cheap persistence digest.
    gen: u64,
}

impl PackageDso {
    /// Creates an empty package.
    pub fn new() -> PackageDso {
        PackageDso::default()
    }

    /// Number of files (direct inspection for tests).
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    // Typed method handlers, dispatched by the interface declaration
    // below.

    fn add_file(&mut self, args: AddFile) -> Result<(), SemError> {
        let digest = sha256(&args.data);
        self.log.record(|w| {
            w.put_u8(DOP_ADD_FILE);
            w.put_str(&args.name);
            w.put_bytes(&args.data);
        });
        self.gen += 1;
        self.files.insert(
            args.name,
            FileEntry {
                data: args.data,
                digest,
            },
        );
        Ok(())
    }

    fn remove_file(&mut self, args: RemoveFile) -> Result<(), SemError> {
        if self.files.remove(&args.name).is_none() {
            return Err(SemError::Application(format!("no file {:?}", args.name)));
        }
        self.log.record(|w| {
            w.put_u8(DOP_REMOVE_FILE);
            w.put_str(&args.name);
        });
        self.gen += 1;
        Ok(())
    }

    fn list_contents(&mut self, _args: ()) -> Result<Vec<FileInfo>, SemError> {
        Ok(self
            .files
            .iter()
            .map(|(name, entry)| FileInfo {
                name: name.clone(),
                size: entry.data.len() as u64,
                digest: entry.digest,
            })
            .collect())
    }

    fn get_file(&mut self, args: GetFile) -> Result<FileBlob, SemError> {
        match self.files.get(&args.name) {
            Some(entry) => Ok(FileBlob {
                data: entry.data.clone(),
                digest: entry.digest,
            }),
            None => Err(SemError::Application(format!("no file {:?}", args.name))),
        }
    }

    fn get_meta(&mut self, _args: ()) -> Result<Meta, SemError> {
        Ok(Meta {
            description: self.description.clone(),
        })
    }

    fn set_meta(&mut self, args: Meta) -> Result<(), SemError> {
        self.log.record(|w| {
            w.put_u8(DOP_SET_META);
            w.put_str(&args.description);
        });
        self.gen += 1;
        self.description = args.description;
        Ok(())
    }
}

impl DsoState for PackageDso {
    fn save(&self) -> Vec<u8> {
        use globe_net::WireWriter;
        let mut w = WireWriter::new();
        w.put_str(&self.description);
        w.put_u32(self.files.len() as u32);
        for (name, entry) in &self.files {
            w.put_str(name);
            w.put_bytes(&entry.data);
        }
        w.finish()
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        let parse = || -> Result<(String, BTreeMap<String, FileEntry>), WireError> {
            let mut r = WireReader::new(state);
            let description = r.str()?.to_owned();
            let n = r.u32()?;
            if n > 1_000_000 {
                return Err(WireError::TooLarge);
            }
            let mut files = BTreeMap::new();
            for _ in 0..n {
                let name = r.str()?.to_owned();
                let data = r.bytes()?.to_vec();
                let digest = sha256(&data);
                files.insert(name, FileEntry { data, digest });
            }
            r.expect_end()?;
            Ok((description, files))
        };
        let (description, files) = parse().map_err(|_| SemError::BadState)?;
        self.description = description;
        self.files = files;
        // New baseline: undrained mutations predate it.
        self.log.reset();
        self.gen += 1;
        Ok(())
    }

    fn digest(&self) -> u64 {
        self.gen
    }

    fn take_delta(&mut self) -> Option<Vec<u8>> {
        self.log.take()
    }

    fn apply_delta(&mut self, delta: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        enum Op {
            Add(String, Vec<u8>),
            Remove(String),
            Meta(String),
        }
        // Decode fully before touching state, so malformed deltas
        // leave the copy unchanged for the full-state fallback.
        let parse = || -> Result<Vec<Op>, WireError> {
            let mut r = WireReader::new(delta);
            let mut ops = Vec::new();
            while r.remaining() > 0 {
                ops.push(match r.u8()? {
                    DOP_ADD_FILE => Op::Add(r.str()?.to_owned(), r.bytes()?.to_vec()),
                    DOP_REMOVE_FILE => Op::Remove(r.str()?.to_owned()),
                    DOP_SET_META => Op::Meta(r.str()?.to_owned()),
                    t => return Err(WireError::BadTag(t)),
                });
            }
            Ok(ops)
        };
        let ops = parse().map_err(|_| SemError::BadState)?;
        for op in ops {
            match op {
                Op::Add(name, data) => {
                    let digest = sha256(&data);
                    self.files.insert(name, FileEntry { data, digest });
                }
                Op::Remove(name) => {
                    self.files.remove(&name);
                }
                Op::Meta(description) => self.description = description,
            }
        }
        self.gen += 1;
        Ok(())
    }
}

dso_interface! {
    /// The package DSO interface, declared once: method ids, read/write
    /// classification, typed argument/result marshalling and server-side
    /// dispatch all derive from this table.
    pub interface PackageInterface {
        class: "gdn-package",
        impl_id: 10,
        semantics: PackageDso,
        methods: {
            /// Adds (or replaces) a file. Write; insert-or-replace, so
            /// re-invoking after an ambiguous failure is safe.
            1 => write(idempotent) ADD_FILE/add_file(AddFile) -> (),
            /// Removes a file. Write; a repeat leaves the same state.
            2 => write(idempotent) REMOVE_FILE/remove_file(RemoveFile) -> (),
            /// Lists the package contents. Read.
            3 => read LIST_CONTENTS/list_contents(()) -> Vec<FileInfo>,
            /// Fetches one file's contents with digest. Read.
            4 => read GET_FILE/get_file(GetFile) -> FileBlob,
            /// Fetches the package description. Read.
            5 => read GET_META/get_meta(()) -> Meta,
            /// Replaces the package description. Write; last-writer
            /// semantics make a re-invoke harmless.
            6 => write(idempotent) SET_META/set_meta(Meta) -> (),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_rts::{Invocation, MethodId, MethodKind, SemanticsObject, WireCodec};

    fn add(pkg: &mut PackageDso, name: &str, data: &[u8]) {
        pkg.dispatch(&PackageInterface::ADD_FILE.invocation(&AddFile {
            name: name.into(),
            data: data.to_vec(),
        }))
        .unwrap();
    }

    fn listing(pkg: &mut PackageDso) -> Vec<FileInfo> {
        let raw = pkg
            .dispatch(&PackageInterface::LIST_CONTENTS.invocation(&()))
            .unwrap();
        PackageInterface::LIST_CONTENTS.decode_result(&raw).unwrap()
    }

    #[test]
    fn add_list_get_remove() {
        let mut pkg = PackageDso::new();
        add(&mut pkg, "README", b"hello");
        add(&mut pkg, "src.tar", &[7u8; 1000]);

        let files = listing(&mut pkg);
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].name, "README");
        assert_eq!(files[0].size, 5);
        assert_eq!(files[1].size, 1000);

        let raw = pkg
            .dispatch(&PackageInterface::GET_FILE.invocation(&GetFile {
                name: "README".into(),
            }))
            .unwrap();
        let blob = PackageInterface::GET_FILE.decode_result(&raw).unwrap();
        assert_eq!(blob.verified().unwrap(), b"hello");

        pkg.dispatch(&PackageInterface::REMOVE_FILE.invocation(&RemoveFile {
            name: "README".into(),
        }))
        .unwrap();
        assert_eq!(pkg.num_files(), 1);
        assert!(pkg
            .dispatch(&PackageInterface::GET_FILE.invocation(&GetFile {
                name: "README".into(),
            }))
            .is_err());
        assert!(pkg
            .dispatch(&PackageInterface::REMOVE_FILE.invocation(&RemoveFile {
                name: "README".into(),
            }))
            .is_err());
    }

    #[test]
    fn metadata_round_trip() {
        let mut pkg = PackageDso::new();
        pkg.dispatch(&PackageInterface::SET_META.invocation(&Meta {
            description: "GNU Image Manipulation Program".into(),
        }))
        .unwrap();
        let raw = pkg
            .dispatch(&PackageInterface::GET_META.invocation(&()))
            .unwrap();
        let meta = PackageInterface::GET_META.decode_result(&raw).unwrap();
        assert_eq!(meta.description, "GNU Image Manipulation Program");
    }

    #[test]
    fn state_transfer_preserves_everything() {
        let mut a = PackageDso::new();
        a.dispatch(&PackageInterface::SET_META.invocation(&Meta {
            description: "teTeX".into(),
        }))
        .unwrap();
        add(&mut a, "tex.bin", &[1, 2, 3]);
        let state = a.get_state();

        let mut b = PackageDso::new();
        b.set_state(&state).unwrap();
        let files = listing(&mut b);
        assert_eq!(files.len(), 1);
        let raw = b
            .dispatch(&PackageInterface::GET_META.invocation(&()))
            .unwrap();
        let meta = PackageInterface::GET_META.decode_result(&raw).unwrap();
        assert_eq!(meta.description, "teTeX");
        // Digest recomputed identically.
        assert_eq!(files[0].digest, sha256(&[1, 2, 3]));
    }

    #[test]
    fn malformed_arguments_rejected() {
        let mut pkg = PackageDso::new();
        assert_eq!(
            pkg.dispatch(&Invocation::new(
                PackageInterface::ADD_FILE.id(),
                vec![0xFF]
            )),
            Err(SemError::BadArguments)
        );
        assert!(matches!(
            pkg.dispatch(&Invocation::new(MethodId(99), vec![])),
            Err(SemError::NoSuchMethod(_))
        ));
        assert!(pkg.set_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn digest_verified_on_decode() {
        let mut pkg = PackageDso::new();
        add(&mut pkg, "f", b"data");
        let mut raw = pkg
            .dispatch(&PackageInterface::GET_FILE.invocation(&GetFile { name: "f".into() }))
            .unwrap();
        // Corrupt one payload byte: verification must fail.
        raw[4] ^= 0xFF;
        let blob = PackageInterface::GET_FILE.decode_result(&raw).unwrap();
        assert_eq!(blob.verified(), Err(IntegrityError));
    }

    #[test]
    fn class_registration() {
        let mut repo = globe_rts::ImplRepository::new();
        PackageInterface::register(&mut repo);
        assert!(repo.contains(PACKAGE_IMPL));
        assert_eq!(
            repo.kind_of(PACKAGE_IMPL, PackageInterface::GET_FILE.id()),
            Some(MethodKind::Read)
        );
        assert_eq!(
            repo.kind_of(PACKAGE_IMPL, PackageInterface::ADD_FILE.id()),
            Some(MethodKind::Write)
        );
        assert_eq!(repo.kind_of(PACKAGE_IMPL, MethodId(99)), None);
    }

    #[test]
    fn wire_format_is_stable() {
        // The typed layer must keep the original hand-written wire
        // format: name as length-prefixed string, data as
        // length-prefixed bytes.
        let inv = PackageInterface::ADD_FILE.invocation(&AddFile {
            name: "f".into(),
            data: vec![9, 9],
        });
        assert_eq!(inv.method, MethodId(1));
        let mut expect = globe_net::WireWriter::new();
        expect.put_str("f");
        expect.put_bytes(&[9, 9]);
        assert_eq!(inv.args, expect.finish());

        // Listings: u32 count, then (name, size, raw digest) triples.
        let files = vec![FileInfo {
            name: "a".into(),
            size: 3,
            digest: [7; 32],
        }];
        let mut expect = globe_net::WireWriter::new();
        expect.put_u32(1);
        expect.put_str("a");
        expect.put_u64(3);
        expect.put_raw(&[7; 32]);
        assert_eq!(files.to_bytes(), expect.finish());
    }
}
