//! Run-time scenario adaptation (paper §3.1: "the information's
//! replication scenario should adapt to changes in its popularity").
//!
//! The [`AdaptiveController`] plays the role the paper assigns to
//! future automated management: it watches per-object, per-region
//! demand counters and, when a region's demand for an object crosses a
//! threshold, commands that region's object server to create an
//! additional slave replica — exactly what a moderator would do by hand
//! with the moderator tool. Experiment E7 (flash crowd) compares runs
//! with and without it.

use std::collections::{BTreeMap, BTreeSet};

use gdn_core::PACKAGE_IMPL;
use globe_gls::ObjectId;
use globe_net::{
    impl_service_any, ns_token, owns_token, ConnEvent, ConnId, Endpoint, Service, ServiceCtx,
};
use globe_rts::{protocol_id, GlobeRuntime, GosCmd, GosResp, ImplId, RoleSpec, RtConn};
use globe_sim::SimDuration;

const CTRL_NS: u16 = 0x7722;
const TICK: u64 = 1;

/// One managed object.
#[derive(Clone, Debug)]
pub struct ManagedObject {
    /// Catalog index (matches the `load.pkg<idx>.region<r>` counters).
    pub index: usize,
    /// The object id.
    pub oid: ObjectId,
    /// The master's GRP endpoint.
    pub master: Endpoint,
    /// The object's class — replicas the controller creates must
    /// instantiate the same implementation (any registered DSO class,
    /// not just packages).
    pub impl_id: ImplId,
}

impl ManagedObject {
    /// A managed package DSO (the common case).
    pub fn package(index: usize, oid: ObjectId, master: Endpoint) -> ManagedObject {
        ManagedObject {
            index,
            oid,
            master,
            impl_id: PACKAGE_IMPL,
        }
    }
}

/// The adaptation daemon.
pub struct AdaptiveController {
    runtime: GlobeRuntime,
    objects: Vec<ManagedObject>,
    /// Regional object servers: `region → GOS control endpoint`.
    region_gos: Vec<Endpoint>,
    /// Check interval.
    interval: SimDuration,
    /// Requests per interval per region that trigger a replica.
    threshold: u64,
    /// Counter values at the previous tick, keyed by (object, region).
    last_seen: BTreeMap<(usize, usize), u64>,
    /// Replicas already created, keyed by (object, region).
    placed: BTreeSet<(usize, usize)>,
    next_req: u64,
    /// Number of replicas this controller has created.
    pub replicas_added: u64,
}

impl AdaptiveController {
    /// Creates a controller with moderator credentials in `runtime`.
    pub fn new(
        runtime: GlobeRuntime,
        objects: Vec<ManagedObject>,
        region_gos: Vec<Endpoint>,
        interval: SimDuration,
        threshold: u64,
    ) -> AdaptiveController {
        AdaptiveController {
            runtime,
            objects,
            region_gos,
            interval,
            threshold,
            last_seen: BTreeMap::new(),
            placed: BTreeSet::new(),
            next_req: 1,
            replicas_added: 0,
        }
    }

    fn tick(&mut self, ctx: &mut ServiceCtx<'_>) {
        let num_regions = self.region_gos.len();
        let mut actions: Vec<(usize, usize)> = Vec::new();
        for obj in &self.objects {
            for region in 0..num_regions {
                let key = (obj.index, region);
                let counter_key = format!("load.pkg{}.region{region}", obj.index);
                let now_count = ctx.metrics().counter(&counter_key);
                let prev = self.last_seen.insert(key, now_count).unwrap_or(0);
                let delta = now_count - prev;
                let already_home = self.region_gos[region].host == obj.master.host
                    || ctx.topo().region_of_host(self.region_gos[region].host)
                        == ctx.topo().region_of_host(obj.master.host);
                if delta >= self.threshold && !already_home && !self.placed.contains(&key) {
                    actions.push(key);
                }
            }
        }
        for (index, region) in actions {
            let obj = self
                .objects
                .iter()
                .find(|o| o.index == index)
                .expect("managed object")
                .clone();
            self.placed.insert((index, region));
            let gos = self.region_gos[region];
            let req = self.next_req;
            self.next_req += 1;
            let cmd = GosCmd::CreateReplica {
                req,
                oid: obj.oid.0,
                impl_id: obj.impl_id.0,
                protocol: protocol_id::MASTER_SLAVE,
                role: RoleSpec::Slave { master: obj.master },
            };
            let conn = self.runtime.open_app_conn(ctx, gos);
            self.runtime.send_app(ctx, conn, &cmd.encode());
            self.replicas_added += 1;
            ctx.metrics().inc("adapt.replicas_added", 1);
            ctx.trace_info(
                "adapt",
                format!("replicating pkg{index} into region {region}"),
            );
        }
        ctx.set_timer(self.interval, ns_token(CTRL_NS, TICK));
    }
}

impl Service for AdaptiveController {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.set_timer(self.interval, ns_token(CTRL_NS, TICK));
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(CTRL_NS, token) {
            self.tick(ctx);
            return;
        }
        self.runtime.handle_timer(ctx, token);
    }

    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        self.runtime.handle_datagram(ctx, from, &payload);
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        if let RtConn::AppData { frames, .. } = self.runtime.handle_conn_event(ctx, conn, ev) {
            for f in frames {
                if let Ok(GosResp::Err { msg, .. }) = GosResp::decode(&f) {
                    ctx.metrics().inc("adapt.failures", 1);
                    ctx.trace_info("adapt", format!("replica creation failed: {msg}"));
                }
            }
        }
    }

    impl_service_any!();
}
