//! The time-ordered event queue at the heart of the simulation loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue ordered by firing time with a stable FIFO tie-break.
///
/// Two events scheduled for the same instant fire in the order they were
/// scheduled. This property is what makes whole-simulation runs
/// reproducible: `BinaryHeap` alone is not stable, so each entry carries a
/// monotonically increasing sequence number.
///
/// # Examples
///
/// ```
/// use globe_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_millis(1);
/// q.schedule(t, "first");
/// q.schedule(t, "second");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is allowed (the queue is just an ordering
    /// structure); the simulation loop is responsible for never scheduling
    /// before its current clock.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), 3);
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_fire_in_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "late");
        q.schedule(SimTime::from_millis(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_millis(5), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
