//! The catalog DSO: a package index that is itself a distributed shared
//! object.
//!
//! The paper's premise is that *any* application object can be a DSO
//! with its own replication scenario (§3.1); superdistribution-style
//! cataloging of the GDN's contents is the natural second class. A
//! catalog maps package Globe names to descriptions so users can browse
//! and search what a site distributes without knowing names up front —
//! the GDN-HTTPD renders it at `/catalog/<catalog-name>` with links into
//! `/pkg/...`.
//!
//! The access pattern is read-heavy (every browse is a read; only
//! moderators register packages), so catalogs are usually published
//! under a cache-proxy scenario ([`crate::modtool::Scenario::cached`]):
//! each access point serves searches from its local TTL copy.
//!
//! The whole class is this one file: typed argument/result structs, the
//! semantics subobject, and one [`globe_rts::dso_interface!`]
//! declaration — the interface layer derives the rest.

use std::collections::BTreeMap;

use globe_rts::interface::{DsoInterface, DsoState};
use globe_rts::{dso_interface, wire_struct, ImplId, Invocation, SemError};

use crate::delta::MutationLog;
use crate::modtool::{ModOp, Scenario};

/// The catalog class's identifier in the implementation repository.
pub const CATALOG_IMPL: ImplId = <CatalogInterface as DsoInterface>::IMPL;

wire_struct! {
    /// One cataloged package: `register` arguments and listing element.
    pub struct CatalogEntry {
        /// The package's Globe object name, e.g. `/apps/graphics/gimp`.
        pub name: String,
        /// Human-readable description shown in listings.
        pub description: String,
    }
}

wire_struct! {
    /// `unregister` arguments.
    pub struct Unregister {
        /// The package name to drop from the index.
        pub name: String,
    }
}

wire_struct! {
    /// `search` arguments.
    pub struct Query {
        /// Case-insensitive substring matched against names and
        /// descriptions.
        pub term: String,
    }
}

wire_struct! {
    /// `listPage` arguments: one page of the name-ordered listing.
    pub struct PageQuery {
        /// Zero-based page number.
        pub page: u32,
        /// Entries per page (clamped to `1..=MAX_PAGE_SIZE`).
        pub per: u32,
    }
}

wire_struct! {
    /// `listPage` result.
    pub struct Page {
        /// Total number of cataloged entries (for pager rendering).
        pub total: u64,
        /// This page's entries, in the stable name order.
        pub entries: Vec<CatalogEntry>,
    }
}

/// Upper bound on `listPage` page sizes: a page is a bounded reply by
/// construction, whatever the client asks for.
pub const MAX_PAGE_SIZE: u32 = 1000;

/// Delta op: add (or replace) one entry.
const DOP_REGISTER: u8 = 1;
/// Delta op: drop one entry.
const DOP_UNREGISTER: u8 = 2;

/// The catalog semantics subobject: a keyed index of package entries.
#[derive(Default)]
pub struct CatalogDso {
    entries: BTreeMap<String, String>,
    /// Mutations since the last delta drain (delta replication).
    log: MutationLog,
    /// Bumped on every state change: the cheap persistence digest.
    gen: u64,
}

impl CatalogDso {
    /// Creates an empty catalog.
    pub fn new() -> CatalogDso {
        CatalogDso::default()
    }

    /// Number of cataloged packages (direct inspection for tests).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    // Typed method handlers, dispatched by the interface declaration
    // below.

    fn register(&mut self, args: CatalogEntry) -> Result<(), SemError> {
        self.log.record(|w| {
            w.put_u8(DOP_REGISTER);
            w.put_str(&args.name);
            w.put_str(&args.description);
        });
        self.gen += 1;
        self.entries.insert(args.name, args.description);
        Ok(())
    }

    fn unregister(&mut self, args: Unregister) -> Result<(), SemError> {
        if self.entries.remove(&args.name).is_none() {
            return Err(SemError::Application(format!(
                "no catalog entry {:?}",
                args.name
            )));
        }
        self.log.record(|w| {
            w.put_u8(DOP_UNREGISTER);
            w.put_str(&args.name);
        });
        self.gen += 1;
        Ok(())
    }

    fn list(&mut self, _args: ()) -> Result<Vec<CatalogEntry>, SemError> {
        Ok(self
            .entries
            .iter()
            .map(|(name, description)| CatalogEntry {
                name: name.clone(),
                description: description.clone(),
            })
            .collect())
    }

    fn list_page(&mut self, args: PageQuery) -> Result<Page, SemError> {
        // `BTreeMap` iteration is the stable order: the same page
        // request yields the same slice on every replica at the same
        // version, so paging clients never see an entry twice or skip
        // one because of iteration-order drift.
        let per = args.per.clamp(1, MAX_PAGE_SIZE) as usize;
        let start = (args.page as usize).saturating_mul(per);
        Ok(Page {
            total: self.entries.len() as u64,
            entries: self
                .entries
                .iter()
                .skip(start)
                .take(per)
                .map(|(name, description)| CatalogEntry {
                    name: name.clone(),
                    description: description.clone(),
                })
                .collect(),
        })
    }

    fn search(&mut self, args: Query) -> Result<Vec<CatalogEntry>, SemError> {
        let term = args.term.to_ascii_lowercase();
        Ok(self
            .entries
            .iter()
            .filter(|(name, description)| {
                name.to_ascii_lowercase().contains(&term)
                    || description.to_ascii_lowercase().contains(&term)
            })
            .map(|(name, description)| CatalogEntry {
                name: name.clone(),
                description: description.clone(),
            })
            .collect())
    }
}

impl DsoState for CatalogDso {
    fn save(&self) -> Vec<u8> {
        use globe_net::WireWriter;
        let mut w = WireWriter::new();
        w.put_u32(self.entries.len() as u32);
        for (name, description) in &self.entries {
            w.put_str(name);
            w.put_str(description);
        }
        w.finish()
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        let parse = || -> Result<BTreeMap<String, String>, WireError> {
            let mut r = WireReader::new(state);
            let n = r.u32()?;
            if n > 1_000_000 {
                return Err(WireError::TooLarge);
            }
            let mut entries = BTreeMap::new();
            for _ in 0..n {
                let name = r.str()?.to_owned();
                let description = r.str()?.to_owned();
                entries.insert(name, description);
            }
            r.expect_end()?;
            Ok(entries)
        };
        self.entries = parse().map_err(|_| SemError::BadState)?;
        // New baseline: undrained mutations predate it.
        self.log.reset();
        self.gen += 1;
        Ok(())
    }

    fn digest(&self) -> u64 {
        self.gen
    }

    fn take_delta(&mut self) -> Option<Vec<u8>> {
        self.log.take()
    }

    fn apply_delta(&mut self, delta: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        let parse = || -> Result<Vec<(Option<String>, String)>, WireError> {
            let mut r = WireReader::new(delta);
            let mut ops = Vec::new();
            while r.remaining() > 0 {
                ops.push(match r.u8()? {
                    DOP_REGISTER => {
                        let name = r.str()?.to_owned();
                        (Some(r.str()?.to_owned()), name)
                    }
                    DOP_UNREGISTER => (None, r.str()?.to_owned()),
                    t => return Err(WireError::BadTag(t)),
                });
            }
            Ok(ops)
        };
        let ops = parse().map_err(|_| SemError::BadState)?;
        for (description, name) in ops {
            match description {
                Some(d) => {
                    self.entries.insert(name, d);
                }
                None => {
                    self.entries.remove(&name);
                }
            }
        }
        self.gen += 1;
        Ok(())
    }
}

dso_interface! {
    /// The catalog DSO interface: register/list/search, read-heavy.
    pub interface CatalogInterface {
        class: "gdn-catalog",
        impl_id: 11,
        semantics: CatalogDso,
        methods: {
            /// Adds (or replaces) a catalog entry. Write;
            /// insert-or-replace, so re-invoking is safe.
            1 => write(idempotent) REGISTER/register(CatalogEntry) -> (),
            /// Drops a catalog entry. Write; a repeat leaves the same
            /// state.
            2 => write(idempotent) UNREGISTER/unregister(Unregister) -> (),
            /// Lists every cataloged package. Read.
            3 => read LIST/list(()) -> Vec<CatalogEntry>,
            /// Searches names and descriptions. Read.
            4 => read SEARCH/search(Query) -> Vec<CatalogEntry>,
            /// One page of the name-ordered listing. Read.
            5 => read LIST_PAGE/list_page(PageQuery) -> Page,
        }
    }
}

/// Builds the moderator operation publishing a catalog under `name`
/// with the given initial entries and replication scenario — the
/// one-liner that turns "add a DSO class" into deployment reality.
pub fn catalog_publish_op(name: &str, entries: Vec<CatalogEntry>, scenario: Scenario) -> ModOp {
    let fill: Vec<Invocation> = entries
        .iter()
        .map(|e| CatalogInterface::REGISTER.invocation(e))
        .collect();
    ModOp::PublishObject {
        name: name.to_owned(),
        impl_id: CATALOG_IMPL,
        scenario,
        fill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_rts::{MethodId, MethodKind, SemanticsObject};

    fn entry(name: &str, description: &str) -> CatalogEntry {
        CatalogEntry {
            name: name.into(),
            description: description.into(),
        }
    }

    fn fill() -> CatalogDso {
        let mut c = CatalogDso::new();
        for e in [
            entry("/apps/graphics/gimp", "GNU Image Manipulation Program"),
            entry("/apps/editors/emacs", "the extensible editor"),
            entry("/os/linux/slackware", "a Linux distribution"),
        ] {
            c.dispatch(&CatalogInterface::REGISTER.invocation(&e))
                .unwrap();
        }
        c
    }

    #[test]
    fn register_list_search_unregister() {
        let mut c = fill();
        assert_eq!(c.len(), 3);

        let raw = c.dispatch(&CatalogInterface::LIST.invocation(&())).unwrap();
        let all = CatalogInterface::LIST.decode_result(&raw).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].name, "/apps/editors/emacs");

        let raw = c
            .dispatch(&CatalogInterface::SEARCH.invocation(&Query { term: "GNU".into() }))
            .unwrap();
        let hits = CatalogInterface::SEARCH.decode_result(&raw).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "/apps/graphics/gimp");

        // Search is case-insensitive over names too.
        let raw = c
            .dispatch(&CatalogInterface::SEARCH.invocation(&Query {
                term: "LINUX".into(),
            }))
            .unwrap();
        assert_eq!(
            CatalogInterface::SEARCH.decode_result(&raw).unwrap().len(),
            1
        );

        c.dispatch(&CatalogInterface::UNREGISTER.invocation(&Unregister {
            name: "/apps/editors/emacs".into(),
        }))
        .unwrap();
        assert_eq!(c.len(), 2);
        assert!(c
            .dispatch(&CatalogInterface::UNREGISTER.invocation(&Unregister {
                name: "/apps/editors/emacs".into(),
            }))
            .is_err());
    }

    #[test]
    fn paged_listing_is_stable_and_bounded() {
        let mut c = fill();
        let page = |c: &mut CatalogDso, page: u32, per: u32| {
            let raw = c
                .dispatch(&CatalogInterface::LIST_PAGE.invocation(&PageQuery { page, per }))
                .unwrap();
            CatalogInterface::LIST_PAGE.decode_result(&raw).unwrap()
        };
        let p0 = page(&mut c, 0, 2);
        assert_eq!(p0.total, 3);
        assert_eq!(p0.entries.len(), 2);
        assert_eq!(p0.entries[0].name, "/apps/editors/emacs");
        let p1 = page(&mut c, 1, 2);
        assert_eq!(p1.entries.len(), 1);
        assert_eq!(p1.entries[0].name, "/os/linux/slackware");
        // Pages tile the full listing with no overlap or gap.
        let raw = c.dispatch(&CatalogInterface::LIST.invocation(&())).unwrap();
        let all = CatalogInterface::LIST.decode_result(&raw).unwrap();
        let tiled: Vec<_> = p0.entries.iter().chain(&p1.entries).cloned().collect();
        assert_eq!(tiled, all);
        // Out-of-range pages are empty, not errors; per is clamped.
        assert!(page(&mut c, 9, 2).entries.is_empty());
        assert_eq!(page(&mut c, 0, 0).entries.len(), 1);
        assert_eq!(page(&mut c, 0, u32::MAX).entries.len(), 3);
    }

    #[test]
    fn state_transfer_preserves_index() {
        let a = fill();
        let mut b = CatalogDso::new();
        b.set_state(&a.get_state()).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.get_state(), a.get_state());
        assert!(b.set_state(&[9, 9]).is_err());
    }

    #[test]
    fn dispatch_is_total() {
        let mut c = CatalogDso::new();
        assert_eq!(
            c.dispatch(&Invocation::new(CatalogInterface::REGISTER.id(), vec![2])),
            Err(SemError::BadArguments)
        );
        assert!(matches!(
            c.dispatch(&Invocation::new(MethodId(200), vec![])),
            Err(SemError::NoSuchMethod(_))
        ));
    }

    #[test]
    fn class_registration_and_kinds() {
        let mut repo = globe_rts::ImplRepository::new();
        CatalogInterface::register(&mut repo);
        assert!(repo.contains(CATALOG_IMPL));
        assert_eq!(
            repo.kind_of(CATALOG_IMPL, CatalogInterface::SEARCH.id()),
            Some(MethodKind::Read)
        );
        assert_eq!(
            repo.kind_of(CATALOG_IMPL, CatalogInterface::REGISTER.id()),
            Some(MethodKind::Write)
        );
    }

    #[test]
    fn publish_op_builds_typed_fill() {
        let op = catalog_publish_op(
            "/catalog/main",
            vec![entry("/apps/x", "x")],
            Scenario::single(globe_net::Endpoint::new(globe_net::HostId(0), 700)),
        );
        let ModOp::PublishObject { impl_id, fill, .. } = op else {
            panic!("wrong op variant");
        };
        assert_eq!(impl_id, CATALOG_IMPL);
        assert_eq!(fill.len(), 1);
        assert_eq!(fill[0].method, CatalogInterface::REGISTER.id());
    }
}
