//! Measurement primitives: counters and log-bucketed histograms.
//!
//! Every number reported in `EXPERIMENTS.md` flows through a [`Metrics`]
//! registry. Counters accumulate monotonically (bytes per network tier,
//! protocol message counts, cache hits). Histograms record latency samples
//! with bounded memory using logarithmic major buckets subdivided linearly,
//! in the style of HDR histograms: relative quantile error is bounded by
//! the sub-bucket width (1/32 ≈ 3%), which is far below the effects the
//! experiments measure.

use std::collections::BTreeMap;
use std::fmt;

/// Number of linear sub-buckets per power of two. Must be a power of two.
const SUB_BUCKETS: u64 = 32;
const SUB_SHIFT: u32 = 5; // log2(SUB_BUCKETS)

/// A fixed-memory histogram of `u64` samples with ~3% quantile resolution.
///
/// # Examples
///
/// ```
/// use globe_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((450..=550).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    /// bucket index -> count; sparse because most simulations touch only a
    /// narrow band of magnitudes.
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> u32 {
    if v < SUB_BUCKETS {
        // Values below SUB_BUCKETS are exact.
        v as u32
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_SHIFT
        let major = msb - SUB_SHIFT;
        let sub = ((v >> major) - SUB_BUCKETS) as u32; // in [0, SUB_BUCKETS)
        SUB_BUCKETS as u32 + major * SUB_BUCKETS as u32 + sub
    }
}

/// Returns a representative (midpoint) value for a bucket index.
fn bucket_value(idx: u32) -> u64 {
    if idx < SUB_BUCKETS as u32 {
        idx as u64
    } else {
        let rel = idx - SUB_BUCKETS as u32;
        let major = rel / SUB_BUCKETS as u32;
        let sub = (rel % SUB_BUCKETS as u32) as u64;
        let base = (SUB_BUCKETS + sub) << major;
        let width = 1u64 << major;
        base + width / 2
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(bucket_index(v)).or_insert(0) += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Returns the arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns the smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Returns the largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns an approximation of the `q`-quantile (`q` in `[0, 1]`),
    /// or 0 if the histogram is empty.
    ///
    /// The returned value is the representative value of the bucket
    /// containing the quantile rank, so the relative error is bounded by
    /// the sub-bucket width (~3%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.min(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// A named registry of counters and histograms.
///
/// Keys are free-form dotted paths (`"net.bytes.region"`,
/// `"gls.lookup.hops"`). The registry is intentionally permissive — any
/// component may create any key — because experiments slice metrics in ways
/// the components cannot anticipate.
///
/// # Examples
///
/// ```
/// use globe_sim::Metrics;
///
/// let mut m = Metrics::new();
/// m.inc("requests", 1);
/// m.record("latency_us", 1500);
/// assert_eq!(m.counter("requests"), 1);
/// assert_eq!(m.histogram("latency_us").unwrap().count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `by` to the counter named `key`, creating it at zero first if
    /// needed.
    pub fn inc(&mut self, key: &str, by: u64) {
        match self.counters.get_mut(key) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(key.to_owned(), by);
            }
        }
    }

    /// Returns the value of a counter (0 if it was never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Records a sample into the histogram named `key`.
    pub fn record(&mut self, key: &str, v: u64) {
        match self.histograms.get_mut(key) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::new();
                h.record(v);
                self.histograms.insert(key.to_owned(), h);
            }
        }
    }

    /// Returns the histogram named `key`, if any sample was recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterates over all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates over all histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sums all counters whose key starts with `prefix`.
    ///
    /// Used for tier roll-ups such as "all wide-area bytes"
    /// (`sum_prefix("net.bytes.")` minus the local tiers).
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Merges another registry into this one (counters add, histograms
    /// merge).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, &v) in &other.counters {
            self.inc(k, v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Renders a human-readable report of every metric, for examples and
    /// debugging.
    pub fn report(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (k, h) in &self.histograms {
                let _ = writeln!(out, "  {k:<40} {h}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_small_values_exact() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_value_within_relative_error() {
        for &v in &[100u64, 1_000, 10_000, 123_456, 9_999_999, u64::MAX / 2] {
            let rep = bucket_value(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.05, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut prev = 0;
        for v in (0..100_000u64).step_by(37) {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index decreased at v={v}");
            prev = idx;
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 50);
        assert!((h.mean() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.05, "q={q} got={got} expect={expect}");
        }
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_single_value() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.quantile(0.0), h.quantile(1.0));
        let v = h.quantile(0.5);
        assert!((750..=800).contains(&v), "got {v}");
    }

    #[test]
    fn histogram_record_n() {
        let mut h = Histogram::new();
        h.record_n(5, 100);
        h.record_n(9, 0);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 500);
        assert_eq!(h.max(), 5);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1_000_000);
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn metrics_counters_and_histograms() {
        let mut m = Metrics::new();
        m.inc("a.x", 2);
        m.inc("a.x", 3);
        m.inc("a.y", 1);
        m.inc("b", 10);
        m.record("lat", 5);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.sum_prefix("a."), 6);
        assert_eq!(m.sum_prefix("zzz"), 0);
        assert!(m.histogram("lat").is_some());
        assert!(m.histogram("nope").is_none());
    }

    #[test]
    fn metrics_merge() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.inc("c", 1);
        b.inc("c", 2);
        b.inc("d", 5);
        b.record("h", 9);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn report_contains_keys() {
        let mut m = Metrics::new();
        m.inc("net.bytes", 42);
        m.record("lat_us", 1000);
        let r = m.report();
        assert!(r.contains("net.bytes"));
        assert!(r.contains("lat_us"));
    }
}
