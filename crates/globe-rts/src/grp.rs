//! The Globe Replication Protocol (GRP) wire format and replication
//! scenarios.
//!
//! GRP is the traffic between parts of one distributed shared object —
//! proxies, caches, slaves, masters (paper Figure 3 labels inter-site
//! links "GRP"). It runs over gTLS-secured streams; each frame names the
//! object it belongs to so one connection can multiplex many objects.

use globe_net::{Endpoint, HostId, WireError, WireReader, WireWriter};

use crate::object::Invocation;

/// Replication protocol identifiers carried in GLS contact addresses.
pub mod protocol_id {
    /// Single server, remote invocations from all proxies
    /// (paper §7: "client/(single) server").
    pub const CLIENT_SERVER: u16 = 1;
    /// One master accepting writes, slaves serving reads
    /// (paper §7: "master/slave").
    pub const MASTER_SLAVE: u16 = 2;
    /// Writes re-executed at every replica via the master as sequencer
    /// ("one object may actively replicate all the state at all the
    /// local representatives", §3.3).
    pub const ACTIVE: u16 = 3;
    /// Client-side caching with a time-to-live ("another may use lazy
    /// replication", §3.3) — the web-proxy-style baseline.
    pub const CACHE_TTL: u16 = 4;
}

/// How a master propagates writes to its slaves.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PropagationMode {
    /// Eagerly push the new state to every slave.
    PushState,
    /// Send invalidations; slaves refetch on their next read.
    Invalidate,
    /// Forward the write operation itself; slaves re-execute it
    /// (active replication).
    ApplyOps,
    /// Eagerly push the *state delta* produced by each write; slaves
    /// splice it into their copy, falling back to a full state fetch on
    /// version gaps or when the class keeps no mutation log.
    PushDelta,
    /// Announce each new version as a content-addressed chunk manifest
    /// ([`GrpBody::ChunkAnnounce`]); slaves diff the manifest against
    /// their host's chunk store and fetch only missing chunks, falling
    /// back to a full state fetch when the class keeps no chunked state
    /// or a fetch stalls.
    PushChunks,
}

impl PropagationMode {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            PropagationMode::PushState => 0,
            PropagationMode::Invalidate => 1,
            PropagationMode::ApplyOps => 2,
            PropagationMode::PushDelta => 3,
            PropagationMode::PushChunks => 4,
        }
    }

    /// Decodes a wire tag.
    pub fn from_tag(t: u8) -> Result<Self, WireError> {
        Ok(match t {
            0 => PropagationMode::PushState,
            1 => PropagationMode::Invalidate,
            2 => PropagationMode::ApplyOps,
            3 => PropagationMode::PushDelta,
            4 => PropagationMode::PushChunks,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// What role a newly created replica plays in its object's protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RoleSpec {
    /// The single server of a client/server object.
    Standalone,
    /// The master of a master/slave or active object.
    Master {
        /// How writes reach the slaves.
        mode: PropagationMode,
    },
    /// A slave attached to `master`.
    Slave {
        /// The master's GRP endpoint.
        master: Endpoint,
    },
}

impl RoleSpec {
    /// Serializes into `w`.
    pub fn encode(&self, w: &mut WireWriter) {
        match self {
            RoleSpec::Standalone => w.put_u8(0),
            RoleSpec::Master { mode } => {
                w.put_u8(1);
                w.put_u8(mode.tag());
            }
            RoleSpec::Slave { master } => {
                w.put_u8(2);
                w.put_u32(master.host.0);
                w.put_u16(master.port);
            }
        }
    }

    /// Deserializes from `r`.
    pub fn decode(r: &mut WireReader<'_>) -> Result<RoleSpec, WireError> {
        Ok(match r.u8()? {
            0 => RoleSpec::Standalone,
            1 => RoleSpec::Master {
                mode: PropagationMode::from_tag(r.u8()?)?,
            },
            2 => RoleSpec::Slave {
                master: Endpoint::new(HostId(r.u32()?), r.u16()?),
            },
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Per-object replication messages (the payload of a [`GrpMsg`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GrpBody {
    /// A forwarded invocation (proxy→server, slave→master).
    Invoke {
        /// Correlation id, echoed in [`GrpBody::InvokeResult`].
        req: u64,
        /// The opaque invocation frame.
        inv: Invocation,
    },
    /// Result of a forwarded invocation.
    InvokeResult {
        /// Echoes the request id.
        req: u64,
        /// `true` when `data` is a marshalled result, `false` when it is
        /// a UTF-8 error message.
        ok: bool,
        /// Result or error payload.
        data: Vec<u8>,
    },
    /// Request the replica's full state (cache fill, slave refetch).
    GetState {
        /// Correlation id, echoed in [`GrpBody::State`].
        req: u64,
    },
    /// Full-state response.
    State {
        /// Echoes the request id.
        req: u64,
        /// State version (monotonic per object).
        version: u64,
        /// Version lineage the responder's copy belongs to (see
        /// [`GrpBody::Delta`]); `0` when the responder does not know
        /// its lineage (e.g. a slave serving reads).
        epoch: u64,
        /// Serialized semantics-subobject state.
        state: Vec<u8>,
    },
    /// Master→slave eager state push.
    Update {
        /// New state version.
        version: u64,
        /// The master's version lineage (see [`GrpBody::Delta`]).
        epoch: u64,
        /// Serialized state.
        state: Vec<u8>,
    },
    /// Master→slave: re-execute this write locally (active replication).
    Apply {
        /// Version after applying.
        version: u64,
        /// The write to re-execute.
        inv: Invocation,
    },
    /// Master→slave lazy invalidation.
    Invalidate {
        /// Version the slave's copy is stale against.
        version: u64,
    },
    /// Slave→master: announce membership and where to push updates.
    ///
    /// Sent on install and re-sent periodically as a registration
    /// heartbeat: the master prunes a slave whose push connection
    /// dies, and nothing on the slave side is guaranteed to observe
    /// that (the push channel is an *incoming* connection there), so a
    /// slave that stops announcing would silently miss every
    /// subsequent invalidation while still serving its copy as valid.
    /// The carried version/lineage lets the master answer cheaply when
    /// the slave is current instead of re-shipping state.
    Hello {
        /// The slave's GRP endpoint.
        grp: Endpoint,
        /// The version of the slave's current copy (0 = none).
        have_version: u64,
        /// The version lineage of that copy (0 = none; see
        /// [`GrpBody::Delta`]).
        epoch: u64,
    },
    /// A state delta: everything that changed between two versions.
    /// Pushed master→slave per write (`PushDelta`), or returned to a
    /// [`GrpBody::Refresh`] when the responder's delta history covers
    /// the requester's version (an empty payload with
    /// `from_version == to_version` confirms the copy is current).
    Delta {
        /// The version the payload applies on top of.
        from_version: u64,
        /// The version reached after applying.
        to_version: u64,
        /// The sender's version *lineage*: a fresh value per
        /// write-accepting incarnation. Version numbers are only
        /// comparable within one epoch — a receiver holding state from
        /// a different epoch must refetch in full rather than splice,
        /// or it would merge histories that merely share version
        /// numbers (e.g. after a replica was deleted and recreated).
        epoch: u64,
        /// Concatenated per-write deltas from the semantics subobject.
        payload: Vec<u8>,
    },
    /// Version-aware state request (cache refresh, slave catch-up): the
    /// responder answers with a [`GrpBody::Delta`] when its history
    /// covers `have_version`, or a full [`GrpBody::State`] otherwise.
    Refresh {
        /// Correlation id, echoed in the [`GrpBody::State`] fallback.
        req: u64,
        /// The version the requester already holds.
        have_version: u64,
        /// The epoch that version belongs to (`0` = unknown, always
        /// answered with full state).
        epoch: u64,
    },
    /// Master→slave compact version announcement (`PushChunks`): the
    /// new version described as a small skeleton plus an ordered chunk
    /// manifest of `(short id, length)` pairs. A receiver diffs the
    /// manifest against its host's content-addressed chunk store and
    /// requests only the chunks it lacks ([`GrpBody::ChunkRequest`]) —
    /// BIP-152-style compact relay for package content.
    ChunkAnnounce {
        /// The announced state version.
        version: u64,
        /// The announcer's version lineage (see [`GrpBody::Delta`]).
        epoch: u64,
        /// The class's chunk-free structural state, referencing content
        /// by manifest index.
        skeleton: Vec<u8>,
        /// Per manifest position: the chunk id's 8-byte short form and
        /// the chunk length. Full ids travel only with chunk bytes.
        chunks: Vec<(u64, u32)>,
    },
    /// Receiver→announcer: fetch the manifest chunks the receiver
    /// lacks, named by index into the announced manifest.
    ChunkRequest {
        /// Correlation id, echoed in [`GrpBody::ChunkData`].
        req: u64,
        /// The announced version the indexes refer to.
        version: u64,
        /// Manifest positions to ship.
        indexes: Vec<u32>,
    },
    /// Announcer→receiver: the requested chunk bytes. A responder that
    /// has moved past the requested version answers with a fresh
    /// [`GrpBody::ChunkAnnounce`] instead.
    ChunkData {
        /// Echoes the request id.
        req: u64,
        /// The version the chunks belong to.
        version: u64,
        /// `(manifest index, chunk bytes)` pairs.
        chunks: Vec<(u32, Vec<u8>)>,
    },
}

impl GrpBody {
    fn tag(&self) -> u8 {
        match self {
            GrpBody::Invoke { .. } => 1,
            GrpBody::InvokeResult { .. } => 2,
            GrpBody::GetState { .. } => 3,
            GrpBody::State { .. } => 4,
            GrpBody::Update { .. } => 5,
            GrpBody::Invalidate { .. } => 6,
            GrpBody::Hello { .. } => 7,
            GrpBody::Apply { .. } => 8,
            GrpBody::Delta { .. } => 9,
            GrpBody::Refresh { .. } => 10,
            GrpBody::ChunkAnnounce { .. } => 11,
            GrpBody::ChunkRequest { .. } => 12,
            GrpBody::ChunkData { .. } => 13,
        }
    }

    /// Whether this body can modify replica state, for the access-control
    /// gate (paper §6.1: replicas must not accept state-modifying
    /// messages from unauthorized senders).
    pub fn is_state_modifying(&self) -> bool {
        matches!(
            self,
            GrpBody::Update { .. }
                | GrpBody::Invalidate { .. }
                | GrpBody::Apply { .. }
                | GrpBody::Hello { .. }
                | GrpBody::Delta { .. }
                | GrpBody::ChunkAnnounce { .. }
                | GrpBody::ChunkData { .. }
        )
    }
}

/// One GRP frame: an object id plus a per-object message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GrpMsg {
    /// The distributed shared object this frame belongs to.
    pub oid: u128,
    /// The message.
    pub body: GrpBody,
}

impl GrpMsg {
    /// Serializes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u128(self.oid);
        w.put_u8(self.body.tag());
        match &self.body {
            GrpBody::Invoke { req, inv } => {
                w.put_u64(*req);
                inv.encode(&mut w);
            }
            GrpBody::InvokeResult { req, ok, data } => {
                w.put_u64(*req);
                w.put_bool(*ok);
                w.put_bytes(data);
            }
            GrpBody::GetState { req } => w.put_u64(*req),
            GrpBody::State {
                req,
                version,
                epoch,
                state,
            } => {
                w.put_u64(*req);
                w.put_u64(*version);
                w.put_u64(*epoch);
                w.put_bytes(state);
            }
            GrpBody::Update {
                version,
                epoch,
                state,
            } => {
                w.put_u64(*version);
                w.put_u64(*epoch);
                w.put_bytes(state);
            }
            GrpBody::Apply { version, inv } => {
                w.put_u64(*version);
                inv.encode(&mut w);
            }
            GrpBody::Invalidate { version } => w.put_u64(*version),
            GrpBody::Hello {
                grp,
                have_version,
                epoch,
            } => {
                w.put_u32(grp.host.0);
                w.put_u16(grp.port);
                w.put_u64(*have_version);
                w.put_u64(*epoch);
            }
            GrpBody::Delta {
                from_version,
                to_version,
                epoch,
                payload,
            } => {
                w.put_u64(*from_version);
                w.put_u64(*to_version);
                w.put_u64(*epoch);
                w.put_bytes(payload);
            }
            GrpBody::Refresh {
                req,
                have_version,
                epoch,
            } => {
                w.put_u64(*req);
                w.put_u64(*have_version);
                w.put_u64(*epoch);
            }
            GrpBody::ChunkAnnounce {
                version,
                epoch,
                skeleton,
                chunks,
            } => {
                w.put_u64(*version);
                w.put_u64(*epoch);
                w.put_bytes(skeleton);
                w.put_u32(chunks.len() as u32);
                for (short, len) in chunks {
                    w.put_u64(*short);
                    w.put_u32(*len);
                }
            }
            GrpBody::ChunkRequest {
                req,
                version,
                indexes,
            } => {
                w.put_u64(*req);
                w.put_u64(*version);
                w.put_u32(indexes.len() as u32);
                for i in indexes {
                    w.put_u32(*i);
                }
            }
            GrpBody::ChunkData {
                req,
                version,
                chunks,
            } => {
                w.put_u64(*req);
                w.put_u64(*version);
                w.put_u32(chunks.len() as u32);
                for (i, data) in chunks {
                    w.put_u32(*i);
                    w.put_bytes(data);
                }
            }
        }
        w.finish()
    }

    /// Deserializes a frame.
    pub fn decode(buf: &[u8]) -> Result<GrpMsg, WireError> {
        let mut r = WireReader::new(buf);
        let oid = r.u128()?;
        let tag = r.u8()?;
        let body = match tag {
            1 => GrpBody::Invoke {
                req: r.u64()?,
                inv: Invocation::decode(&mut r)?,
            },
            2 => GrpBody::InvokeResult {
                req: r.u64()?,
                ok: r.bool()?,
                data: r.bytes()?.to_vec(),
            },
            3 => GrpBody::GetState { req: r.u64()? },
            4 => GrpBody::State {
                req: r.u64()?,
                version: r.u64()?,
                epoch: r.u64()?,
                state: r.bytes()?.to_vec(),
            },
            5 => GrpBody::Update {
                version: r.u64()?,
                epoch: r.u64()?,
                state: r.bytes()?.to_vec(),
            },
            6 => GrpBody::Invalidate { version: r.u64()? },
            7 => GrpBody::Hello {
                grp: Endpoint::new(HostId(r.u32()?), r.u16()?),
                have_version: r.u64()?,
                epoch: r.u64()?,
            },
            8 => GrpBody::Apply {
                version: r.u64()?,
                inv: Invocation::decode(&mut r)?,
            },
            9 => GrpBody::Delta {
                from_version: r.u64()?,
                to_version: r.u64()?,
                epoch: r.u64()?,
                payload: r.bytes()?.to_vec(),
            },
            10 => GrpBody::Refresh {
                req: r.u64()?,
                have_version: r.u64()?,
                epoch: r.u64()?,
            },
            11 => {
                let version = r.u64()?;
                let epoch = r.u64()?;
                let skeleton = r.bytes()?.to_vec();
                let n = r.u32()? as usize;
                if n > (1 << 20) {
                    return Err(WireError::TooLarge);
                }
                let mut chunks = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    chunks.push((r.u64()?, r.u32()?));
                }
                GrpBody::ChunkAnnounce {
                    version,
                    epoch,
                    skeleton,
                    chunks,
                }
            }
            12 => {
                let req = r.u64()?;
                let version = r.u64()?;
                let n = r.u32()? as usize;
                if n > (1 << 20) {
                    return Err(WireError::TooLarge);
                }
                let mut indexes = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    indexes.push(r.u32()?);
                }
                GrpBody::ChunkRequest {
                    req,
                    version,
                    indexes,
                }
            }
            13 => {
                let req = r.u64()?;
                let version = r.u64()?;
                let n = r.u32()? as usize;
                if n > (1 << 20) {
                    return Err(WireError::TooLarge);
                }
                let mut chunks = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    chunks.push((r.u32()?, r.bytes()?.to_vec()));
                }
                GrpBody::ChunkData {
                    req,
                    version,
                    chunks,
                }
            }
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(GrpMsg { oid, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MethodId;

    #[test]
    fn all_bodies_round_trip() {
        let inv = Invocation::new(MethodId(3), vec![9, 9]);
        let ep = Endpoint::new(HostId(4), 2112);
        let bodies = vec![
            GrpBody::Invoke {
                req: 1,
                inv: inv.clone(),
            },
            GrpBody::InvokeResult {
                req: 2,
                ok: true,
                data: vec![1],
            },
            GrpBody::InvokeResult {
                req: 3,
                ok: false,
                data: b"denied".to_vec(),
            },
            GrpBody::GetState { req: 4 },
            GrpBody::State {
                req: 5,
                version: 9,
                epoch: 77,
                state: vec![7; 100],
            },
            GrpBody::Update {
                version: 10,
                epoch: 77,
                state: vec![8; 50],
            },
            GrpBody::Apply { version: 11, inv },
            GrpBody::Invalidate { version: 12 },
            GrpBody::Hello {
                grp: ep,
                have_version: 14,
                epoch: 77,
            },
            GrpBody::Delta {
                from_version: 13,
                to_version: 15,
                epoch: 77,
                payload: vec![4; 20],
            },
            GrpBody::Refresh {
                req: 6,
                have_version: 13,
                epoch: 77,
            },
            GrpBody::ChunkAnnounce {
                version: 16,
                epoch: 77,
                skeleton: vec![3; 40],
                chunks: vec![(0xAABB, 4096), (0xCCDD, 512)],
            },
            GrpBody::ChunkRequest {
                req: 7,
                version: 16,
                indexes: vec![1],
            },
            GrpBody::ChunkData {
                req: 7,
                version: 16,
                chunks: vec![(1, vec![5; 512])],
            },
        ];
        for body in bodies {
            let msg = GrpMsg { oid: 0xABCD, body };
            assert_eq!(GrpMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn state_modifying_classification() {
        assert!(GrpBody::Update {
            version: 1,
            epoch: 1,
            state: vec![]
        }
        .is_state_modifying());
        assert!(GrpBody::Invalidate { version: 1 }.is_state_modifying());
        assert!(GrpBody::Delta {
            from_version: 1,
            to_version: 2,
            epoch: 1,
            payload: vec![]
        }
        .is_state_modifying());
        assert!(!GrpBody::Refresh {
            req: 1,
            have_version: 1,
            epoch: 1
        }
        .is_state_modifying());
        assert!(GrpBody::Hello {
            grp: Endpoint::new(HostId(0), 0),
            have_version: 0,
            epoch: 0
        }
        .is_state_modifying());
        // Compact propagation: announcements and chunk bytes can modify
        // replica state; the fetch request cannot.
        assert!(GrpBody::ChunkAnnounce {
            version: 1,
            epoch: 1,
            skeleton: vec![],
            chunks: vec![]
        }
        .is_state_modifying());
        assert!(GrpBody::ChunkData {
            req: 1,
            version: 1,
            chunks: vec![]
        }
        .is_state_modifying());
        assert!(!GrpBody::ChunkRequest {
            req: 1,
            version: 1,
            indexes: vec![]
        }
        .is_state_modifying());
        // Invoke is gated separately by method kind, not wholesale.
        assert!(!GrpBody::Invoke {
            req: 1,
            inv: Invocation::new(MethodId(0), vec![])
        }
        .is_state_modifying());
        assert!(!GrpBody::GetState { req: 1 }.is_state_modifying());
    }

    #[test]
    fn role_spec_round_trip() {
        for spec in [
            RoleSpec::Standalone,
            RoleSpec::Master {
                mode: PropagationMode::PushState,
            },
            RoleSpec::Master {
                mode: PropagationMode::Invalidate,
            },
            RoleSpec::Master {
                mode: PropagationMode::PushDelta,
            },
            RoleSpec::Master {
                mode: PropagationMode::PushChunks,
            },
            RoleSpec::Slave {
                master: Endpoint::new(HostId(7), 2112),
            },
        ] {
            let mut w = WireWriter::new();
            spec.encode(&mut w);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            assert_eq!(RoleSpec::decode(&mut r).unwrap(), spec);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(GrpMsg::decode(&[]).is_err());
        assert!(GrpMsg::decode(&[0; 17]).is_err());
        let mut buf = GrpMsg {
            oid: 1,
            body: GrpBody::GetState { req: 1 },
        }
        .encode();
        buf.push(0);
        assert_eq!(GrpMsg::decode(&buf), Err(WireError::TrailingBytes));
    }
}
