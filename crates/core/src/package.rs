//! The package DSO: the distributed shared object holding one software
//! package.
//!
//! "All data stored in the GDN is stored in distributed shared objects.
//! For example, every software package is contained in a package DSO."
//! (paper §3.1). The semantics subobject here implements exactly the
//! methods the paper names — adding files, listing contents, retrieving
//! file contents (§3.3, §4) — plus removal and metadata, all free of any
//! replication awareness.
//!
//! The interface is declared once through [`globe_rts::dso_interface!`]:
//! [`PackageInterface`] carries the typed [`MethodDef`]s
//! (client-side marshalling — the paper's control subobject, §3.3), the
//! derived `kind_of` table, and the generated server-side dispatch that
//! unmarshals into the typed handler methods below.
//!
//! [`MethodDef`]: globe_rts::MethodDef

use std::collections::BTreeMap;
use std::rc::Rc;

use globe_crypto::sha256::sha256;
use globe_rts::interface::{DsoInterface, DsoState};
use globe_rts::{
    dso_interface, new_store, release_chunks, store_chunks, wire_struct, ChunkRef, ChunkStoreRef,
    ImplId, SemError,
};

use crate::delta::MutationLog;

/// The package class's identifier in the implementation repository.
pub const PACKAGE_IMPL: ImplId = <PackageInterface as DsoInterface>::IMPL;

wire_struct! {
    /// `addFile` arguments: add (or replace) one file.
    pub struct AddFile {
        /// File name within the package.
        pub name: String,
        /// File contents.
        pub data: Vec<u8>,
    }
}

wire_struct! {
    /// `removeFile` arguments.
    pub struct RemoveFile {
        /// File name to remove.
        pub name: String,
    }
}

wire_struct! {
    /// `getFileContents` arguments.
    pub struct GetFile {
        /// File name to fetch.
        pub name: String,
    }
}

wire_struct! {
    /// One file in a package listing.
    pub struct FileInfo {
        /// File name within the package.
        pub name: String,
        /// Size in bytes.
        pub size: u64,
        /// SHA-256 digest of the contents (integrity per paper §6.1).
        pub digest: [u8; 32],
    }
}

wire_struct! {
    /// `getFileContents` result: contents plus their digest.
    pub struct FileBlob {
        /// File contents.
        pub data: Vec<u8>,
        /// SHA-256 digest computed at the replica.
        pub digest: [u8; 32],
    }
}

wire_struct! {
    /// Package description (`getMeta` result / `setMeta` arguments).
    pub struct Meta {
        /// Human-readable description.
        pub description: String,
    }
}

impl FileBlob {
    /// Returns the contents after verifying the embedded digest
    /// (end-to-end integrity, paper §6.1).
    pub fn verified(self) -> Result<Vec<u8>, IntegrityError> {
        if sha256(&self.data) != self.digest {
            return Err(IntegrityError);
        }
        Ok(self.data)
    }
}

/// A fetched payload failed its digest check: the bytes were corrupted
/// somewhere beneath the control subobject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegrityError;

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "payload digest mismatch")
    }
}

impl std::error::Error for IntegrityError {}

/// One package file: its content lives as retained chunks in the
/// host-wide chunk store, so identical content across files, package
/// versions — and whole packages — is stored once.
#[derive(Clone, Debug)]
struct FileRec {
    len: u64,
    digest: [u8; 32],
    chunks: Vec<ChunkRef>,
}

/// Delta op: add (or replace) one file.
const DOP_ADD_FILE: u8 = 1;
/// Delta op: remove one file.
const DOP_REMOVE_FILE: u8 = 2;
/// Delta op: replace the description.
const DOP_SET_META: u8 = 3;

/// The package semantics subobject.
pub struct PackageDso {
    description: String,
    files: BTreeMap<String, FileRec>,
    /// Where the file bytes actually live. A fresh instance gets a
    /// private store; the runtime swaps in the host-wide one via
    /// [`DsoState::attach_chunks`] before any state arrives.
    store: ChunkStoreRef,
    /// Mutations since the last delta drain (delta replication).
    log: MutationLog,
    /// Bumped on every state change: the cheap persistence digest.
    gen: u64,
}

impl Default for PackageDso {
    fn default() -> PackageDso {
        PackageDso {
            description: String::new(),
            files: BTreeMap::new(),
            store: new_store(),
            log: MutationLog::default(),
            gen: 0,
        }
    }
}

impl Drop for PackageDso {
    fn drop(&mut self) {
        for rec in self.files.values() {
            release_chunks(&self.store, &rec.chunks);
        }
    }
}

impl PackageDso {
    /// Creates an empty package.
    pub fn new() -> PackageDso {
        PackageDso::default()
    }

    /// Number of files (direct inspection for tests).
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// The chunk store backing this package (tests).
    pub fn store(&self) -> &ChunkStoreRef {
        &self.store
    }

    /// Chunks `data` into the store and records it under `name`,
    /// releasing whatever the name previously held.
    fn put_file(&mut self, name: String, data: &[u8]) {
        let rec = FileRec {
            len: data.len() as u64,
            digest: sha256(data),
            chunks: store_chunks(&self.store, data),
        };
        if let Some(old) = self.files.insert(name, rec) {
            release_chunks(&self.store, &old.chunks);
        }
    }

    /// Reassembles a file's bytes from its chunks.
    fn file_data(&self, rec: &FileRec) -> Vec<u8> {
        globe_rts::assemble(&self.store, &rec.chunks).unwrap_or_default()
    }

    // Typed method handlers, dispatched by the interface declaration
    // below.

    fn add_file(&mut self, args: AddFile) -> Result<(), SemError> {
        self.log.record(|w| {
            w.put_u8(DOP_ADD_FILE);
            w.put_str(&args.name);
            w.put_bytes(&args.data);
        });
        self.gen += 1;
        self.put_file(args.name, &args.data);
        Ok(())
    }

    fn remove_file(&mut self, args: RemoveFile) -> Result<(), SemError> {
        match self.files.remove(&args.name) {
            Some(rec) => release_chunks(&self.store, &rec.chunks),
            None => return Err(SemError::Application(format!("no file {:?}", args.name))),
        }
        self.log.record(|w| {
            w.put_u8(DOP_REMOVE_FILE);
            w.put_str(&args.name);
        });
        self.gen += 1;
        Ok(())
    }

    fn list_contents(&mut self, _args: ()) -> Result<Vec<FileInfo>, SemError> {
        Ok(self
            .files
            .iter()
            .map(|(name, rec)| FileInfo {
                name: name.clone(),
                size: rec.len,
                digest: rec.digest,
            })
            .collect())
    }

    fn get_file(&mut self, args: GetFile) -> Result<FileBlob, SemError> {
        match self.files.get(&args.name) {
            Some(rec) => Ok(FileBlob {
                data: self.file_data(rec),
                digest: rec.digest,
            }),
            None => Err(SemError::Application(format!("no file {:?}", args.name))),
        }
    }

    fn get_meta(&mut self, _args: ()) -> Result<Meta, SemError> {
        Ok(Meta {
            description: self.description.clone(),
        })
    }

    fn set_meta(&mut self, args: Meta) -> Result<(), SemError> {
        self.log.record(|w| {
            w.put_u8(DOP_SET_META);
            w.put_str(&args.description);
        });
        self.gen += 1;
        self.description = args.description;
        Ok(())
    }
}

impl DsoState for PackageDso {
    fn save(&self) -> Vec<u8> {
        // The full-state wire format predates chunking and is kept
        // verbatim (inline file bytes): it serves the full-state
        // propagation fallback, persistence and every pre-chunk peer.
        use globe_net::WireWriter;
        let mut w = WireWriter::new();
        w.put_str(&self.description);
        w.put_u32(self.files.len() as u32);
        for (name, rec) in &self.files {
            w.put_str(name);
            w.put_bytes(&self.file_data(rec));
        }
        w.finish()
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        type Parsed = (String, Vec<(String, Vec<u8>)>);
        let parse = || -> Result<Parsed, WireError> {
            let mut r = WireReader::new(state);
            let description = r.str()?.to_owned();
            let n = r.u32()?;
            if n > 1_000_000 {
                return Err(WireError::TooLarge);
            }
            let mut files = Vec::new();
            for _ in 0..n {
                files.push((r.str()?.to_owned(), r.bytes()?.to_vec()));
            }
            r.expect_end()?;
            Ok((description, files))
        };
        let (description, files) = parse().map_err(|_| SemError::BadState)?;
        self.description = description;
        for rec in self.files.values() {
            release_chunks(&self.store, &rec.chunks);
        }
        self.files.clear();
        // Even a full-state transfer lands in the chunk store, so the
        // *next* version propagates as a compact announcement diffed
        // against what this install just made resident.
        for (name, data) in files {
            self.put_file(name, &data);
        }
        // New baseline: undrained mutations predate it.
        self.log.reset();
        self.gen += 1;
        Ok(())
    }

    fn digest(&self) -> u64 {
        self.gen
    }

    fn take_delta(&mut self) -> Option<Vec<u8>> {
        self.log.take()
    }

    fn apply_delta(&mut self, delta: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        enum Op {
            Add(String, Vec<u8>),
            Remove(String),
            Meta(String),
        }
        // Decode fully before touching state, so malformed deltas
        // leave the copy unchanged for the full-state fallback.
        let parse = || -> Result<Vec<Op>, WireError> {
            let mut r = WireReader::new(delta);
            let mut ops = Vec::new();
            while r.remaining() > 0 {
                ops.push(match r.u8()? {
                    DOP_ADD_FILE => Op::Add(r.str()?.to_owned(), r.bytes()?.to_vec()),
                    DOP_REMOVE_FILE => Op::Remove(r.str()?.to_owned()),
                    DOP_SET_META => Op::Meta(r.str()?.to_owned()),
                    t => return Err(WireError::BadTag(t)),
                });
            }
            Ok(ops)
        };
        let ops = parse().map_err(|_| SemError::BadState)?;
        for op in ops {
            match op {
                Op::Add(name, data) => self.put_file(name, &data),
                Op::Remove(name) => {
                    if let Some(rec) = self.files.remove(&name) {
                        release_chunks(&self.store, &rec.chunks);
                    }
                }
                Op::Meta(description) => self.description = description,
            }
        }
        self.gen += 1;
        Ok(())
    }

    fn attach_chunks(&mut self, store: &ChunkStoreRef) {
        if Rc::ptr_eq(store, &self.store) {
            return;
        }
        // Migrate resident content (normally none: the runtime attaches
        // right after instantiation) so existing references stay live.
        for rec in self.files.values_mut() {
            let mut moved = Vec::with_capacity(rec.chunks.len());
            for r in &rec.chunks {
                let data = self.store.borrow().get(&r.id).map(<[u8]>::to_vec);
                if let Some(data) = data {
                    let mut s = store.borrow_mut();
                    let nr = s.insert(&data);
                    s.retain(&nr.id);
                    moved.push(nr);
                }
            }
            let old = std::mem::replace(&mut rec.chunks, moved);
            release_chunks(&self.store, &old);
        }
        self.store = store.clone();
    }

    fn save_chunked(&self) -> Option<(Vec<u8>, Vec<ChunkRef>)> {
        use globe_net::WireWriter;
        // Skeleton: everything except file bytes, with each file's
        // content expressed as indexes into one deduplicated global
        // manifest (first-use order). A chunk shared by several files
        // appears in the manifest — and therefore on the wire — once.
        let mut manifest: Vec<ChunkRef> = Vec::new();
        let mut index: BTreeMap<[u8; 32], u32> = BTreeMap::new();
        let mut w = WireWriter::new();
        w.put_str(&self.description);
        w.put_u32(self.files.len() as u32);
        for (name, rec) in &self.files {
            w.put_str(name);
            w.put_u64(rec.len);
            w.put_raw(&rec.digest);
            w.put_u32(rec.chunks.len() as u32);
            for r in &rec.chunks {
                let next = manifest.len() as u32;
                let idx = *index.entry(r.id).or_insert_with(|| {
                    manifest.push(*r);
                    next
                });
                w.put_u32(idx);
            }
        }
        Some((w.finish(), manifest))
    }

    fn restore_chunked(&mut self, skeleton: &[u8], manifest: &[ChunkRef]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        let parse = || -> Result<(String, Vec<(String, FileRec)>), WireError> {
            let mut r = WireReader::new(skeleton);
            let description = r.str()?.to_owned();
            let n = r.u32()?;
            if n > 1_000_000 {
                return Err(WireError::TooLarge);
            }
            let mut files = Vec::new();
            for _ in 0..n {
                let name = r.str()?.to_owned();
                let len = r.u64()?;
                let mut digest = [0u8; 32];
                digest.copy_from_slice(r.raw(32)?);
                let nchunks = r.u32()?;
                if nchunks > 1 << 20 {
                    return Err(WireError::TooLarge);
                }
                let mut chunks = Vec::with_capacity(nchunks.min(4096) as usize);
                for _ in 0..nchunks {
                    let idx = r.u32()? as usize;
                    chunks.push(*manifest.get(idx).ok_or(WireError::TooLarge)?);
                }
                if chunks.iter().map(|c| c.len as u64).sum::<u64>() != len {
                    return Err(WireError::TooLarge);
                }
                files.push((
                    name,
                    FileRec {
                        len,
                        digest,
                        chunks,
                    },
                ));
            }
            r.expect_end()?;
            Ok((description, files))
        };
        let (description, files) = parse().map_err(|_| SemError::BadState)?;
        // Retain the new references before releasing the old: shared
        // chunks must never dip to zero in between. Any chunk the store
        // does not actually hold fails the install (the protocol layer
        // then falls back to a full state transfer).
        let mut retained: Vec<ChunkRef> = Vec::new();
        {
            let mut s = self.store.borrow_mut();
            for (_, rec) in &files {
                for r in &rec.chunks {
                    if !s.retain(&r.id) {
                        for u in &retained {
                            s.release(&u.id);
                        }
                        return Err(SemError::BadState);
                    }
                    retained.push(*r);
                }
            }
        }
        self.description = description;
        for rec in self.files.values() {
            release_chunks(&self.store, &rec.chunks);
        }
        self.files = files.into_iter().collect();
        self.log.reset();
        self.gen += 1;
        Ok(())
    }
}

dso_interface! {
    /// The package DSO interface, declared once: method ids, read/write
    /// classification, typed argument/result marshalling and server-side
    /// dispatch all derive from this table.
    pub interface PackageInterface {
        class: "gdn-package",
        impl_id: 10,
        semantics: PackageDso,
        methods: {
            /// Adds (or replaces) a file. Write; insert-or-replace, so
            /// re-invoking after an ambiguous failure is safe.
            1 => write(idempotent) ADD_FILE/add_file(AddFile) -> (),
            /// Removes a file. Write; a repeat leaves the same state.
            2 => write(idempotent) REMOVE_FILE/remove_file(RemoveFile) -> (),
            /// Lists the package contents. Read.
            3 => read LIST_CONTENTS/list_contents(()) -> Vec<FileInfo>,
            /// Fetches one file's contents with digest. Read.
            4 => read GET_FILE/get_file(GetFile) -> FileBlob,
            /// Fetches the package description. Read.
            5 => read GET_META/get_meta(()) -> Meta,
            /// Replaces the package description. Write; last-writer
            /// semantics make a re-invoke harmless.
            6 => write(idempotent) SET_META/set_meta(Meta) -> (),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_rts::{Invocation, MethodId, MethodKind, SemanticsObject, WireCodec};

    fn add(pkg: &mut PackageDso, name: &str, data: &[u8]) {
        pkg.dispatch(&PackageInterface::ADD_FILE.invocation(&AddFile {
            name: name.into(),
            data: data.to_vec(),
        }))
        .unwrap();
    }

    fn listing(pkg: &mut PackageDso) -> Vec<FileInfo> {
        let raw = pkg
            .dispatch(&PackageInterface::LIST_CONTENTS.invocation(&()))
            .unwrap();
        PackageInterface::LIST_CONTENTS.decode_result(&raw).unwrap()
    }

    #[test]
    fn add_list_get_remove() {
        let mut pkg = PackageDso::new();
        add(&mut pkg, "README", b"hello");
        add(&mut pkg, "src.tar", &[7u8; 1000]);

        let files = listing(&mut pkg);
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].name, "README");
        assert_eq!(files[0].size, 5);
        assert_eq!(files[1].size, 1000);

        let raw = pkg
            .dispatch(&PackageInterface::GET_FILE.invocation(&GetFile {
                name: "README".into(),
            }))
            .unwrap();
        let blob = PackageInterface::GET_FILE.decode_result(&raw).unwrap();
        assert_eq!(blob.verified().unwrap(), b"hello");

        pkg.dispatch(&PackageInterface::REMOVE_FILE.invocation(&RemoveFile {
            name: "README".into(),
        }))
        .unwrap();
        assert_eq!(pkg.num_files(), 1);
        assert!(pkg
            .dispatch(&PackageInterface::GET_FILE.invocation(&GetFile {
                name: "README".into(),
            }))
            .is_err());
        assert!(pkg
            .dispatch(&PackageInterface::REMOVE_FILE.invocation(&RemoveFile {
                name: "README".into(),
            }))
            .is_err());
    }

    #[test]
    fn metadata_round_trip() {
        let mut pkg = PackageDso::new();
        pkg.dispatch(&PackageInterface::SET_META.invocation(&Meta {
            description: "GNU Image Manipulation Program".into(),
        }))
        .unwrap();
        let raw = pkg
            .dispatch(&PackageInterface::GET_META.invocation(&()))
            .unwrap();
        let meta = PackageInterface::GET_META.decode_result(&raw).unwrap();
        assert_eq!(meta.description, "GNU Image Manipulation Program");
    }

    #[test]
    fn state_transfer_preserves_everything() {
        let mut a = PackageDso::new();
        a.dispatch(&PackageInterface::SET_META.invocation(&Meta {
            description: "teTeX".into(),
        }))
        .unwrap();
        add(&mut a, "tex.bin", &[1, 2, 3]);
        let state = a.get_state();

        let mut b = PackageDso::new();
        b.set_state(&state).unwrap();
        let files = listing(&mut b);
        assert_eq!(files.len(), 1);
        let raw = b
            .dispatch(&PackageInterface::GET_META.invocation(&()))
            .unwrap();
        let meta = PackageInterface::GET_META.decode_result(&raw).unwrap();
        assert_eq!(meta.description, "teTeX");
        // Digest recomputed identically.
        assert_eq!(files[0].digest, sha256(&[1, 2, 3]));
    }

    #[test]
    fn malformed_arguments_rejected() {
        let mut pkg = PackageDso::new();
        assert_eq!(
            pkg.dispatch(&Invocation::new(
                PackageInterface::ADD_FILE.id(),
                vec![0xFF]
            )),
            Err(SemError::BadArguments)
        );
        assert!(matches!(
            pkg.dispatch(&Invocation::new(MethodId(99), vec![])),
            Err(SemError::NoSuchMethod(_))
        ));
        assert!(pkg.set_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn digest_verified_on_decode() {
        let mut pkg = PackageDso::new();
        add(&mut pkg, "f", b"data");
        let mut raw = pkg
            .dispatch(&PackageInterface::GET_FILE.invocation(&GetFile { name: "f".into() }))
            .unwrap();
        // Corrupt one payload byte: verification must fail.
        raw[4] ^= 0xFF;
        let blob = PackageInterface::GET_FILE.decode_result(&raw).unwrap();
        assert_eq!(blob.verified(), Err(IntegrityError));
    }

    #[test]
    fn class_registration() {
        let mut repo = globe_rts::ImplRepository::new();
        PackageInterface::register(&mut repo);
        assert!(repo.contains(PACKAGE_IMPL));
        assert_eq!(
            repo.kind_of(PACKAGE_IMPL, PackageInterface::GET_FILE.id()),
            Some(MethodKind::Read)
        );
        assert_eq!(
            repo.kind_of(PACKAGE_IMPL, PackageInterface::ADD_FILE.id()),
            Some(MethodKind::Write)
        );
        assert_eq!(repo.kind_of(PACKAGE_IMPL, MethodId(99)), None);
    }

    #[test]
    fn wire_format_is_stable() {
        // The typed layer must keep the original hand-written wire
        // format: name as length-prefixed string, data as
        // length-prefixed bytes.
        let inv = PackageInterface::ADD_FILE.invocation(&AddFile {
            name: "f".into(),
            data: vec![9, 9],
        });
        assert_eq!(inv.method, MethodId(1));
        let mut expect = globe_net::WireWriter::new();
        expect.put_str("f");
        expect.put_bytes(&[9, 9]);
        assert_eq!(inv.args, expect.finish());

        // Listings: u32 count, then (name, size, raw digest) triples.
        let files = vec![FileInfo {
            name: "a".into(),
            size: 3,
            digest: [7; 32],
        }];
        let mut expect = globe_net::WireWriter::new();
        expect.put_u32(1);
        expect.put_str("a");
        expect.put_u64(3);
        expect.put_raw(&[7; 32]);
        assert_eq!(files.to_bytes(), expect.finish());
    }

    /// A deterministic pseudo-random payload.
    fn patterned(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect()
    }

    #[test]
    fn chunked_round_trip_preserves_exact_bytes() {
        let store = new_store();
        let mut a = PackageDso::new();
        a.attach_chunks(&store);
        a.dispatch(&PackageInterface::SET_META.invocation(&Meta {
            description: "emacs".into(),
        }))
        .unwrap();
        add(&mut a, "big.bin", &patterned(20_000, 1));
        add(&mut a, "small.txt", b"tiny");
        let (skeleton, manifest) = DsoState::save_chunked(&a).unwrap();

        let mut b = PackageDso::new();
        b.attach_chunks(&store);
        DsoState::restore_chunked(&mut b, &skeleton, &manifest).unwrap();
        assert_eq!(b.get_state(), a.get_state());
        let raw = b
            .dispatch(&PackageInterface::GET_FILE.invocation(&GetFile {
                name: "big.bin".into(),
            }))
            .unwrap();
        let blob = PackageInterface::GET_FILE.decode_result(&raw).unwrap();
        assert_eq!(blob.verified().unwrap(), patterned(20_000, 1));
    }

    #[test]
    fn identical_content_is_stored_once_across_packages() {
        let store = new_store();
        let shared = patterned(40_000, 2);
        let mut a = PackageDso::new();
        a.attach_chunks(&store);
        add(&mut a, "lib.so", &shared);
        let resident_after_one = store.borrow().resident_bytes();

        let mut b = PackageDso::new();
        b.attach_chunks(&store);
        add(&mut b, "lib.so", &shared);
        // The second package re-uses every chunk of the first.
        assert_eq!(store.borrow().resident_bytes(), resident_after_one);
        assert!(store.borrow().stats().bytes_deduped >= shared.len() as u64);
    }

    #[test]
    fn refcounts_keep_shared_chunks_alive_until_last_release() {
        let store = new_store();
        let shared = patterned(10_000, 3);
        let mut a = PackageDso::new();
        a.attach_chunks(&store);
        add(&mut a, "f", &shared);
        let mut b = PackageDso::new();
        b.attach_chunks(&store);
        add(&mut b, "f", &shared);

        // Package A removes its copy: the chunks stay (B still holds
        // them) ...
        a.dispatch(&PackageInterface::REMOVE_FILE.invocation(&RemoveFile { name: "f".into() }))
            .unwrap();
        let raw = b
            .dispatch(&PackageInterface::GET_FILE.invocation(&GetFile { name: "f".into() }))
            .unwrap();
        let blob = PackageInterface::GET_FILE.decode_result(&raw).unwrap();
        assert_eq!(blob.verified().unwrap(), shared);
        // ... and dropping B frees them.
        drop(b);
        assert_eq!(store.borrow().resident_bytes(), 0);
    }

    #[test]
    fn two_versions_sharing_content_dedup_on_restore() {
        let store = new_store();
        // v1: ten files. v2: one file changed, nine identical.
        let mut v1 = PackageDso::new();
        v1.attach_chunks(&store);
        for i in 0..10 {
            add(&mut v1, &format!("f{i}"), &patterned(8_192, 10 + i));
        }
        let (sk1, m1) = DsoState::save_chunked(&v1).unwrap();
        let mut v2 = PackageDso::new();
        v2.attach_chunks(&store);
        for i in 0..10 {
            let seed = if i == 9 { 99 } else { 10 + i };
            add(&mut v2, &format!("f{i}"), &patterned(8_192, seed));
        }
        let (sk2, m2) = DsoState::save_chunked(&v2).unwrap();

        // A receiver installing v1 then v2 against one store re-stores
        // only the changed tenth.
        let rx_store = new_store();
        let mut rx = PackageDso::new();
        rx.attach_chunks(&rx_store);
        for r in &m1 {
            rx_store
                .borrow_mut()
                .insert(store.borrow().get(&r.id).unwrap());
        }
        DsoState::restore_chunked(&mut rx, &sk1, &m1).unwrap();
        let before = rx_store.borrow().stats();
        for r in &m2 {
            let data = store.borrow().get(&r.id).unwrap().to_vec();
            rx_store.borrow_mut().insert(&data);
        }
        DsoState::restore_chunked(&mut rx, &sk2, &m2).unwrap();
        let after = rx_store.borrow().stats();
        let new_bytes = after.bytes_stored - before.bytes_stored;
        let dedup_bytes = after.bytes_deduped - before.bytes_deduped;
        let total: u64 = m2.iter().map(|r| r.len as u64).sum();
        assert!(
            new_bytes <= total / 5,
            "v2 re-stored {new_bytes} of {total} bytes"
        );
        assert!(
            dedup_bytes as f64 / total as f64 >= 0.85,
            "dedup ratio too low: {dedup_bytes}/{total}"
        );
        assert_eq!(rx.get_state(), v2.get_state());
    }

    #[test]
    fn restore_chunked_rejects_absent_chunks_without_leaking_refs() {
        let store = new_store();
        let mut a = PackageDso::new();
        a.attach_chunks(&store);
        add(&mut a, "f", &patterned(9_000, 4));
        let (skeleton, manifest) = DsoState::save_chunked(&a).unwrap();

        // A store that holds only the first chunk of the manifest.
        let partial = new_store();
        partial
            .borrow_mut()
            .insert(store.borrow().get(&manifest[0].id).unwrap());
        let mut b = PackageDso::new();
        b.attach_chunks(&partial);
        assert!(DsoState::restore_chunked(&mut b, &skeleton, &manifest).is_err());
        // The failed install released its provisional reference (the
        // rollback may free the cache entry outright: refs hit zero).
        assert_eq!(partial.borrow().refs(&manifest[0].id).unwrap_or(0), 0);
        assert_eq!(b.num_files(), 0);
    }
}
