//! End-to-end proof that the schedule-fuzzing auditor catches a real
//! protocol bug — the acceptance gate for the fuzz harness itself.
//!
//! The known-bad variant is the pre-fix invalidated-slave answer path
//! (re-enabled behind `globe_rts::protocols::inject`): an invalidated
//! slave serves `GetState`/`Refresh` from its outdated copy instead of
//! revalidating first, so caches filling from it absorb stale state
//! with no way to detect it. Under invalidation propagation that
//! staleness is unbounded, which the auditor's freshness oracle flags
//! as `stale-read`.
//!
//! One `#[test]` only: the injection flag is process-global, and
//! integration tests in one binary may run on sibling threads. Keeping
//! the flag's on-window inside a single test body keeps the other run
//! (bug off) honest.

use globe_bench::fuzz::{ObjectPlan, SessionOp, SessionPlan};
use globe_bench::{report, run_plan, SchedulePlan, SeedOutcome};
use globe_rts::protocols::inject;
use globe_rts::PropagationMode;
use globe_sim::SimDuration;
use globe_workloads::ScenarioPolicy;

/// A handcrafted two-region schedule that drives the buggy path.
///
/// The single object is hot (rank 0 < `HOT_RANK`) and stable
/// (0.2 updates/h ≤ `VOLATILE_UPDATES`), so `ScenarioPolicy::PerObject`
/// assigns `cached_replicated`: slaves everywhere, caches filling from
/// the *nearest replica* — the region-1 cache reads through the
/// region-1 slave, the only topology that exercises a slave answering
/// `GetState` while invalidated. The writer in region 0 invalidates
/// that slave; the region-1 reads then arrive long after `cache_ttl`
/// plus the freshness slack, so a stale fill is unambiguously a
/// violation rather than TTL-permitted laziness.
fn stale_slave_plan() -> SchedulePlan {
    let s = SimDuration::from_secs;
    SchedulePlan {
        seed: 424242,
        regions: 2,
        objects: vec![ObjectPlan {
            policy: ScenarioPolicy::PerObject,
            mode: PropagationMode::Invalidate,
            updates_per_hour: 0.2,
        }],
        cache_ttl: s(5),
        latency_scale: 1.0,
        jitter_fraction: 0.0,
        sessions: vec![
            // Writer in the master's region: one write, early.
            SessionPlan {
                region: 0,
                ops: vec![SessionOp {
                    write: true,
                    obj: 0,
                }],
                gaps: vec![s(1)],
                hedge: None,
                legacy_rotation: false,
            },
            // Reader in region 1: both reads land well past
            // `cache_ttl` + audit slack after the write commits.
            SessionPlan {
                region: 1,
                ops: vec![
                    SessionOp {
                        write: false,
                        obj: 0,
                    },
                    SessionOp {
                        write: false,
                        obj: 0,
                    },
                ],
                gaps: vec![s(30), s(20)],
                hedge: None,
                legacy_rotation: false,
            },
        ],
        disturbances: Vec::new(),
    }
}

#[test]
fn auditor_catches_injected_stale_slave_bug() {
    let plan = stale_slave_plan();

    // Baseline: the shipped protocol passes this exact schedule, so
    // any violation below is attributable to the injected bug alone.
    let (violations, _) = run_plan(&plan);
    assert!(
        violations.is_empty(),
        "clean protocol must pass the handcrafted schedule, got: {violations:?}"
    );

    inject::set_stale_slave_answers(true);
    let (violations, trace) = run_plan(&plan);
    inject::set_stale_slave_answers(false);

    assert!(
        !violations.is_empty(),
        "injected stale-answer bug must produce auditor violations"
    );
    assert!(
        violations.iter().any(|v| v.rule == "stale-read"),
        "expected a stale-read violation, got rules: {:?}",
        violations.iter().map(|v| v.rule).collect::<Vec<_>>()
    );

    // The failure report carries a one-line repro, same as fuzz_main's.
    let outcome = SeedOutcome {
        seed: plan.seed,
        violations,
        plan,
        trace,
    };
    let rendered = report(&outcome);
    assert!(
        rendered.contains("GLOBE_FUZZ_SEED="),
        "report must include the one-line repro, got:\n{rendered}"
    );
    assert!(rendered.contains("stale-read"), "report names the rule");

    // And with the bug back off, the same schedule is clean again.
    let (violations, _) = run_plan(&stale_slave_plan());
    assert!(
        violations.is_empty(),
        "bug disabled: schedule must be clean again, got: {violations:?}"
    );
}
