//! Scenario-sweep world tests: single cells of the experiment matrix
//! run end to end, checking the invariants CI's `bench-smoke` job
//! enforces at full matrix scale.

use globe_bench::{check_sweep_invariants, churn_cells, run_cell, sweep_cell, DsoClass, SweepSpec};
use globe_rts::PropagationMode;
use globe_workloads::ScenarioPolicy;

/// Smaller-than-default workload so debug-profile test runs stay quick.
fn test_spec() -> SweepSpec {
    SweepSpec {
        regions: 2,
        fanout_regions: 9,
        objects: 4,
        writes: 12,
        read_secs: 30,
        read_rate: 0.5,
        ..SweepSpec::default()
    }
}

#[test]
fn write_heavy_delta_beats_state_at_eight_slaves() {
    let spec = test_spec();
    let state = sweep_cell(
        ScenarioPolicy::ReplicateAll,
        PropagationMode::PushState,
        DsoClass::DownloadStats,
        &spec,
    );
    let delta = sweep_cell(
        ScenarioPolicy::ReplicateAll,
        PropagationMode::PushDelta,
        DsoClass::DownloadStats,
        &spec,
    );

    for r in [&state, &delta] {
        assert_eq!(r.replicas, 9, "{r:?}");
        assert!(r.ok > 0, "no read traffic: {r:?}");
        assert!(r.writes_completed > 0, "fetch hook recorded nothing: {r:?}");
        assert_eq!(r.stale_reads, 0, "{r:?}");
    }
    // The delta pipeline's win, measured through the real access path
    // (every fetch anywhere → record at the master → fan-out to 8
    // slaves).
    assert!(
        delta.grp_bytes_encoded <= state.grp_bytes_encoded,
        "delta {} > state {}",
        delta.grp_bytes_encoded,
        state.grp_bytes_encoded
    );
    assert!(delta.deltas_applied > 0, "{delta:?}");
    assert_eq!(state.deltas_applied, 0, "{state:?}");

    // The checker agrees with the hand-rolled assertions. A two-cell
    // slice can't satisfy the matrix-wide package-chunked pair check;
    // everything else must pass.
    let violations = check_sweep_invariants(&[state, delta]);
    assert!(
        violations.iter().all(|v| v.contains("package-chunked")),
        "{violations:?}"
    );
}

#[test]
fn read_mostly_classes_serve_fresh_reads_under_every_policy() {
    let spec = test_spec();
    for class in [DsoClass::Catalog, DsoClass::MirrorList] {
        for policy in [ScenarioPolicy::UniformCache, ScenarioPolicy::PerObject] {
            let r = sweep_cell(policy, PropagationMode::PushDelta, class, &spec);
            assert!(r.ok > 0, "no traffic: {r:?}");
            assert_eq!(r.stale_reads, 0, "{r:?}");
            assert!(r.writes_completed > 0, "write phase empty: {r:?}");
            assert!(r.fresh_reads > 0, "oracle saw nothing: {r:?}");
        }
    }
}

/// The cache-TTL churn cell: the single server copy dies mid-read-phase
/// while client caches bridge the outage, and the read-phase update
/// stream makes cached copies go stale within their TTL — measured by
/// the freshness oracle and gated as a bounded fraction instead of the
/// strict zero-stale rule.
#[test]
fn cache_ttl_failover_cell_measures_bounded_staleness() {
    let spec = test_spec();
    let cell = churn_cells(&spec)
        .into_iter()
        .find(|c| c.policy == ScenarioPolicy::UniformCache)
        .expect("the churn matrix includes a cache-ttl cell");
    let r = run_cell(&cell, &spec);

    assert!(r.ok > 0, "no read traffic: {r:?}");
    assert_eq!(r.kills, 1, "failover plan injects exactly one kill: {r:?}");
    assert!(r.retries >= 1, "failover cost no retries: {r:?}");
    assert!(
        r.writes_completed > 0,
        "read-phase update stream committed nothing: {r:?}"
    );
    assert!(r.fresh_reads > 0, "oracle saw nothing: {r:?}");
    // TTL staleness actually occurs (the point of the cell), and the
    // checker gates it as a fraction instead of flagging every stale
    // read.
    assert!(r.stale_reads > 0, "no TTL staleness observed: {r:?}");
    assert!(r.stale_limit > 0.0, "{r:?}");
    let violations = check_sweep_invariants(std::slice::from_ref(&r));
    // A single report can't satisfy the matrix-wide fanout-pair and
    // package-chunked-pair checks; everything cell-local must pass.
    assert!(
        violations
            .iter()
            .all(|v| v.contains("8+ slaves") || v.contains("package-chunked")),
        "{violations:?}"
    );
}

#[test]
fn package_cell_measures_latency_and_propagation() {
    let spec = test_spec();
    let r = sweep_cell(
        ScenarioPolicy::ReplicateAll,
        PropagationMode::PushDelta,
        DsoClass::Package,
        &spec,
    );
    assert_eq!(r.replicas, 2, "{r:?}");
    assert!(r.ok > 0 && r.p50_ms > 0.0, "{r:?}");
    assert_eq!(r.writes_completed, spec.writes as u64, "{r:?}");
    assert_eq!(r.stale_reads, 0, "{r:?}");
    // Replicated packages propagate the write phase to the slaves.
    assert!(r.grp_bytes_encoded > 0, "{r:?}");
}
