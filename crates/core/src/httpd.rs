//! The GDN-enabled HTTPD: the users' access point to the GDN (paper §4).
//!
//! "We use URLs that have embedded in them the name of a package DSO.
//! The GDN-HTTPD extracts this object name and binds to the DSO. The
//! HTTPD then invokes the appropriate method(s) ... For example, it
//! could call listContents() to obtain the list of files contained in
//! the package, which is subsequently reformatted into HTML and sent
//! back to the requesting browser. If the URL designates a particular
//! file in the package, the HTTPD calls the getFileContents() method and
//! sends back the returned content."
//!
//! URL scheme: `GET /pkg/<globe-name>` lists a package;
//! `GET /pkg/<globe-name>?file=<name>` downloads one file;
//! `GET /catalog/<globe-name>` renders a catalog DSO's package index;
//! `GET /catalog/<globe-name>?q=<term>` searches it;
//! `GET /mirrors/<globe-name>` renders a mirror-list DSO
//! (`?region=<n>` filters to one region, fattest pipe first).
//!
//! When configured with a stats object
//! ([`GdnHttpd::with_stats_object`]), every successful `/pkg` fetch
//! additionally records a download against that
//! [`DownloadStatsDso`](crate::DownloadStatsDso) — fire-and-forget
//! writes batched behind a lazy bind, so download telemetry rides the
//! ordinary replication machinery instead of a side channel.
//!
//! All object access goes through the typed interface layer: the HTTPD
//! binds, turns the [`BindInfo`](globe_rts::BindInfo) into a
//! class-checked [`BoundObject`](globe_rts::BoundObject), and invokes
//! through typed [`MethodDef`](globe_rts::MethodDef)s — it never
//! assembles raw invocation frames.
//!
//! The same service type doubles as the paper's *GDN-enabled proxy
//! server* when instantiated on a user's machine with anonymous
//! credentials — the architecture is identical, only the certificates
//! differ.

use std::collections::BTreeMap;

use globe_gls::ObjectId;
use globe_gns::{GnsClient, GnsDeployment, GnsError, GnsEvent};
use globe_net::{impl_service_any, ConnEvent, ConnId, Endpoint, Service, ServiceCtx};
use globe_rts::{BindError, BindRequest, GlobeRuntime, InvokeError, RtConn, RtEvent};
use globe_sim::{SimDuration, SimTime};

use crate::catalog::{CatalogEntry, CatalogInterface, Query};
use crate::http::{HttpRequest, HttpResponse};
use crate::mirrors::{Mirror, MirrorListInterface, RegionQuery};
use crate::package::{GetFile, PackageInterface};
use crate::stats::{DownloadStatsInterface, RecordDownload};

/// Load counters for one HTTPD.
#[derive(Clone, Copy, Debug, Default)]
pub struct HttpdStats {
    /// HTTP requests received.
    pub requests: u64,
    /// 200 responses.
    pub ok: u64,
    /// Non-200 responses.
    pub errors: u64,
    /// Requests that skipped name resolution (local name cache).
    pub name_cache_hits: u64,
    /// `/pkg` fetches recorded into the configured stats object.
    pub downloads_recorded: u64,
}

/// What a request wants from the object it names.
#[derive(Clone, Debug)]
enum ReqKind {
    /// A package listing, or one file of it.
    Package { file: Option<String> },
    /// A catalog index, or a search over it.
    Catalog { query: Option<String> },
    /// A mirror list, or one region's slice of it.
    Mirrors { region: Option<u32> },
}

#[derive(Debug)]
struct PendingReq {
    conn: ConnId,
    name: String,
    kind: ReqKind,
    oid: Option<ObjectId>,
    started: SimTime,
    /// Rebind attempts used for this request (replica failover).
    attempts: u32,
}

/// The GDN-enabled HTTPD service.
pub struct GdnHttpd {
    /// The embedded Globe runtime (public for experiments: its local
    /// representatives are the paper's "LR installed in the GDN-HTTPD").
    pub runtime: GlobeRuntime,
    gns: GnsClient,
    /// Stable name→OID bindings (paper §5: mappings are stable, so
    /// caching them aggressively is sound).
    name_cache: BTreeMap<String, ObjectId>,
    requests: BTreeMap<u64, PendingReq>,
    next_token: u64,
    /// When each object was last bound; bindings older than
    /// `bind_refresh` are re-resolved against the GLS so newly created
    /// replicas become visible (paper §3.1: scenarios adapt to
    /// popularity changes — clients must notice).
    bind_times: BTreeMap<u128, SimTime>,
    bind_refresh: SimDuration,
    /// Globe name of the download-stats object fetches report into.
    stats_object: Option<String>,
    /// The stats object's id, once resolved.
    stats_oid: Option<ObjectId>,
    /// Records awaiting the stats resolve/bind (bounded; see
    /// [`STATS_PENDING_CAP`]).
    stats_pending: Vec<RecordDownload>,
    /// A stats resolve or bind is in flight.
    stats_busy: bool,
    /// Load counters.
    pub stats: HttpdStats,
}

/// Token marking the stats object's GNS resolution.
const STATS_RESOLVE: u64 = u64::MAX;
/// Token marking the stats object's bind.
const STATS_BIND: u64 = u64::MAX - 1;
/// Token marking fire-and-forget `record` invocations.
const STATS_RECORD: u64 = u64::MAX - 2;
/// Telemetry queued behind an unresolved stats object past this cap is
/// dropped oldest-first — stats must never hold user fetches hostage.
const STATS_PENDING_CAP: usize = 256;

impl GdnHttpd {
    /// Creates an HTTPD with an embedded runtime and a GNS client
    /// resolving via the host's site resolver.
    pub fn new(
        runtime: GlobeRuntime,
        gns_deploy: &GnsDeployment,
        topo: &globe_net::Topology,
        host: globe_net::HostId,
        gns_ns: u16,
    ) -> GdnHttpd {
        GdnHttpd {
            runtime,
            gns: GnsClient::new(gns_deploy, topo, host, gns_ns),
            name_cache: BTreeMap::new(),
            requests: BTreeMap::new(),
            next_token: 1,
            bind_times: BTreeMap::new(),
            bind_refresh: SimDuration::from_secs(30),
            stats_object: None,
            stats_oid: None,
            stats_pending: Vec::new(),
            stats_busy: false,
            stats: HttpdStats::default(),
        }
    }

    /// Overrides how long a binding is trusted before the GLS is asked
    /// again (default 30 s).
    pub fn with_bind_refresh(mut self, d: SimDuration) -> GdnHttpd {
        self.bind_refresh = d;
        self
    }

    /// Records every successful `/pkg` fetch into the download-stats
    /// object named `name`. The object is resolved and bound lazily on
    /// the first fetch, so it may be published after this HTTPD starts.
    /// The HTTPD's runtime credentials must pass the write gate (the
    /// deployment's HTTPDs hold host certificates, which do).
    pub fn with_stats_object(mut self, name: &str) -> GdnHttpd {
        self.stats_object = Some(name.to_owned());
        self
    }

    fn bind_fresh(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, token: u64) {
        let stale = self
            .bind_times
            .get(&oid.0)
            .map(|&t| ctx.now().saturating_sub(t) > self.bind_refresh)
            .unwrap_or(false);
        if stale && self.runtime.is_bound(oid) {
            // Re-resolve against the GLS without discarding the
            // representative: cached state survives the swap, so a TTL
            // cache's next refresh is a delta, not a full refetch.
            self.bind_times.insert(oid.0, ctx.now());
            self.runtime.rebind(ctx, oid, token);
            return;
        }
        if !self.runtime.is_bound(oid) {
            self.bind_times.insert(oid.0, ctx.now());
        }
        self.runtime.submit_bind(ctx, BindRequest::new(oid, token));
    }

    /// Queues one download observation for the configured stats object
    /// and pushes it out as a fire-and-forget `record` write. The first
    /// observation triggers the lazy resolve → bind chain; failures are
    /// counted and dropped — telemetry must never fail a user fetch.
    fn record_download(&mut self, ctx: &mut ServiceCtx<'_>, name: String, bytes: u64) {
        if self.stats_object.is_none() {
            return;
        }
        if self.stats_pending.len() >= STATS_PENDING_CAP {
            self.stats_pending.remove(0);
            ctx.metrics().inc("httpd.stats.dropped", 1);
        }
        self.stats_pending.push(RecordDownload { name, bytes });
        match self.stats_oid {
            Some(oid) if self.runtime.is_bound(oid) => self.flush_stats(ctx),
            Some(oid) => {
                if !self.stats_busy {
                    self.stats_busy = true;
                    self.runtime
                        .submit_bind(ctx, BindRequest::new(oid, STATS_BIND));
                }
            }
            None => {
                if !self.stats_busy {
                    self.stats_busy = true;
                    let stats_name = self.stats_object.clone().expect("checked above");
                    self.gns.resolve(ctx, &stats_name, STATS_RESOLVE);
                }
            }
        }
    }

    /// Sends every queued observation as a typed `record` invocation.
    fn flush_stats(&mut self, ctx: &mut ServiceCtx<'_>) {
        let Some(oid) = self.stats_oid else {
            return;
        };
        for rec in std::mem::take(&mut self.stats_pending) {
            let inv = DownloadStatsInterface::RECORD.invocation(&rec);
            self.runtime.invoke(ctx, oid, inv, STATS_RECORD);
        }
    }

    fn respond(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        token: u64,
        status: u16,
        ctype: &str,
        body: &[u8],
    ) {
        let Some(req) = self.requests.remove(&token) else {
            return;
        };
        if status == 200 {
            self.stats.ok += 1;
        } else {
            self.stats.errors += 1;
        }
        let latency = ctx.now().saturating_sub(req.started);
        ctx.metrics()
            .record("httpd.response_us", latency.as_micros());
        ctx.metrics().inc(&format!("httpd.status.{status}"), 1);
        ctx.send(req.conn, HttpResponse::build(status, ctype, body));
        ctx.close(req.conn);
    }

    fn handle_http(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, data: &[u8]) {
        self.stats.requests += 1;
        ctx.metrics().inc("httpd.requests", 1);
        let Some(req) = HttpRequest::parse(data) else {
            ctx.send(
                conn,
                HttpResponse::build(400, "text/plain", b"malformed request"),
            );
            ctx.close(conn);
            self.stats.errors += 1;
            return;
        };
        let (route, query) = req.split_query();
        if req.method != "GET" {
            ctx.send(
                conn,
                HttpResponse::build(400, "text/plain", b"only GET is supported"),
            );
            ctx.close(conn);
            self.stats.errors += 1;
            return;
        }
        let (name, kind) = if let Some(name) = route.strip_prefix("/pkg") {
            let file = query
                .and_then(|q| q.strip_prefix("file="))
                .map(|f| f.to_owned());
            (name, ReqKind::Package { file })
        } else if let Some(name) = route.strip_prefix("/catalog") {
            let q = query
                .and_then(|q| q.strip_prefix("q="))
                .map(|q| q.to_owned());
            (name, ReqKind::Catalog { query: q })
        } else if let Some(name) = route.strip_prefix("/mirrors") {
            let region = match query.and_then(|q| q.strip_prefix("region=")) {
                Some(raw) => match raw.parse() {
                    Ok(region) => Some(region),
                    Err(_) => {
                        // A malformed filter must not silently widen to
                        // the full list — the client asked for a slice.
                        ctx.send(
                            conn,
                            HttpResponse::build(400, "text/plain", b"bad region filter"),
                        );
                        ctx.close(conn);
                        self.stats.errors += 1;
                        return;
                    }
                },
                None => None,
            };
            (name, ReqKind::Mirrors { region })
        } else {
            if route == "/index.html" || route == "/" {
                let body = b"<html><body><h1>Globe Distribution Network</h1>\
                    <p>Fetch /pkg/&lt;package-name&gt; for a listing, or \
                    /catalog/&lt;catalog-name&gt; for a package index.</p></body></html>";
                ctx.send(conn, HttpResponse::build(200, "text/html", body));
                ctx.close(conn);
                self.stats.ok += 1;
                return;
            }
            ctx.send(
                conn,
                HttpResponse::build(404, "text/plain", b"unknown route"),
            );
            ctx.close(conn);
            self.stats.errors += 1;
            return;
        };
        let token = self.next_token;
        self.next_token += 1;
        self.requests.insert(
            token,
            PendingReq {
                conn,
                name: name.to_owned(),
                kind,
                oid: None,
                started: ctx.now(),
                attempts: 0,
            },
        );
        // Resolve the embedded object name (paper §4), consulting the
        // local name cache first.
        match self.name_cache.get(name).copied() {
            Some(oid) => {
                self.stats.name_cache_hits += 1;
                if let Some(r) = self.requests.get_mut(&token) {
                    r.oid = Some(oid);
                }
                self.bind_fresh(ctx, oid, token);
                self.drain(ctx);
            }
            None => {
                self.gns.resolve(ctx, name, token);
                self.drain_gns(ctx);
            }
        }
    }

    fn drain_gns(&mut self, ctx: &mut ServiceCtx<'_>) {
        for ev in self.gns.take_events() {
            let GnsEvent::Resolved { token, result, .. } = ev;
            if token == STATS_RESOLVE {
                // The stats object's lazy resolution: on success, chain
                // straight into the bind; on failure (e.g. not yet
                // published), a later fetch retries.
                match result {
                    Ok(oid) => {
                        self.stats_oid = Some(oid);
                        self.runtime
                            .submit_bind(ctx, BindRequest::new(oid, STATS_BIND));
                    }
                    Err(_) => {
                        self.stats_busy = false;
                        ctx.metrics().inc("httpd.stats.resolve_failed", 1);
                    }
                }
                continue;
            }
            match result {
                Ok(oid) => {
                    if let Some(req) = self.requests.get_mut(&token) {
                        req.oid = Some(oid);
                        let name = req.name.clone();
                        self.name_cache.insert(name, oid);
                        self.bind_fresh(ctx, oid, token);
                    }
                }
                Err(GnsError::Dns(_)) => {
                    self.respond(ctx, token, 404, "text/plain", b"no such package");
                }
                Err(e) => {
                    self.respond(ctx, token, 400, "text/plain", e.to_string().as_bytes());
                }
            }
        }
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        // Loop: handling one event may synchronously produce the next
        // (bind hit → invoke → local cache hit → completion).
        loop {
            let events = self.runtime.take_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                self.handle_rt_event(ctx, ev);
            }
        }
    }

    fn handle_rt_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: RtEvent) {
        {
            match ev {
                // Stats-hook completions ride dedicated tokens so they
                // never collide with user requests.
                RtEvent::BindDone { token, result } if token == STATS_BIND => {
                    self.stats_busy = false;
                    match result {
                        Ok(_) => self.flush_stats(ctx),
                        Err(_) => {
                            // Retry from resolution on a later fetch.
                            ctx.metrics().inc("httpd.stats.bind_failed", 1);
                            self.stats_oid = None;
                        }
                    }
                }
                RtEvent::InvokeDone { token, result } if token == STATS_RECORD => match result {
                    Ok(_) => {
                        self.stats.downloads_recorded += 1;
                        ctx.metrics().inc("httpd.stats.recorded", 1);
                    }
                    Err(_) => ctx.metrics().inc("httpd.stats.record_failed", 1),
                },
                RtEvent::BindDone { token, result } => match result {
                    Ok(info) => {
                        let Some(req) = self.requests.get(&token) else {
                            return;
                        };
                        // Typed dispatch: the bind info is checked
                        // against the interface the route implies, and
                        // the typed proxy marshals the invocation.
                        match req.kind.clone() {
                            ReqKind::Package { file } => match info.typed::<PackageInterface>() {
                                Ok(bound) => match file {
                                    Some(name) => bound.invoke(
                                        &mut self.runtime,
                                        ctx,
                                        &PackageInterface::GET_FILE,
                                        &GetFile { name },
                                        token,
                                    ),
                                    None => bound.invoke(
                                        &mut self.runtime,
                                        ctx,
                                        &PackageInterface::LIST_CONTENTS,
                                        &(),
                                        token,
                                    ),
                                },
                                Err(e) => {
                                    self.respond(
                                        ctx,
                                        token,
                                        500,
                                        "text/plain",
                                        e.to_string().as_bytes(),
                                    );
                                }
                            },
                            ReqKind::Catalog { query } => match info.typed::<CatalogInterface>() {
                                Ok(bound) => match query {
                                    Some(term) => bound.invoke(
                                        &mut self.runtime,
                                        ctx,
                                        &CatalogInterface::SEARCH,
                                        &Query { term },
                                        token,
                                    ),
                                    None => bound.invoke(
                                        &mut self.runtime,
                                        ctx,
                                        &CatalogInterface::LIST,
                                        &(),
                                        token,
                                    ),
                                },
                                Err(e) => {
                                    self.respond(
                                        ctx,
                                        token,
                                        500,
                                        "text/plain",
                                        e.to_string().as_bytes(),
                                    );
                                }
                            },
                            ReqKind::Mirrors { region } => {
                                match info.typed::<MirrorListInterface>() {
                                    Ok(bound) => match region {
                                        Some(region) => bound.invoke(
                                            &mut self.runtime,
                                            ctx,
                                            &MirrorListInterface::IN_REGION,
                                            &RegionQuery { region },
                                            token,
                                        ),
                                        None => bound.invoke(
                                            &mut self.runtime,
                                            ctx,
                                            &MirrorListInterface::LIST,
                                            &(),
                                            token,
                                        ),
                                    },
                                    Err(e) => {
                                        self.respond(
                                            ctx,
                                            token,
                                            500,
                                            "text/plain",
                                            e.to_string().as_bytes(),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Err(BindError::NotFound) => {
                        // Stale name cache: the object vanished.
                        if let Some(req) = self.requests.get(&token) {
                            let name = req.name.clone();
                            self.name_cache.remove(&name);
                        }
                        self.respond(ctx, token, 404, "text/plain", b"package not available");
                    }
                    Err(e) => {
                        self.respond(ctx, token, 502, "text/plain", e.to_string().as_bytes());
                    }
                },
                RtEvent::InvokeDone { token, result } => match result {
                    Ok(data) => {
                        let Some(req) = self.requests.get(&token) else {
                            return;
                        };
                        let name = req.name.clone();
                        match req.kind.clone() {
                            ReqKind::Package { file: Some(_) } => {
                                // Typed result, digest-verified end to
                                // end (paper §6.1).
                                match PackageInterface::GET_FILE
                                    .decode_result(&data)
                                    .ok()
                                    .and_then(|blob| blob.verified().ok())
                                {
                                    Some(contents) => {
                                        let bytes = contents.len() as u64;
                                        self.respond(
                                            ctx,
                                            token,
                                            200,
                                            "application/octet-stream",
                                            &contents,
                                        );
                                        self.record_download(ctx, name, bytes);
                                    }
                                    None => {
                                        self.respond(
                                            ctx,
                                            token,
                                            500,
                                            "text/plain",
                                            b"corrupt file payload",
                                        );
                                    }
                                }
                            }
                            ReqKind::Package { file: None } => {
                                match PackageInterface::LIST_CONTENTS.decode_result(&data) {
                                    Ok(listing) => {
                                        let html = render_listing(&name, &listing);
                                        self.respond(ctx, token, 200, "text/html", html.as_bytes());
                                        let bytes = html.len() as u64;
                                        self.record_download(ctx, name, bytes);
                                    }
                                    Err(_) => {
                                        self.respond(
                                            ctx,
                                            token,
                                            500,
                                            "text/plain",
                                            b"corrupt listing",
                                        );
                                    }
                                }
                            }
                            ReqKind::Catalog { query } => {
                                // LIST and SEARCH share their result
                                // type; either decodes here.
                                match CatalogInterface::LIST.decode_result(&data) {
                                    Ok(entries) => {
                                        let html =
                                            render_catalog(&name, query.as_deref(), &entries);
                                        self.respond(ctx, token, 200, "text/html", html.as_bytes());
                                    }
                                    Err(_) => {
                                        self.respond(
                                            ctx,
                                            token,
                                            500,
                                            "text/plain",
                                            b"corrupt catalog",
                                        );
                                    }
                                }
                            }
                            ReqKind::Mirrors { region } => {
                                // LIST and IN_REGION share their result
                                // type; either decodes here.
                                match MirrorListInterface::LIST.decode_result(&data) {
                                    Ok(mirrors) => {
                                        let html = render_mirrors(&name, region, &mirrors);
                                        self.respond(ctx, token, 200, "text/html", html.as_bytes());
                                    }
                                    Err(_) => {
                                        self.respond(
                                            ctx,
                                            token,
                                            500,
                                            "text/plain",
                                            b"corrupt mirror list",
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Err(InvokeError::Sem(msg)) if msg.contains("no file") => {
                        self.respond(ctx, token, 404, "text/plain", msg.as_bytes());
                    }
                    Err(InvokeError::AccessDenied) => {
                        self.respond(ctx, token, 403, "text/plain", b"forbidden");
                    }
                    Err(InvokeError::Timeout) | Err(InvokeError::PeerUnreachable) => {
                        // The replica behind the current binding is
                        // unreachable. Re-bind: the GLS still lists every
                        // replica, and its random pointer descent finds a
                        // different (live) one — the paper's replication-
                        // for-availability put into practice at the
                        // client side.
                        ctx.metrics().inc("httpd.err.replica_unreachable", 1);
                        let retry = match self.requests.get_mut(&token) {
                            Some(req) if req.attempts < 3 => {
                                req.attempts += 1;
                                req.oid
                            }
                            _ => None,
                        };
                        match retry {
                            Some(oid) => {
                                ctx.metrics().inc("httpd.rebinds", 1);
                                self.bind_times.insert(oid.0, ctx.now());
                                self.runtime.rebind(ctx, oid, token);
                            }
                            None => {
                                self.respond(ctx, token, 504, "text/plain", b"replica unreachable");
                            }
                        }
                    }
                    Err(e) => {
                        self.respond(ctx, token, 502, "text/plain", e.to_string().as_bytes());
                    }
                },
                RtEvent::Registered { .. } | RtEvent::Deregistered { .. } => {}
            }
        }
    }
}

/// Escapes `&`, `<` and `>` for interpolation into HTML: names, search
/// terms and descriptions all originate outside the HTTPD (anonymous
/// query strings, moderator uploads) and must not inject markup.
fn escape_html(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a package listing as the paper describes: the contents list
/// "reformatted into HTML".
fn render_listing(name: &str, listing: &[crate::package::FileInfo]) -> String {
    use std::fmt::Write as _;
    let name = escape_html(name);
    let mut html = String::new();
    let _ = write!(
        html,
        "<html><head><title>{name}</title></head><body><h1>{name}</h1><ul>"
    );
    for f in listing {
        let _ = write!(
            html,
            "<li><a href=\"/pkg{name}?file={fname}\">{fname}</a> ({size} bytes)</li>",
            fname = escape_html(&f.name),
            size = f.size
        );
    }
    let _ = write!(html, "</ul></body></html>");
    html
}

/// Renders a catalog index (or search result) as HTML, with each entry
/// linking to its package listing at `/pkg<name>`.
fn render_catalog(name: &str, query: Option<&str>, entries: &[CatalogEntry]) -> String {
    use std::fmt::Write as _;
    let name = escape_html(name);
    let mut html = String::new();
    let _ = write!(
        html,
        "<html><head><title>{name}</title></head><body><h1>{name}</h1>"
    );
    if let Some(q) = query {
        let _ = write!(
            html,
            "<p>{} result(s) for <b>{}</b></p>",
            entries.len(),
            escape_html(q)
        );
    }
    let _ = write!(html, "<ul>");
    for e in entries {
        let _ = write!(
            html,
            "<li><a href=\"/pkg{pkg}\">{pkg}</a> &mdash; {desc}</li>",
            pkg = escape_html(&e.name),
            desc = escape_html(&e.description)
        );
    }
    let _ = write!(html, "</ul></body></html>");
    html
}

/// Renders a mirror list (optionally one region's slice) as HTML.
fn render_mirrors(name: &str, region: Option<u32>, mirrors: &[Mirror]) -> String {
    use std::fmt::Write as _;
    let name = escape_html(name);
    let mut html = String::new();
    let _ = write!(
        html,
        "<html><head><title>{name}</title></head><body><h1>{name}</h1>"
    );
    if let Some(r) = region {
        let _ = write!(html, "<p>{} mirror(s) in region {r}</p>", mirrors.len());
    }
    let _ = write!(html, "<ul>");
    for m in mirrors {
        let _ = write!(
            html,
            "<li><a href=\"{url}\">{url}</a> (region {region}, {bw} Mbit/s)</li>",
            url = escape_html(&m.url),
            region = m.region,
            bw = m.bandwidth_mbps
        );
    }
    let _ = write!(html, "</ul></body></html>");
    html
}

impl Service for GdnHttpd {
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.runtime.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
            return;
        }
        if self.gns.handle_datagram(ctx, from, &payload) {
            self.drain_gns(ctx);
        }
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.runtime.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(ev) => match ev {
                ConnEvent::Msg(data) => self.handle_http(ctx, conn, &data),
                ConnEvent::Closed(_) => {
                    // Drop pending work for a browser that went away.
                    let stale: Vec<u64> = self
                        .requests
                        .iter()
                        .filter(|(_, r)| r.conn == conn)
                        .map(|(&t, _)| t)
                        .collect();
                    for t in stale {
                        self.requests.remove(&t);
                    }
                }
                ConnEvent::Incoming { .. } | ConnEvent::Opened => {}
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.runtime.handle_timer(ctx, token) {
            self.drain(ctx);
            return;
        }
        if self.gns.handle_timer(ctx, token) {
            self.drain_gns(ctx);
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        self.runtime.on_crash();
        self.requests.clear();
        self.name_cache.clear();
        self.bind_times.clear();
        self.stats_oid = None;
        self.stats_pending.clear();
        self.stats_busy = false;
    }

    impl_service_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::FileInfo;

    #[test]
    fn listing_html_contains_links() {
        let listing = vec![
            FileInfo {
                name: "README".into(),
                size: 5,
                digest: [0; 32],
            },
            FileInfo {
                name: "gimp-1.0.tar".into(),
                size: 1_000_000,
                digest: [1; 32],
            },
        ];
        let html = render_listing("/apps/graphics/gimp", &listing);
        assert!(html.contains("<title>/apps/graphics/gimp</title>"));
        assert!(html.contains("href=\"/pkg/apps/graphics/gimp?file=README\""));
        assert!(html.contains("1000000 bytes"));
    }

    #[test]
    fn catalog_html_links_into_packages() {
        let entries = vec![CatalogEntry {
            name: "/apps/graphics/gimp".into(),
            description: "GNU Image Manipulation Program".into(),
        }];
        let html = render_catalog("/catalog/main", None, &entries);
        assert!(html.contains("href=\"/pkg/apps/graphics/gimp\""));
        assert!(html.contains("GNU Image Manipulation Program"));
        assert!(!html.contains("result(s)"));

        let html = render_catalog("/catalog/main", Some("gimp"), &entries);
        assert!(html.contains("1 result(s) for <b>gimp</b>"));
    }

    #[test]
    fn mirrors_html_lists_sites_and_regions() {
        let mirrors = vec![
            Mirror {
                url: "http://ftp.nl/globe".into(),
                region: 0,
                bandwidth_mbps: 100,
            },
            Mirror {
                url: "http://ftp.us/<evil>".into(),
                region: 1,
                bandwidth_mbps: 1000,
            },
        ];
        let html = render_mirrors("/mirrors/main", None, &mirrors);
        assert!(html.contains("<title>/mirrors/main</title>"));
        assert!(html.contains("http://ftp.nl/globe"));
        assert!(html.contains("1000 Mbit/s"));
        assert!(!html.contains("mirror(s) in region"));
        assert!(!html.contains("<evil>"), "{html}");

        let html = render_mirrors("/mirrors/main", Some(1), &mirrors[1..]);
        assert!(html.contains("1 mirror(s) in region 1"));
    }

    #[test]
    fn rendered_html_escapes_untrusted_input() {
        let entries = vec![CatalogEntry {
            name: "/apps/<evil>".into(),
            description: "a </ul><script>alert(1)</script> trick".into(),
        }];
        let html = render_catalog("/catalog/main", Some("<script>x</script>"), &entries);
        assert!(!html.contains("<script>"), "{html}");
        assert!(html.contains("&lt;script&gt;x&lt;/script&gt;"));
        assert!(html.contains("/apps/&lt;evil&gt;"));

        let listing = vec![FileInfo {
            name: "<img src=x>".into(),
            size: 1,
            digest: [0; 32],
        }];
        let html = render_listing("/apps/<evil>", &listing);
        assert!(!html.contains("<img"), "{html}");
        assert!(html.contains("&lt;img src=x&gt;"));
    }
}
