//! The typed DSO interface layer: declare a distributed shared object's
//! interface once, derive everything else.
//!
//! The paper's control subobject (§3.3) is "the typed, marshalling
//! wrapper applications define on top of `Invocation`". Before this
//! module, defining a DSO class meant hand-writing three parallel
//! artifacts that had to agree byte-for-byte: `MethodId` constants, a
//! `kind_of` classification table, and per-method marshalling functions
//! for both the client and the server side. This module collapses all of
//! that into one declaration:
//!
//! - [`WireCodec`] — typed values ↔ wire bytes, with the [`wire_struct!`](crate::wire_struct)
//!   macro deriving field-by-field codecs for argument/result structs;
//! - [`MethodDef`] — one method of an interface, typed over its argument
//!   and result, able to build [`Invocation`] frames and decode results;
//! - [`DsoInterface`] — a class declared as data: name, implementation
//!   id, semantics type and method table, from which the repository's
//!   [`ClassSpec`] (factory + `kind_of`) is derived;
//! - [`dso_interface!`](crate::dso_interface) — the declarative registry: declares the methods
//!   once and generates the `MethodDef` constants, the method table, the
//!   `DsoInterface` impl *and* the server-side
//!   [`SemanticsObject::dispatch`] that unmarshals arguments, calls a
//!   typed handler method, and marshals the result;
//! - [`TypedProxy`] / [`BoundObject`] — the generic control subobject: a
//!   typed handle over a bound object that marshals invocations through
//!   the runtime, replacing callers assembling raw `Invocation`s.
//!
//! See the package and catalog DSOs in `gdn-core` for the two shipped
//! interfaces, and [`crate::runtime::BindRequest`] for the bind flow
//! that produces typed handles.

use std::marker::PhantomData;

use globe_gls::ObjectId;
use globe_net::ServiceCtx;
pub use globe_net::{WireError, WireReader, WireWriter};

use crate::object::{ClassSpec, Invocation, MethodId, MethodKind, SemError, SemanticsObject};
use crate::repository::{ImplId, ImplRepository};
use crate::runtime::GlobeRuntime;

// ------------------------------------------------------------ WireCodec

/// Typed values that marshal to and from the length-prefixed wire
/// format.
///
/// Every method argument and result type of a [`DsoInterface`]
/// implements this; the derived marshalling in [`MethodDef`] and the
/// generated dispatch of [`dso_interface!`](crate::dso_interface) are built on it. Use
/// [`wire_struct!`](crate::wire_struct) to derive an implementation for a struct of codec
/// fields.
pub trait WireCodec: Sized {
    /// Serializes into `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Deserializes from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Serializes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Deserializes an entire buffer (trailing bytes are an error).
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

impl WireCodec for () {
    fn encode(&self, _w: &mut WireWriter) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl WireCodec for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bool(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.bool()
    }
}

macro_rules! int_codec {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl WireCodec for $t {
            fn encode(&self, w: &mut WireWriter) {
                w.$put(*self);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    )*};
}
int_codec! {
    u8 => put_u8/u8,
    u16 => put_u16/u16,
    u32 => put_u32/u32,
    u64 => put_u64/u64,
    u128 => put_u128/u128,
}

impl WireCodec for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.str()?.to_owned())
    }
}

impl WireCodec for [u8; 32] {
    fn encode(&self, w: &mut WireWriter) {
        w.put_raw(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut out = [0u8; 32];
        out.copy_from_slice(r.raw(32)?);
        Ok(out)
    }
}

/// Sequences encode as a `u32` count followed by the elements. For
/// `Vec<u8>` this is byte-identical to the writer's length-prefixed
/// byte strings.
impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        assert!(self.len() <= u32::MAX as usize, "sequence too long");
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.u32()? as usize;
        if n > (64 << 20) {
            return Err(WireError::TooLarge);
        }
        // Cap the pre-allocation: a malicious count must not allocate
        // before the elements actually decode.
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Derives a struct whose [`WireCodec`] encodes the fields in
/// declaration order.
///
/// ```
/// globe_rts::wire_struct! {
///     /// Arguments of `addFile`.
///     pub struct AddFile {
///         /// File name within the package.
///         pub name: String,
///         /// File contents.
///         pub data: Vec<u8>,
///     }
/// }
/// use globe_rts::WireCodec;
/// let args = AddFile { name: "README".into(), data: b"hi".to_vec() };
/// assert_eq!(AddFile::from_bytes(&args.to_bytes()).unwrap(), args);
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($(#[$meta:meta])* pub struct $name:ident {
        $( $(#[$fmeta:meta])* pub $field:ident : $ty:ty ),* $(,)?
    }) => {
        $(#[$meta])*
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct $name {
            $( $(#[$fmeta])* pub $field: $ty, )*
        }

        impl $crate::interface::WireCodec for $name {
            fn encode(&self, w: &mut $crate::interface::WireWriter) {
                $( $crate::interface::WireCodec::encode(&self.$field, w); )*
            }
            fn decode(
                r: &mut $crate::interface::WireReader<'_>,
            ) -> Result<Self, $crate::interface::WireError> {
                Ok($name {
                    $( $field: <$ty as $crate::interface::WireCodec>::decode(r)?, )*
                })
            }
        }
    };
}

// ------------------------------------------------------------- methods

/// One row of an interface's method table (untyped: what the runtime
/// needs for classification and diagnostics).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MethodSpec {
    /// The wire method identifier.
    pub id: MethodId,
    /// Read/write classification (drives replica routing and the §6.1
    /// write-access gate).
    pub kind: MethodKind,
    /// The method's declared name (diagnostics only).
    pub name: &'static str,
    /// Whether re-executing the method is observably equivalent to
    /// executing it once. Drives the client's retry gate: after an
    /// *ambiguous* failure (a timeout — the invocation may already have
    /// executed) only idempotent methods are re-invoked. Reads are
    /// idempotent by definition; writes default to non-idempotent
    /// unless declared `write(idempotent)`.
    pub idempotent: bool,
}

/// One method of a [`DsoInterface`], typed over its argument and result
/// types.
///
/// A `MethodDef` is the whole per-method marshalling story: it builds
/// the opaque [`Invocation`] frame from typed arguments and decodes the
/// marshalled result bytes back into the typed result.
pub struct MethodDef<A, R> {
    id: MethodId,
    kind: MethodKind,
    name: &'static str,
    idempotent: bool,
    _marker: PhantomData<fn(A) -> R>,
}

impl<A: WireCodec, R: WireCodec> MethodDef<A, R> {
    /// Declares a method (normally done by [`dso_interface!`](crate::dso_interface)).
    /// Reads default to idempotent, writes to non-idempotent; override
    /// with [`MethodDef::with_idempotent`].
    pub const fn new(id: MethodId, kind: MethodKind, name: &'static str) -> MethodDef<A, R> {
        MethodDef {
            id,
            kind,
            name,
            idempotent: matches!(kind, MethodKind::Read),
            _marker: PhantomData,
        }
    }

    /// Overrides the idempotency classification (see
    /// [`MethodSpec::idempotent`]).
    pub const fn with_idempotent(self, idempotent: bool) -> MethodDef<A, R> {
        MethodDef { idempotent, ..self }
    }

    /// The wire method identifier.
    pub const fn id(&self) -> MethodId {
        self.id
    }

    /// Read/write classification.
    pub const fn kind(&self) -> MethodKind {
        self.kind
    }

    /// The declared method name.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Whether re-invoking the method after an ambiguous failure is
    /// safe (see [`MethodSpec::idempotent`]).
    pub const fn idempotent(&self) -> bool {
        self.idempotent
    }

    /// The untyped table row.
    pub const fn spec(&self) -> MethodSpec {
        MethodSpec {
            id: self.id,
            kind: self.kind,
            name: self.name,
            idempotent: self.idempotent,
        }
    }

    /// Marshals typed arguments into an opaque invocation frame.
    pub fn invocation(&self, args: &A) -> Invocation {
        Invocation::new(self.id, args.to_bytes())
    }

    /// Unmarshals a completed invocation's result bytes.
    pub fn decode_result(&self, data: &[u8]) -> Result<R, WireError> {
        R::from_bytes(data)
    }

    /// Unmarshals the arguments of an invocation frame (server side;
    /// used by generated dispatch and by tests).
    pub fn decode_args(&self, inv: &Invocation) -> Result<A, WireError> {
        A::from_bytes(&inv.args)
    }
}

// ---------------------------------------------------------- interfaces

/// A DSO class declared as data: everything the runtime and repository
/// need to host, classify and marshal for the class, derived from one
/// method table.
pub trait DsoInterface: Sized + 'static {
    /// The class name registered in the implementation repository.
    const NAME: &'static str;

    /// The class's implementation-repository identifier (carried in GLS
    /// contact addresses so binding peers load the right class).
    const IMPL: ImplId;

    /// The semantics subobject type; `Default` is the blank-instance
    /// factory used when installing replicas.
    type Semantics: SemanticsObject + Default;

    /// The method table.
    fn methods() -> &'static [MethodSpec];

    /// Classifies a method, from the table.
    fn kind_of(m: MethodId) -> Option<MethodKind> {
        Self::methods().iter().find(|s| s.id == m).map(|s| s.kind)
    }

    /// The declared name of a method, from the table.
    fn method_name(m: MethodId) -> Option<&'static str> {
        Self::methods().iter().find(|s| s.id == m).map(|s| s.name)
    }

    /// Whether a method is idempotent, from the table (see
    /// [`MethodSpec::idempotent`]).
    fn idempotent(m: MethodId) -> Option<bool> {
        Self::methods()
            .iter()
            .find(|s| s.id == m)
            .map(|s| s.idempotent)
    }

    /// Derives the repository class descriptor (factory + `kind_of`).
    fn class_spec() -> ClassSpec {
        ClassSpec {
            name: Self::NAME,
            factory: blank_factory::<Self>,
            kind_of: table_kind_of::<Self>,
        }
    }

    /// Registers the class in an implementation repository.
    fn register(repo: &mut ImplRepository) {
        repo.register(Self::IMPL, Self::class_spec());
    }
}

fn blank_factory<I: DsoInterface>() -> Box<dyn SemanticsObject> {
    Box::new(I::Semantics::default())
}

fn table_kind_of<I: DsoInterface>(m: MethodId) -> Option<MethodKind> {
    I::kind_of(m)
}

/// State (de)serialization of a semantics type, used by the generated
/// [`SemanticsObject`] impl for replica state transfer and object-server
/// persistence.
pub trait DsoState {
    /// Serializes the full object state.
    fn save(&self) -> Vec<u8>;

    /// Replaces the object state from a serialized blob.
    fn restore(&mut self, state: &[u8]) -> Result<(), SemError>;

    /// Cheap change marker for the runtime's persistence gate (see
    /// [`SemanticsObject::state_digest`]); defaults to hashing the full
    /// state blob.
    fn digest(&self) -> u64 {
        crate::object::fnv64(&self.save())
    }

    /// Drains the mutation log since the last take/restore, if the
    /// class keeps one (see [`SemanticsObject::take_delta`]).
    fn take_delta(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Applies a delta from `take_delta` to the predecessor state (see
    /// [`SemanticsObject::apply_delta`]).
    fn apply_delta(&mut self, _delta: &[u8]) -> Result<(), SemError> {
        Err(SemError::DeltaUnsupported)
    }

    /// Hands the class the runtime's shared chunk store (see
    /// [`SemanticsObject::attach_chunk_store`]); classes without chunked
    /// state ignore it.
    fn attach_chunks(&mut self, _store: &crate::chunks::ChunkStoreRef) {}

    /// Serializes the state as a skeleton + chunk manifest (see
    /// [`SemanticsObject::save_chunked`]).
    fn save_chunked(&self) -> Option<(Vec<u8>, Vec<crate::chunks::ChunkRef>)> {
        None
    }

    /// Restores the state from a skeleton + chunk manifest (see
    /// [`SemanticsObject::restore_chunked`]).
    fn restore_chunked(
        &mut self,
        _skeleton: &[u8],
        _manifest: &[crate::chunks::ChunkRef],
    ) -> Result<(), SemError> {
        Err(SemError::ChunksUnsupported)
    }
}

/// Declares a DSO interface once and derives the rest.
///
/// One declaration produces:
///
/// - a unit struct implementing [`DsoInterface`] (name, impl id,
///   semantics type, method table);
/// - a typed [`MethodDef`] constant per method, for client-side
///   marshalling through [`TypedProxy`] or directly; a write declared
///   `write(idempotent)` is marked safe to re-invoke after ambiguous
///   failures (see [`MethodSpec::idempotent`]);
/// - the server-side [`SemanticsObject`] impl for the semantics type:
///   generated dispatch unmarshals arguments, calls the semantics
///   type's inherent handler method of the same name (signature
///   `fn method(&mut self, args: Args) -> Result<Ret, SemError>`),
///   marshals the result, and delegates state transfer to [`DsoState`].
///
/// ```
/// use globe_rts::interface::{DsoInterface, DsoState};
/// use globe_rts::{MethodKind, SemError};
///
/// globe_rts::wire_struct! {
///     /// `add` arguments.
///     pub struct Add {
///         /// Amount to add.
///         pub delta: u64,
///     }
/// }
///
/// /// A counter DSO.
/// #[derive(Default)]
/// pub struct Counter(u64);
///
/// impl Counter {
///     fn add(&mut self, args: Add) -> Result<u64, SemError> {
///         self.0 += args.delta;
///         Ok(self.0)
///     }
///     fn get(&mut self, _args: ()) -> Result<u64, SemError> {
///         Ok(self.0)
///     }
///     fn set(&mut self, args: Add) -> Result<u64, SemError> {
///         self.0 = args.delta;
///         Ok(self.0)
///     }
/// }
///
/// impl DsoState for Counter {
///     fn save(&self) -> Vec<u8> {
///         self.0.to_be_bytes().to_vec()
///     }
///     fn restore(&mut self, state: &[u8]) -> Result<(), SemError> {
///         self.0 = u64::from_be_bytes(state.try_into().map_err(|_| SemError::BadState)?);
///         Ok(())
///     }
/// }
///
/// globe_rts::dso_interface! {
///     /// The counter interface.
///     pub interface CounterInterface {
///         class: "counter",
///         impl_id: 1,
///         semantics: Counter,
///         methods: {
///             1 => write ADD/add(Add) -> u64,
///             2 => read GET/get(()) -> u64,
///             3 => write(idempotent) SET/set(Add) -> u64,
///         }
///     }
/// }
///
/// assert_eq!(CounterInterface::kind_of(CounterInterface::ADD.id()), Some(MethodKind::Write));
/// // Reads are idempotent by definition; writes only when declared
/// // `write(idempotent)` — the client's retry gate consumes this.
/// assert!(!CounterInterface::ADD.idempotent());
/// assert!(CounterInterface::GET.idempotent());
/// assert!(CounterInterface::SET.idempotent());
/// let inv = CounterInterface::ADD.invocation(&Add { delta: 4 });
/// use globe_rts::SemanticsObject;
/// let mut c = Counter::default();
/// let result = c.dispatch(&inv).unwrap();
/// assert_eq!(CounterInterface::ADD.decode_result(&result).unwrap(), 4);
/// ```
#[macro_export]
macro_rules! dso_interface {
    ($(#[$meta:meta])* pub interface $iface:ident {
        class: $class:literal,
        impl_id: $impl_id:literal,
        semantics: $sem:ty,
        methods: {
            $( $(#[$mmeta:meta])* $id:literal => $rw:ident $( ( $idem:ident ) )? $CONST:ident / $method:ident ( $args:ty ) -> $ret:ty ),+ $(,)?
        } $(,)?
    }) => {
        $(#[$meta])*
        #[derive(Copy, Clone, Debug)]
        pub struct $iface;

        impl $iface {
            $(
                $(#[$mmeta])*
                pub const $CONST: $crate::interface::MethodDef<$args, $ret> =
                    $crate::interface::MethodDef::new(
                        $crate::object::MethodId($id),
                        $crate::dso_interface!(@kind $rw),
                        stringify!($method),
                    )
                    .with_idempotent($crate::dso_interface!(@idem $rw $( ( $idem ) )?));
            )+

            const METHOD_TABLE: &'static [$crate::interface::MethodSpec] =
                &[ $( Self::$CONST.spec() ),+ ];
        }

        impl $crate::interface::DsoInterface for $iface {
            const NAME: &'static str = $class;
            const IMPL: $crate::repository::ImplId = $crate::repository::ImplId($impl_id);
            type Semantics = $sem;

            fn methods() -> &'static [$crate::interface::MethodSpec] {
                Self::METHOD_TABLE
            }
        }

        impl $crate::object::SemanticsObject for $sem {
            fn dispatch(
                &mut self,
                inv: &$crate::object::Invocation,
            ) -> Result<Vec<u8>, $crate::object::SemError> {
                match inv.method {
                    $(
                        $crate::object::MethodId($id) => {
                            let args = <$args as $crate::interface::WireCodec>::from_bytes(&inv.args)
                                .map_err(|_| $crate::object::SemError::BadArguments)?;
                            let ret: $ret = self.$method(args)?;
                            Ok($crate::interface::WireCodec::to_bytes(&ret))
                        }
                    )+
                    m => Err($crate::object::SemError::NoSuchMethod(m)),
                }
            }

            fn get_state(&self) -> Vec<u8> {
                $crate::interface::DsoState::save(self)
            }

            fn set_state(&mut self, state: &[u8]) -> Result<(), $crate::object::SemError> {
                $crate::interface::DsoState::restore(self, state)
            }

            fn state_digest(&self) -> u64 {
                $crate::interface::DsoState::digest(self)
            }

            fn take_delta(&mut self) -> Option<Vec<u8>> {
                $crate::interface::DsoState::take_delta(self)
            }

            fn apply_delta(&mut self, delta: &[u8]) -> Result<(), $crate::object::SemError> {
                $crate::interface::DsoState::apply_delta(self, delta)
            }

            fn attach_chunk_store(&mut self, store: &$crate::chunks::ChunkStoreRef) {
                $crate::interface::DsoState::attach_chunks(self, store)
            }

            fn save_chunked(&self) -> Option<(Vec<u8>, Vec<$crate::chunks::ChunkRef>)> {
                $crate::interface::DsoState::save_chunked(self)
            }

            fn restore_chunked(
                &mut self,
                skeleton: &[u8],
                manifest: &[$crate::chunks::ChunkRef],
            ) -> Result<(), $crate::object::SemError> {
                $crate::interface::DsoState::restore_chunked(self, skeleton, manifest)
            }
        }
    };

    (@kind read) => { $crate::object::MethodKind::Read };
    (@kind write) => { $crate::object::MethodKind::Write };
    (@idem read) => { true };
    (@idem write) => { false };
    (@idem read (idempotent)) => { true };
    (@idem write (idempotent)) => { true };
}

// --------------------------------------------------------- typed proxy

/// Why a typed handle could not be produced for a bound object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterfaceError {
    /// No local representative is installed for the object.
    NotBound,
    /// The installed representative belongs to a different class than
    /// the requested interface.
    ClassMismatch {
        /// The interface's implementation id.
        expected: ImplId,
        /// The installed representative's implementation id.
        found: ImplId,
    },
}

impl std::fmt::Display for InterfaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterfaceError::NotBound => write!(f, "object not bound"),
            InterfaceError::ClassMismatch { expected, found } => write!(
                f,
                "class mismatch: interface expects implementation {}, object has {}",
                expected.0, found.0
            ),
        }
    }
}

impl std::error::Error for InterfaceError {}

/// The generic control subobject: a typed, copyable handle that marshals
/// invocations on one object through the runtime.
///
/// A proxy is obtained from the bind flow (see
/// [`BindInfo::typed`](crate::runtime::BindInfo::typed) and
/// [`GlobeRuntime::bound`]) so its interface has been checked against
/// the installed local representative's class.
pub struct TypedProxy<I: DsoInterface> {
    oid: ObjectId,
    _marker: PhantomData<fn() -> I>,
}

impl<I: DsoInterface> Clone for TypedProxy<I> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<I: DsoInterface> Copy for TypedProxy<I> {}

impl<I: DsoInterface> std::fmt::Debug for TypedProxy<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypedProxy")
            .field("interface", &I::NAME)
            .field("oid", &self.oid)
            .finish()
    }
}

impl<I: DsoInterface> TypedProxy<I> {
    pub(crate) fn new(oid: ObjectId) -> TypedProxy<I> {
        TypedProxy {
            oid,
            _marker: PhantomData,
        }
    }

    /// The object this proxy marshals for.
    pub fn oid(&self) -> ObjectId {
        self.oid
    }

    /// Marshals `args` for `method` and starts the invocation; completes
    /// with [`RtEvent::InvokeDone`](crate::runtime::RtEvent::InvokeDone)
    /// carrying `token`, whose payload `method.decode_result` unmarshals.
    pub fn invoke<A: WireCodec, R: WireCodec>(
        &self,
        rt: &mut GlobeRuntime,
        ctx: &mut ServiceCtx<'_>,
        method: &MethodDef<A, R>,
        args: &A,
        token: u64,
    ) {
        rt.invoke(ctx, self.oid, method.invocation(args), token);
    }
}

/// A successfully bound object with its typed proxy: what the redesigned
/// bind flow (`BindRequest` → `BindDone` → `BoundObject<I>`) produces.
///
/// Dereferences to its [`TypedProxy`], so invocations go through the
/// bound handle directly.
#[derive(Copy, Clone, Debug)]
pub struct BoundObject<I: DsoInterface> {
    proxy: TypedProxy<I>,
    protocol: u16,
}

impl<I: DsoInterface> BoundObject<I> {
    pub(crate) fn new(oid: ObjectId, protocol: u16) -> BoundObject<I> {
        BoundObject {
            proxy: TypedProxy::new(oid),
            protocol,
        }
    }

    /// The bound object.
    pub fn oid(&self) -> ObjectId {
        self.proxy.oid()
    }

    /// The replication protocol of the installed representative.
    pub fn protocol(&self) -> u16 {
        self.protocol
    }

    /// The typed control subobject.
    pub fn proxy(&self) -> TypedProxy<I> {
        self.proxy
    }
}

impl<I: DsoInterface> std::ops::Deref for BoundObject<I> {
    type Target = TypedProxy<I>;
    fn deref(&self) -> &TypedProxy<I> {
        &self.proxy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_codecs_round_trip() {
        fn rt<T: WireCodec + PartialEq + std::fmt::Debug>(v: T) {
            assert_eq!(T::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        rt(());
        rt(true);
        rt(7u8);
        rt(0x1234u16);
        rt(0xDEAD_BEEFu32);
        rt(u64::MAX);
        rt(u128::MAX / 3);
        rt(String::from("gdn"));
        rt([9u8; 32]);
        rt(vec![1u8, 2, 3]);
        rt(vec![String::from("a"), String::from("bb")]);
        rt(Some(5u64));
        rt(Option::<u64>::None);
    }

    #[test]
    fn vec_u8_codec_matches_length_prefixed_bytes() {
        // Vec<u8> through the generic sequence codec must stay
        // byte-identical to WireWriter::put_bytes, because existing wire
        // formats were defined in terms of the latter.
        let data = vec![1u8, 2, 3, 4, 5];
        let mut w = WireWriter::new();
        w.put_bytes(&data);
        assert_eq!(data.to_bytes(), w.finish());
    }

    #[test]
    fn vec_decode_rejects_absurd_count() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        let buf = w.finish();
        assert_eq!(
            Vec::<u8>::from_bytes(&buf).unwrap_err(),
            WireError::TooLarge
        );
    }

    #[test]
    fn from_bytes_rejects_trailing() {
        let mut buf = 5u32.to_bytes();
        buf.push(0);
        assert_eq!(u32::from_bytes(&buf).unwrap_err(), WireError::TrailingBytes);
    }

    #[test]
    fn interface_error_display() {
        assert!(InterfaceError::NotBound.to_string().contains("not bound"));
        let e = InterfaceError::ClassMismatch {
            expected: ImplId(1),
            found: ImplId(2),
        };
        assert!(e.to_string().contains('1') && e.to_string().contains('2'));
    }
}
