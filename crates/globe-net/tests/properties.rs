//! Property-based tests: the wire format is total and lossless, stream
//! frames survive round-trips and reject every malformed variant, and
//! the topology's tier function is a consistent ultrametric-style
//! hierarchy.

use proptest::prelude::*;

use globe_net::tcp::frame;
use globe_net::wire::{WireError, MAX_FIELD};
use globe_net::{Payload, Tier, Topology, WireReader, WireWriter};

/// Drains a reader with a fixed schedule of every read shape, recording
/// each result as owned data so two decodes can be compared
/// structurally. Deterministic in the input bytes.
fn decode_all(buf: &[u8]) -> Vec<Result<Vec<u8>, WireError>> {
    let mut r = WireReader::new(buf);
    vec![
        r.u8().map(|v| vec![v]),
        r.u16().map(|v| v.to_be_bytes().to_vec()),
        r.u32().map(|v| v.to_be_bytes().to_vec()),
        r.u64().map(|v| v.to_be_bytes().to_vec()),
        r.bytes().map(<[u8]>::to_vec),
        r.str().map(|s| s.as_bytes().to_vec()),
        r.raw(3).map(<[u8]>::to_vec),
        r.expect_end().map(|()| Vec::new()),
    ]
}

proptest! {
    /// Everything written is read back identically, in order.
    #[test]
    fn wire_round_trip(
        u8s in prop::collection::vec(any::<u8>(), 0..8),
        u32s in prop::collection::vec(any::<u32>(), 0..8),
        u64s in prop::collection::vec(any::<u64>(), 0..8),
        bytes in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
        strings in prop::collection::vec("[a-z0-9/._-]{0,32}", 0..8),
    ) {
        let mut w = WireWriter::new();
        for &v in &u8s { w.put_u8(v); }
        for &v in &u32s { w.put_u32(v); }
        for &v in &u64s { w.put_u64(v); }
        for b in &bytes { w.put_bytes(b); }
        for s in &strings { w.put_str(s); }
        let buf = w.finish();

        let mut r = WireReader::new(&buf);
        for &v in &u8s { prop_assert_eq!(r.u8().unwrap(), v); }
        for &v in &u32s { prop_assert_eq!(r.u32().unwrap(), v); }
        for &v in &u64s { prop_assert_eq!(r.u64().unwrap(), v); }
        for b in &bytes { prop_assert_eq!(r.bytes().unwrap(), b.as_slice()); }
        for s in &strings { prop_assert_eq!(r.str().unwrap(), s.as_str()); }
        prop_assert!(r.expect_end().is_ok());
    }

    /// Decoding arbitrary garbage never panics (totality): it either
    /// yields values or errors.
    #[test]
    fn wire_reader_is_total(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut r = WireReader::new(&garbage);
        // Exercise every read shape; all must return (not panic).
        let _ = r.u8();
        let _ = r.u16();
        let _ = r.u32();
        let _ = r.u64();
        let _ = r.u128();
        let _ = r.bytes();
        let _ = r.str();
        let _ = r.expect_end();
    }

    /// A framed message ([`frame`]: `u32` length prefix + payload, the
    /// encoding real TCP peers speak) is exactly the wire format's
    /// length-prefixed byte string, and round-trips losslessly.
    #[test]
    fn framed_messages_round_trip(msg in prop::collection::vec(any::<u8>(), 0..512)) {
        let buf = frame(&msg);
        prop_assert_eq!(buf.len(), 4 + msg.len());
        let mut r = WireReader::new(&buf);
        prop_assert_eq!(r.bytes().unwrap(), msg.as_slice());
        prop_assert!(r.expect_end().is_ok());
    }

    /// Every strict prefix of a framed message — truncation at *each*
    /// byte boundary — is rejected as `Truncated`, whether the cut
    /// lands inside the length prefix or inside the payload.
    #[test]
    fn truncated_frames_rejected_byte_by_byte(
        msg in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        let buf = frame(&msg);
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            prop_assert!(
                r.bytes() == Err(WireError::Truncated),
                "cut at byte {} of {} decoded",
                cut,
                buf.len()
            );
        }
    }

    /// A length prefix past the 64 MiB sanity cap is rejected as
    /// `TooLarge` before any allocation, however much data follows.
    #[test]
    fn oversized_frames_rejected(
        over in (MAX_FIELD + 1)..u32::MAX,
        tail in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut w = WireWriter::new();
        w.put_u32(over);
        w.put_raw(&tail);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        prop_assert_eq!(r.bytes().unwrap_err(), WireError::TooLarge);
    }

    /// A stream of concatenated frames truncated at an arbitrary byte
    /// yields exactly the frames that are fully contained, then a
    /// `Truncated` error for the partial one — never a panic, never a
    /// phantom frame. This is the stream-reassembly contract
    /// `TcpTransport::extract_frames` relies on.
    #[test]
    fn frame_streams_recover_only_complete_frames(
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..6),
        cut_frac in 0u32..1000,
    ) {
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&frame(m));
            boundaries.push(stream.len());
        }
        let cut = (stream.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();

        let mut r = WireReader::new(&stream[..cut]);
        for m in msgs.iter().take(complete) {
            prop_assert_eq!(r.bytes().unwrap(), m.as_slice());
        }
        if complete < msgs.len() {
            prop_assert_eq!(r.bytes().unwrap_err(), WireError::Truncated);
        } else {
            prop_assert!(r.expect_end().is_ok());
        }
    }

    /// Decoding arbitrary garbage as a frame is total and
    /// deterministic: the same bytes give the same verdict every time,
    /// a success consumes exactly the announced length, and an error is
    /// one of the two malformed-frame classes.
    #[test]
    fn garbage_frames_error_deterministically(
        garbage in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut a = WireReader::new(&garbage);
        let first = a.bytes().map(<[u8]>::to_vec);
        let consumed = garbage.len() - a.remaining();
        let mut b = WireReader::new(&garbage);
        let second = b.bytes().map(<[u8]>::to_vec);
        prop_assert_eq!(&first, &second);
        match first {
            Ok(body) => prop_assert_eq!(consumed, 4 + body.len()),
            Err(e) => prop_assert!(
                matches!(e, WireError::Truncated | WireError::TooLarge),
                "unexpected frame error {e:?}"
            ),
        }
    }

    /// Decoding through a borrowed [`Payload`] window (the zero-copy
    /// frame-extraction path) gives exactly the same results as
    /// decoding an owned `Vec` copy of the same bytes — on *arbitrary*
    /// input, successes and errors alike. This is the contract that
    /// lets `TcpTransport::extract_frames` hand out sub-windows of one
    /// receive chunk instead of copying every frame out.
    #[test]
    fn borrowed_window_decode_equals_owned_decode(
        prefix in prop::collection::vec(any::<u8>(), 0..16),
        body in prop::collection::vec(any::<u8>(), 0..96),
        suffix in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        // The interesting bytes sit mid-buffer, so the Payload window
        // has a nonzero start offset like a real extracted frame.
        let mut chunk = prefix.clone();
        chunk.extend_from_slice(&body);
        chunk.extend_from_slice(&suffix);
        let chunk = Payload::from(chunk);
        let window = chunk.slice(prefix.len(), prefix.len() + body.len());
        prop_assert_eq!(window.as_slice(), body.as_slice());

        let owned: Vec<u8> = body.clone();
        prop_assert_eq!(decode_all(&window), decode_all(&owned));

        // The window really is borrowed: no bytes moved.
        if !body.is_empty() {
            prop_assert_eq!(
                window.as_slice().as_ptr(),
                chunk.as_slice()[prefix.len()..].as_ptr()
            );
        }
    }

    /// The tier relation is symmetric, reflexive at Loopback, and
    /// "ultrametric": tier(a,c) <= max(tier(a,b), tier(b,c)).
    #[test]
    fn topology_tiers_form_hierarchy(
        regions in 1u32..3, countries in 1u32..3, sites in 1u32..3, hosts in 1u32..3,
        seed: u64,
    ) {
        let topo = Topology::grid(regions, countries, sites, hosts);
        let n = topo.num_hosts() as u32;
        let mut rng = globe_sim::Rng::new(seed);
        for _ in 0..20 {
            let a = globe_net::HostId(rng.gen_range(0..n as u64) as u32);
            let b = globe_net::HostId(rng.gen_range(0..n as u64) as u32);
            let c = globe_net::HostId(rng.gen_range(0..n as u64) as u32);
            prop_assert_eq!(topo.tier_between(a, a), Tier::Loopback);
            prop_assert_eq!(topo.tier_between(a, b), topo.tier_between(b, a));
            let ab = topo.tier_between(a, b).distance();
            let bc = topo.tier_between(b, c).distance();
            let ac = topo.tier_between(a, c).distance();
            prop_assert!(ac <= ab.max(bc), "ultrametric violated: {ac} > max({ab},{bc})");
        }
    }
}
