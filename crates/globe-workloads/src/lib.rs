//! Workload synthesis and policy machinery for the GDN experiments.
//!
//! The paper's quantitative backing is a trace study
//! ([Pierre et al. 1999]) showing that per-document replication
//! scenarios beat any uniform scenario. That trace is not available, so
//! this crate generates the accepted synthetic equivalent and the
//! machinery to replay it against a live simulated GDN:
//!
//! - [`zipf`] — skewed popularity sampling;
//! - [`catalog`] — a synthetic package population (popularity ranks,
//!   update-rate classes, home regions, file sizes);
//! - [`policy`] — uniform baseline scenario assignments and the
//!   per-object adaptive assignment (experiment E3);
//! - [`gens`] — open-loop HTTP request generators and authenticated
//!   update generators, with windowed latency statistics;
//! - [`adapt`] — the run-time adaptation controller that grows an
//!   object's replica set when a region's demand spikes
//!   (experiment E7).

pub mod adapt;
pub mod catalog;
pub mod gens;
pub mod policy;
pub mod zipf;

pub use adapt::{AdaptiveController, ManagedObject};
pub use catalog::{generate, gos_by_region, publish_ops, CatalogEntry, CatalogSpec};
pub use gens::{window_stats, HttpLoadGen, Sample, UpdateGen, WindowStats};
pub use policy::{scenario_for, ObjectProfile, ScenarioPolicy};
pub use zipf::ZipfSampler;
