//! The replication protocols shipped with the runtime.
//!
//! The paper (§7) ships client/server and master/slave; §3.3 sketches
//! active replication and lazy (cache-style) replication as the kind of
//! variety the standard interface must accommodate. All four are here,
//! each a [`ReplicationSubobject`] attachable to any object class:
//!
//! | protocol | local state | reads | writes |
//! |---|---|---|---|
//! | [`ForwardingProxy`] | none | forwarded | forwarded |
//! | [`ServerReplica`] | full | local | local |
//! | [`MasterReplica`] | full | local | local + propagate |
//! | [`SlaveReplica`] | full | local (when valid) | forwarded to master |
//! | [`CacheProxy`] | cached copy | local while TTL fresh | forwarded |

use std::collections::{BTreeMap, BTreeSet};

use globe_net::Endpoint;
use globe_sim::SimDuration;

use crate::grp::{protocol_id, GrpBody, PropagationMode, RoleSpec};
use crate::object::{Invocation, MethodKind};
use crate::replication::{InvokeError, Peer, ReplCtx, ReplicationSubobject};

/// Default timeout for a forwarded invocation.
const FORWARD_TIMEOUT: SimDuration = SimDuration::from_secs(10);

/// A waiter for state to arrive: a local invocation or a remote read.
#[derive(Debug)]
enum Waiter {
    Local {
        token: u64,
        inv: Invocation,
    },
    Remote {
        from: Peer,
        req: u64,
        inv: Invocation,
    },
}

/// Client-side proxy: no local state, forwards reads to the nearest
/// replica and writes to the write-capable replica.
///
/// This is the whole client side of the paper's client/server protocol,
/// and doubles as the pure-client representative for master/slave and
/// active objects. It keeps the *entire* distance-sorted replica list
/// from binding and fails over to the next replica when the current one
/// becomes unreachable — replication as an availability technique
/// (paper §6.1, experiment E8).
pub struct ForwardingProxy {
    proto: u16,
    /// Read replicas, nearest first; `read_idx` selects the current one.
    read_targets: Vec<Endpoint>,
    read_idx: usize,
    write_target: Endpoint,
    pending: BTreeMap<u64, u64>,
    next_req: u64,
}

impl ForwardingProxy {
    /// Creates a proxy for an object speaking `proto`. `read_targets`
    /// must be sorted nearest-first and nonempty.
    ///
    /// # Panics
    ///
    /// Panics if `read_targets` is empty.
    pub fn new(proto: u16, read_targets: Vec<Endpoint>, write_target: Endpoint) -> ForwardingProxy {
        assert!(!read_targets.is_empty(), "proxy needs a read target");
        ForwardingProxy {
            proto,
            read_targets,
            read_idx: 0,
            write_target,
            pending: BTreeMap::new(),
            next_req: 1,
        }
    }

    fn read_target(&self) -> Endpoint {
        self.read_targets[self.read_idx % self.read_targets.len()]
    }
}

impl ReplicationSubobject for ForwardingProxy {
    fn proto(&self) -> u16 {
        self.proto
    }
    fn accepts_writes(&self) -> bool {
        false
    }
    fn is_replica(&self) -> bool {
        false
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Standalone
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        let target = match c.kind_of(inv.method) {
            MethodKind::Read => self.read_target(),
            MethodKind::Write => self.write_target,
        };
        let req = self.next_req;
        self.next_req += 1;
        self.pending.insert(req, token);
        c.send(Peer::Addr(target), GrpBody::Invoke { req, inv });
        c.set_timer(FORWARD_TIMEOUT, req);
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, _from: Peer, body: GrpBody) {
        if let GrpBody::InvokeResult { req, ok, data } = body {
            if let Some(token) = self.pending.remove(&req) {
                let result = if ok {
                    Ok(data)
                } else {
                    Err(decode_error(&data))
                };
                c.complete(token, result);
            }
        }
    }

    fn on_timer(&mut self, c: &mut ReplCtx<'_>, subtoken: u64) {
        if let Some(token) = self.pending.remove(&subtoken) {
            c.complete(token, Err(InvokeError::Timeout));
        }
    }

    fn on_peer_gone(&mut self, c: &mut ReplCtx<'_>, peer: Endpoint) {
        if peer == self.read_target() || peer == self.write_target {
            for (_, token) in std::mem::take(&mut self.pending) {
                c.complete(token, Err(InvokeError::PeerUnreachable));
            }
        }
        // Fail over: subsequent reads go to the next-nearest replica.
        if peer == self.read_target() && self.read_targets.len() > 1 {
            self.read_idx = (self.read_idx + 1) % self.read_targets.len();
        }
    }
}

/// Encodes an invocation failure for the wire.
pub(crate) fn encode_error(e: &InvokeError) -> Vec<u8> {
    e.to_string().into_bytes()
}

fn decode_error(data: &[u8]) -> InvokeError {
    let msg = String::from_utf8_lossy(data);
    if msg.contains("denied") {
        InvokeError::AccessDenied
    } else {
        InvokeError::Sem(msg.into_owned())
    }
}

/// The single server of a client/server object: executes everything
/// locally and answers forwarded invocations.
///
/// The advertised protocol is the *scenario's*, not the server's own:
/// a standalone server behind `CACHE_TTL` tells clients to install
/// cache proxies, behind `CLIENT_SERVER` plain forwarding proxies.
pub struct ServerReplica {
    proto: u16,
}

impl ServerReplica {
    /// Creates the server-side subobject advertising `proto`.
    pub fn new(proto: u16) -> ServerReplica {
        ServerReplica { proto }
    }
}

/// Executes an invocation at a full replica, bumping the version on
/// writes; shared by every server-side protocol.
fn exec_at_replica(c: &mut ReplCtx<'_>, inv: &Invocation) -> Result<Vec<u8>, InvokeError> {
    let kind = c.kind_of(inv.method);
    let result = c.exec(inv);
    if kind == MethodKind::Write && result.is_ok() {
        c.bump_version();
    } else if kind == MethodKind::Read {
        c.record_read_freshness();
    }
    result
}

impl ReplicationSubobject for ServerReplica {
    fn proto(&self) -> u16 {
        self.proto
    }
    fn accepts_writes(&self) -> bool {
        true
    }
    fn is_replica(&self) -> bool {
        true
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Standalone
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        let result = exec_at_replica(c, &inv);
        c.complete(token, result);
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, from: Peer, body: GrpBody) {
        match body {
            GrpBody::Invoke { req, inv } => {
                let result = exec_at_replica(c, &inv);
                let (ok, data) = match result {
                    Ok(d) => (true, d),
                    Err(e) => (false, encode_error(&e)),
                };
                c.send(from, GrpBody::InvokeResult { req, ok, data });
            }
            GrpBody::GetState { req } => {
                let state = c.state();
                let version = c.version();
                c.send(
                    from,
                    GrpBody::State {
                        req,
                        version,
                        state,
                    },
                );
            }
            _ => {}
        }
    }
}

/// The master of a master/slave or active object: executes writes,
/// bumps the version and propagates to slaves according to the
/// [`PropagationMode`].
pub struct MasterReplica {
    proto: u16,
    mode: PropagationMode,
    slaves: BTreeSet<Endpoint>,
}

impl MasterReplica {
    /// Creates a master advertising `proto` and propagating in `mode`
    /// (`proto` is the scenario's protocol: clients of a `CACHE_TTL`
    /// object install cache proxies even though replication between the
    /// servers is master/slave).
    pub fn new(proto: u16, mode: PropagationMode) -> MasterReplica {
        MasterReplica {
            proto,
            mode,
            slaves: BTreeSet::new(),
        }
    }

    /// The currently known slaves (tests / experiments).
    pub fn slaves(&self) -> &BTreeSet<Endpoint> {
        &self.slaves
    }

    fn propagate(&mut self, c: &mut ReplCtx<'_>, inv: &Invocation, version: u64) {
        for &slave in &self.slaves {
            let body = match self.mode {
                PropagationMode::PushState => GrpBody::Update {
                    version,
                    state: c.state(),
                },
                PropagationMode::Invalidate => GrpBody::Invalidate { version },
                PropagationMode::ApplyOps => GrpBody::Apply {
                    version,
                    inv: inv.clone(),
                },
            };
            c.send(Peer::Addr(slave), body);
        }
    }

    fn exec_and_propagate(
        &mut self,
        c: &mut ReplCtx<'_>,
        inv: &Invocation,
    ) -> Result<Vec<u8>, InvokeError> {
        let kind = c.kind_of(inv.method);
        let result = c.exec(inv);
        if kind == MethodKind::Write && result.is_ok() {
            let v = c.bump_version();
            self.propagate(c, inv, v);
        } else if kind == MethodKind::Read {
            c.record_read_freshness();
        }
        result
    }
}

impl ReplicationSubobject for MasterReplica {
    fn proto(&self) -> u16 {
        self.proto
    }
    fn accepts_writes(&self) -> bool {
        true
    }
    fn is_replica(&self) -> bool {
        true
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Master { mode: self.mode }
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        let result = self.exec_and_propagate(c, &inv);
        c.complete(token, result);
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, from: Peer, body: GrpBody) {
        match body {
            GrpBody::Invoke { req, inv } => {
                let result = self.exec_and_propagate(c, &inv);
                let (ok, data) = match result {
                    Ok(d) => (true, d),
                    Err(e) => (false, encode_error(&e)),
                };
                c.send(from, GrpBody::InvokeResult { req, ok, data });
            }
            GrpBody::GetState { req } => {
                let state = c.state();
                let version = c.version();
                c.send(
                    from,
                    GrpBody::State {
                        req,
                        version,
                        state,
                    },
                );
            }
            GrpBody::Hello { grp } => {
                // New slave: remember it and ship the current state so it
                // starts warm.
                self.slaves.insert(grp);
                let state = c.state();
                let version = c.version();
                c.send(Peer::Addr(grp), GrpBody::Update { version, state });
            }
            _ => {}
        }
    }

    fn on_peer_gone(&mut self, _c: &mut ReplCtx<'_>, peer: Endpoint) {
        self.slaves.remove(&peer);
    }
}

/// Where a forwarded write originated, so the result can be routed
/// back.
#[derive(Debug)]
enum WriteOrigin {
    /// A local invocation (completes with this token).
    Local(u64),
    /// A write chained from a remote proxy: reply on `from` echoing
    /// `req`. Chaining is how writes reach the master when the GLS
    /// handed the client only its nearest (slave) replica.
    Remote { from: Peer, req: u64 },
}

/// A slave replica: serves reads locally while its copy is valid,
/// forwards writes to the master (both its own and those chained from
/// proxies), refetches state after invalidations.
pub struct SlaveReplica {
    proto: u16,
    master: Endpoint,
    valid: bool,
    waiting: Vec<Waiter>,
    fetch_in_flight: bool,
    pending_writes: BTreeMap<u64, WriteOrigin>,
    next_req: u64,
}

impl SlaveReplica {
    /// Creates a slave attached to `master` for protocol `proto`
    /// (master/slave or active).
    pub fn new(proto: u16, master: Endpoint) -> SlaveReplica {
        SlaveReplica {
            proto,
            master,
            valid: false,
            waiting: Vec::new(),
            fetch_in_flight: false,
            pending_writes: BTreeMap::new(),
            next_req: 1,
        }
    }

    /// Whether the local copy is currently valid (tests).
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    fn ensure_fetch(&mut self, c: &mut ReplCtx<'_>) {
        if !self.fetch_in_flight {
            self.fetch_in_flight = true;
            let req = self.next_req;
            self.next_req += 1;
            c.send(Peer::Addr(self.master), GrpBody::GetState { req });
        }
    }

    fn drain_waiters(&mut self, c: &mut ReplCtx<'_>) {
        for w in std::mem::take(&mut self.waiting) {
            match w {
                Waiter::Local { token, inv } => {
                    c.record_read_freshness();
                    let result = c.exec(&inv);
                    c.complete(token, result);
                }
                Waiter::Remote { from, req, inv } => {
                    c.record_read_freshness();
                    let (ok, data) = match c.exec(&inv) {
                        Ok(d) => (true, d),
                        Err(e) => (false, encode_error(&e)),
                    };
                    c.send(from, GrpBody::InvokeResult { req, ok, data });
                }
            }
        }
    }
}

impl ReplicationSubobject for SlaveReplica {
    fn proto(&self) -> u16 {
        self.proto
    }
    fn accepts_writes(&self) -> bool {
        false
    }
    fn is_replica(&self) -> bool {
        true
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Slave {
            master: self.master,
        }
    }

    fn on_install(&mut self, c: &mut ReplCtx<'_>) {
        // Announce to the master; it responds with the current state.
        let me = c.my_grp();
        c.send(Peer::Addr(self.master), GrpBody::Hello { grp: me });
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        match c.kind_of(inv.method) {
            MethodKind::Read => {
                if self.valid {
                    c.record_read_freshness();
                    let result = c.exec(&inv);
                    c.complete(token, result);
                } else {
                    self.waiting.push(Waiter::Local { token, inv });
                    self.ensure_fetch(c);
                }
            }
            MethodKind::Write => {
                let req = self.next_req;
                self.next_req += 1;
                self.pending_writes.insert(req, WriteOrigin::Local(token));
                c.send(Peer::Addr(self.master), GrpBody::Invoke { req, inv });
                c.set_timer(FORWARD_TIMEOUT, req);
            }
        }
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, from: Peer, body: GrpBody) {
        match body {
            GrpBody::Invoke { req, inv } => match c.kind_of(inv.method) {
                MethodKind::Read => {
                    if self.valid {
                        c.record_read_freshness();
                        let (ok, data) = match c.exec(&inv) {
                            Ok(d) => (true, d),
                            Err(e) => (false, encode_error(&e)),
                        };
                        c.send(from, GrpBody::InvokeResult { req, ok, data });
                    } else {
                        self.waiting.push(Waiter::Remote { from, req, inv });
                        self.ensure_fetch(c);
                    }
                }
                MethodKind::Write => {
                    // Chain the write to the master: the proxy only knows
                    // its nearest replica (the GLS resolves to the
                    // nearest contact address), so slaves relay.
                    let fwd = self.next_req;
                    self.next_req += 1;
                    self.pending_writes
                        .insert(fwd, WriteOrigin::Remote { from, req });
                    c.send(Peer::Addr(self.master), GrpBody::Invoke { req: fwd, inv });
                    c.set_timer(FORWARD_TIMEOUT, fwd);
                }
            },
            GrpBody::Update { version, state } => {
                if version >= c.version() && c.install_state(version, &state).is_ok() {
                    self.valid = true;
                    self.fetch_in_flight = false;
                    self.drain_waiters(c);
                }
            }
            GrpBody::Apply { version, inv } => {
                // Active replication: re-execute the write locally.
                if version == c.version() + 1 {
                    let _ = c.exec(&inv);
                    c.bump_version();
                    self.valid = true;
                } else if version > c.version() {
                    // Missed an operation (e.g. installed mid-stream):
                    // fall back to a state fetch.
                    self.valid = false;
                    self.ensure_fetch(c);
                }
            }
            GrpBody::Invalidate { version } => {
                if version > c.version() {
                    self.valid = false;
                }
            }
            GrpBody::State { version, state, .. } => {
                self.fetch_in_flight = false;
                if version >= c.version() && c.install_state(version, &state).is_ok() {
                    self.valid = true;
                    self.drain_waiters(c);
                }
            }
            GrpBody::InvokeResult { req, ok, data } => match self.pending_writes.remove(&req) {
                Some(WriteOrigin::Local(token)) => {
                    let result = if ok {
                        Ok(data)
                    } else {
                        Err(decode_error(&data))
                    };
                    c.complete(token, result);
                }
                Some(WriteOrigin::Remote { from, req }) => {
                    c.send(from, GrpBody::InvokeResult { req, ok, data });
                }
                None => {}
            },
            GrpBody::GetState { req } => {
                // Serve whatever we have; the version lets the requester
                // judge freshness.
                let state = c.state();
                let version = c.version();
                c.send(
                    from,
                    GrpBody::State {
                        req,
                        version,
                        state,
                    },
                );
            }
            GrpBody::Hello { .. } => {}
        }
    }

    fn on_timer(&mut self, c: &mut ReplCtx<'_>, subtoken: u64) {
        match self.pending_writes.remove(&subtoken) {
            Some(WriteOrigin::Local(token)) => {
                c.complete(token, Err(InvokeError::Timeout));
            }
            Some(WriteOrigin::Remote { from, req }) => {
                c.send(
                    from,
                    GrpBody::InvokeResult {
                        req,
                        ok: false,
                        data: b"master timed out".to_vec(),
                    },
                );
            }
            None => {}
        }
    }

    fn on_peer_gone(&mut self, c: &mut ReplCtx<'_>, peer: Endpoint) {
        if peer == self.master {
            self.fetch_in_flight = false;
            for (_, origin) in std::mem::take(&mut self.pending_writes) {
                match origin {
                    WriteOrigin::Local(token) => {
                        c.complete(token, Err(InvokeError::PeerUnreachable));
                    }
                    WriteOrigin::Remote { from, req } => {
                        c.send(
                            from,
                            GrpBody::InvokeResult {
                                req,
                                ok: false,
                                data: b"master unreachable".to_vec(),
                            },
                        );
                    }
                }
            }
            for w in std::mem::take(&mut self.waiting) {
                if let Waiter::Local { token, .. } = w {
                    c.complete(token, Err(InvokeError::PeerUnreachable));
                }
            }
        }
    }
}

/// A caching proxy: keeps a full copy with a time-to-live, serving
/// reads locally while fresh — the paper's "lazy replication" and the
/// web-cache baseline of experiment E3.
pub struct CacheProxy {
    server: Endpoint,
    ttl: SimDuration,
    expires: Option<globe_sim::SimTime>,
    waiting: Vec<Waiter>,
    fetch_in_flight: bool,
    pending_writes: BTreeMap<u64, u64>,
    next_req: u64,
}

impl CacheProxy {
    /// Creates a cache over `server` with the given TTL.
    pub fn new(server: Endpoint, ttl: SimDuration) -> CacheProxy {
        CacheProxy {
            server,
            ttl,
            expires: None,
            waiting: Vec::new(),
            fetch_in_flight: false,
            pending_writes: BTreeMap::new(),
            next_req: 1,
        }
    }

    fn fresh(&self, now: globe_sim::SimTime) -> bool {
        self.expires.map(|e| e > now).unwrap_or(false)
    }

    fn ensure_fetch(&mut self, c: &mut ReplCtx<'_>) {
        if !self.fetch_in_flight {
            self.fetch_in_flight = true;
            let req = self.next_req;
            self.next_req += 1;
            c.send(Peer::Addr(self.server), GrpBody::GetState { req });
        }
    }
}

impl ReplicationSubobject for CacheProxy {
    fn proto(&self) -> u16 {
        protocol_id::CACHE_TTL
    }
    fn accepts_writes(&self) -> bool {
        false
    }
    fn is_replica(&self) -> bool {
        false
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Standalone
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        match c.kind_of(inv.method) {
            MethodKind::Read => {
                if self.fresh(c.now()) {
                    c.record_read_freshness();
                    c.metrics_cache_hit();
                    let result = c.exec(&inv);
                    c.complete(token, result);
                } else {
                    c.metrics_cache_miss();
                    self.waiting.push(Waiter::Local { token, inv });
                    self.ensure_fetch(c);
                }
            }
            MethodKind::Write => {
                let req = self.next_req;
                self.next_req += 1;
                self.pending_writes.insert(req, token);
                c.send(Peer::Addr(self.server), GrpBody::Invoke { req, inv });
                c.set_timer(FORWARD_TIMEOUT, req);
            }
        }
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, _from: Peer, body: GrpBody) {
        match body {
            GrpBody::State { version, state, .. } => {
                self.fetch_in_flight = false;
                if c.install_state(version, &state).is_ok() {
                    self.expires = Some(c.now() + self.ttl);
                    for w in std::mem::take(&mut self.waiting) {
                        if let Waiter::Local { token, inv } = w {
                            c.record_read_freshness();
                            let result = c.exec(&inv);
                            c.complete(token, result);
                        }
                    }
                }
            }
            GrpBody::InvokeResult { req, ok, data } => {
                if let Some(token) = self.pending_writes.remove(&req) {
                    // Read-your-writes: drop the cached copy so the next
                    // read refetches.
                    self.expires = None;
                    let result = if ok {
                        Ok(data)
                    } else {
                        Err(decode_error(&data))
                    };
                    c.complete(token, result);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, c: &mut ReplCtx<'_>, subtoken: u64) {
        if let Some(token) = self.pending_writes.remove(&subtoken) {
            c.complete(token, Err(InvokeError::Timeout));
        }
    }

    fn on_peer_gone(&mut self, c: &mut ReplCtx<'_>, peer: Endpoint) {
        if peer == self.server {
            self.fetch_in_flight = false;
            for (_, token) in std::mem::take(&mut self.pending_writes) {
                c.complete(token, Err(InvokeError::PeerUnreachable));
            }
            for w in std::mem::take(&mut self.waiting) {
                if let Waiter::Local { token, .. } = w {
                    c.complete(token, Err(InvokeError::PeerUnreachable));
                }
            }
        }
    }
}

impl ReplCtx<'_> {
    /// Counts a cache hit (CacheProxy bookkeeping).
    pub(crate) fn metrics_cache_hit(&mut self) {
        self.effects.cache_hits += 1;
    }

    /// Counts a cache miss.
    pub(crate) fn metrics_cache_miss(&mut self) {
        self.effects.cache_misses += 1;
    }
}
