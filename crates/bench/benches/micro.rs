//! Criterion micro-benchmarks of the substrate hot paths: the
//! cryptographic primitives behind gTLS (experiment E5's cost model is
//! calibrated against 1990s hardware; these numbers document what the
//! *host* machine actually does), wire-format round trips, GLS routing
//! and simulation-kernel primitives.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use globe_crypto::cert::{CertAuthority, Credentials, Role};
use globe_crypto::chacha20::chacha20_xor;
use globe_crypto::gtls::{Mode, TlsConfig, TlsSession};
use globe_crypto::hmac::hmac_sha256;
use globe_crypto::sha256::sha256;
use globe_crypto::sig::{keygen_from_seed, sign, verify};
use globe_gls::{ContactAddress, ObjectId};
use globe_net::{Endpoint, HostId};
use globe_sim::{Histogram, Rng};
use globe_workloads::ZipfSampler;

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    for size in [1usize << 10, 64 << 10] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}"), |b| b.iter(|| sha256(&data)));
        g.bench_function(format!("hmac_sha256/{size}"), |b| {
            b.iter(|| hmac_sha256(b"key", &data))
        });
    }
    g.finish();
}

fn bench_cipher(c: &mut Criterion) {
    let mut g = c.benchmark_group("cipher");
    let size = 64usize << 10;
    g.throughput(Throughput::Bytes(size as u64));
    g.bench_function("chacha20/65536", |b| {
        b.iter_batched(
            || vec![0u8; size],
            |mut data| chacha20_xor(&[7u8; 32], &[1u8; 12], 0, &mut data),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let (sk, pk) = keygen_from_seed(1);
    let msg = b"create replica of /apps/graphics/gimp";
    let sig = sign(&sk, msg);
    c.bench_function("schnorr/sign", |b| b.iter(|| sign(&sk, msg)));
    c.bench_function("schnorr/verify", |b| b.iter(|| verify(&pk, msg, &sig)));
}

fn bench_gtls_handshake(c: &mut Criterion) {
    let ca = CertAuthority::new("bench-root", 1);
    let server = Credentials::issue(&ca, "gos", Role::Host, 2);
    let client = Credentials::issue(&ca, "mod", Role::Moderator, 3);
    let roots = vec![ca.root_cert().clone()];
    c.bench_function("gtls/mutual_handshake", |b| {
        b.iter(|| {
            let mut rng = Rng::new(9);
            let (mut cs, hello) = TlsSession::client(
                TlsConfig::mutual(Mode::AuthEncrypt, client.clone(), roots.clone()),
                &mut rng,
            )
            .expect("client");
            let mut ss = TlsSession::server(TlsConfig::mutual(
                Mode::AuthEncrypt,
                server.clone(),
                roots.clone(),
            ));
            let out = ss.on_message(&hello, &mut rng).expect("sh");
            let out = cs.on_message(&out.replies[0], &mut rng).expect("cf");
            ss.on_message(&out.replies[0], &mut rng).expect("fin")
        })
    });
}

fn bench_gtls_records(c: &mut Criterion) {
    let ca = CertAuthority::new("bench-root", 1);
    let server = Credentials::issue(&ca, "gos", Role::Host, 2);
    let roots = vec![ca.root_cert().clone()];
    let mut g = c.benchmark_group("gtls_record");
    for mode in [Mode::Null, Mode::AuthOnly, Mode::AuthEncrypt] {
        let mut rng = Rng::new(9);
        let (mut cs, hello) =
            TlsSession::client(TlsConfig::client(mode, roots.clone()), &mut rng).expect("client");
        let mut ss = if mode == Mode::Null {
            TlsSession::server(TlsConfig::null())
        } else {
            TlsSession::server(TlsConfig::server_auth(mode, server.clone(), roots.clone()))
        };
        let out = ss.on_message(&hello, &mut rng).expect("sh");
        let out = cs
            .on_message(&out.replies[0], &mut rng)
            .expect("established");
        for reply in out.replies {
            ss.on_message(&reply, &mut rng).expect("cf");
        }
        let payload = vec![0u8; 16 << 10];
        g.throughput(Throughput::Bytes(payload.len() as u64));
        g.bench_function(format!("seal/{}", mode.name()), |b| {
            b.iter(|| cs.seal(&payload).expect("seal"))
        });
    }
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    use globe_gls::proto::GlsMsg;
    let msg = GlsMsg::LookupResp {
        req: 7,
        status: globe_gls::proto::Status::Ok,
        addrs: vec![
            ContactAddress::new(Endpoint::new(HostId(1), 700), 2, 1),
            ContactAddress::new(Endpoint::new(HostId(9), 700), 2, 0),
        ],
        hops: 4,
    };
    let encoded = msg.encode();
    c.bench_function("wire/gls_encode", |b| b.iter(|| msg.encode()));
    c.bench_function("wire/gls_decode", |b| {
        b.iter(|| GlsMsg::decode(&encoded).expect("decode"))
    });
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel/zipf_sample", |b| {
        let z = ZipfSampler::new(10_000, 0.9);
        let mut rng = Rng::new(4);
        b.iter(|| z.sample(&mut rng))
    });
    c.bench_function("kernel/histogram_record", |b| {
        let mut h = Histogram::new();
        let mut rng = Rng::new(5);
        b.iter(|| h.record(rng.gen_range(1..1_000_000)))
    });
    c.bench_function("kernel/oid_subnode_index", |b| {
        let oid = ObjectId(0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF);
        b.iter(|| oid.subnode_index(8))
    });
}

criterion_group!(
    benches,
    bench_hashing,
    bench_cipher,
    bench_signatures,
    bench_gtls_handshake,
    bench_gtls_records,
    bench_wire,
    bench_kernel
);
criterion_main!(benches);
