//! Deterministic-schedule fuzzing under the bench runner: every seed
//! from the environment (`GLOBE_FUZZ_SEEDS` / `GLOBE_FUZZ_SEED`, see
//! `globe_bench::fuzz`) runs a randomized fault schedule and is judged
//! by the global consistency auditor. CI's `fuzz-smoke` job runs this
//! per push; `fuzz-deep` runs it nightly at hundreds of seeds.

fn main() {
    globe_bench::fuzz_main();
}
