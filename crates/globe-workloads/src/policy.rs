//! Replication-scenario assignment policies.
//!
//! The heart of the paper's argument (§3.1): no single replication
//! scenario fits every object; each object should get one matched to its
//! own popularity and update pattern, as the cited case study
//! [Pierre et al. 1999] found for web documents. These policies assign
//! scenarios uniformly (the baselines) or per object (the paper's
//! position), and experiment E3 compares them.
//!
//! Orthogonal to the *placement* policy is how an eager-push scenario
//! propagates its writes: whole states ([`PropagationMode::PushState`])
//! or per-write deltas ([`PropagationMode::PushDelta`]). The profile
//! carries that choice so the scenario sweep (`globe-bench`'s `sweep`
//! module) can run the full policy × propagation-mode matrix.

use gdn_core::Scenario;
use globe_net::Endpoint;
use globe_rts::PropagationMode;

/// Per-object inputs to the assignment decision.
///
/// The per-object policy uses these the way Pierre et al.'s trace-driven
/// selection uses per-document access statistics — here the synthetic
/// catalog's ground truth plays the role of the analyzed trace.
#[derive(Clone, Debug)]
pub struct ObjectProfile {
    /// Popularity rank (0 = hottest).
    pub rank: usize,
    /// Mean updates per simulated hour.
    pub updates_per_hour: f64,
    /// The region the object is published from.
    pub home_region: usize,
    /// How eager-push scenarios assigned to this object propagate
    /// writes (`PushState` or `PushDelta`) — the sweep's second axis.
    pub push_mode: PropagationMode,
}

impl ObjectProfile {
    /// Builds a profile that propagates eager pushes as full states
    /// (the pre-delta default); override with [`ObjectProfile::with_mode`].
    pub fn new(rank: usize, updates_per_hour: f64, home_region: usize) -> ObjectProfile {
        ObjectProfile {
            rank,
            updates_per_hour,
            home_region,
            push_mode: PropagationMode::PushState,
        }
    }

    /// Sets the propagation mode eager-push assignments use.
    pub fn with_mode(mut self, mode: PropagationMode) -> ObjectProfile {
        self.push_mode = mode;
        self
    }
}

/// A scenario-assignment policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ScenarioPolicy {
    /// Every object on one server at its home site (no replication —
    /// the anonymous-FTP baseline).
    Central,
    /// Every object cached at clients with a TTL (the web-proxy
    /// baseline).
    UniformCache,
    /// Every object replicated into every region, master/slave with
    /// eager push (the mirror-everything baseline).
    ReplicateAll,
    /// Per-object choice (the paper's position): hot + stable objects
    /// replicate everywhere; hot + volatile use invalidation (or delta
    /// push) replicas; cold objects stay central or cached.
    PerObject,
}

impl ScenarioPolicy {
    /// All policies, in the order experiment tables report them.
    pub const ALL: [ScenarioPolicy; 4] = [
        ScenarioPolicy::Central,
        ScenarioPolicy::UniformCache,
        ScenarioPolicy::ReplicateAll,
        ScenarioPolicy::PerObject,
    ];

    /// Short name for report rows.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioPolicy::Central => "central",
            ScenarioPolicy::UniformCache => "cache-ttl",
            ScenarioPolicy::ReplicateAll => "replicate-all",
            ScenarioPolicy::PerObject => "per-object",
        }
    }
}

/// Rank threshold below which an object counts as "hot" for the
/// per-object policy (Zipf mass concentrates in the first few ranks).
const HOT_RANK: usize = 10;
/// Update-rate threshold (per hour) above which replicas stop eagerly
/// shipping whole states.
const VOLATILE_UPDATES: f64 = 2.0;

/// Assigns a scenario to one object under `policy`.
///
/// `gos_by_region[r]` lists the object servers of region `r` (first =
/// regional primary). The home region's primary hosts the master.
/// Eager-push assignments propagate in the profile's
/// [`push_mode`](ObjectProfile::push_mode).
///
/// # Panics
///
/// Panics if the home region has no object server.
pub fn scenario_for(
    policy: ScenarioPolicy,
    profile: &ObjectProfile,
    gos_by_region: &[Vec<Endpoint>],
) -> Scenario {
    let home = gos_by_region[profile.home_region]
        .first()
        .copied()
        .expect("home region must have an object server");
    let everywhere = || {
        let mut replicas = vec![home];
        for (r, list) in gos_by_region.iter().enumerate() {
            if r != profile.home_region {
                if let Some(&ep) = list.first() {
                    replicas.push(ep);
                }
            }
        }
        replicas
    };
    match policy {
        ScenarioPolicy::Central => Scenario::single(home),
        ScenarioPolicy::UniformCache => Scenario::cached(home),
        ScenarioPolicy::ReplicateAll => Scenario::master_slave(everywhere(), profile.push_mode),
        ScenarioPolicy::PerObject => {
            let hot = profile.rank < HOT_RANK;
            let volatile = profile.updates_per_hour > VOLATILE_UPDATES;
            match (hot, volatile) {
                // Hot and stable: regional replicas feeding client
                // caches — repeats are local, fills stay in-region.
                (true, false) => Scenario::cached_replicated(everywhere(), profile.push_mode),
                // Hot but changing: replicas everywhere. Delta push or
                // operation shipping keep them fresh at
                // near-invalidation cost; a full-state push would ship
                // whole states the next write obsoletes, so that mode
                // degrades to invalidation here.
                (true, true) => {
                    let mode = match profile.push_mode {
                        PropagationMode::PushState => PropagationMode::Invalidate,
                        other => other,
                    };
                    Scenario::master_slave(everywhere(), mode)
                }
                // Cold and stable: client caches suffice.
                (false, false) => Scenario::cached(home),
                // Cold and changing: not worth replicating at all.
                (false, true) => Scenario::single(home),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_net::HostId;
    use globe_rts::protocol_id;

    fn gos() -> Vec<Vec<Endpoint>> {
        vec![
            vec![Endpoint::new(HostId(0), 700)],
            vec![Endpoint::new(HostId(10), 700)],
        ]
    }

    fn profile(rank: usize, upd: f64) -> ObjectProfile {
        ObjectProfile::new(rank, upd, 0)
    }

    #[test]
    fn uniform_policies_ignore_profile() {
        let g = gos();
        for p in [profile(0, 100.0), profile(999, 0.0)] {
            assert_eq!(
                scenario_for(ScenarioPolicy::Central, &p, &g).replicas.len(),
                1
            );
            assert_eq!(
                scenario_for(ScenarioPolicy::UniformCache, &p, &g).protocol,
                protocol_id::CACHE_TTL
            );
            assert_eq!(
                scenario_for(ScenarioPolicy::ReplicateAll, &p, &g)
                    .replicas
                    .len(),
                2
            );
        }
    }

    #[test]
    fn per_object_differentiates() {
        let g = gos();
        let hot_stable = scenario_for(ScenarioPolicy::PerObject, &profile(0, 0.1), &g);
        assert_eq!(hot_stable.replicas.len(), 2);
        assert_eq!(hot_stable.mode, PropagationMode::PushState);

        let hot_volatile = scenario_for(ScenarioPolicy::PerObject, &profile(0, 50.0), &g);
        assert_eq!(hot_volatile.mode, PropagationMode::Invalidate);

        let cold_stable = scenario_for(ScenarioPolicy::PerObject, &profile(40, 0.1), &g);
        assert_eq!(cold_stable.protocol, protocol_id::CACHE_TTL);

        let cold_volatile = scenario_for(ScenarioPolicy::PerObject, &profile(40, 50.0), &g);
        assert_eq!(cold_volatile.protocol, protocol_id::CLIENT_SERVER);
        assert_eq!(cold_volatile.replicas.len(), 1);
    }

    #[test]
    fn push_mode_reaches_eager_assignments() {
        let g = gos();
        let delta = |rank, upd| profile(rank, upd).with_mode(PropagationMode::PushDelta);

        // The uniform eager-push baseline honors the mode verbatim.
        let s = scenario_for(ScenarioPolicy::ReplicateAll, &delta(0, 0.1), &g);
        assert_eq!(s.mode, PropagationMode::PushDelta);

        // Hot + stable replicated caches push deltas between replicas.
        let s = scenario_for(ScenarioPolicy::PerObject, &delta(0, 0.1), &g);
        assert_eq!(s.mode, PropagationMode::PushDelta);

        // Hot + volatile: delta push replaces invalidation when asked.
        let s = scenario_for(ScenarioPolicy::PerObject, &delta(0, 50.0), &g);
        assert_eq!(s.mode, PropagationMode::PushDelta);
        assert_eq!(s.protocol, protocol_id::MASTER_SLAVE);

        // Unreplicated assignments are unaffected by the mode axis.
        let s = scenario_for(ScenarioPolicy::Central, &delta(40, 50.0), &g);
        assert_eq!(s.replicas.len(), 1);
    }

    #[test]
    fn invalidate_and_apply_ops_reach_eager_assignments() {
        let g = gos();
        for mode in [PropagationMode::Invalidate, PropagationMode::ApplyOps] {
            // The uniform eager-push baseline honors the mode verbatim.
            let s = scenario_for(
                ScenarioPolicy::ReplicateAll,
                &profile(0, 0.1).with_mode(mode),
                &g,
            );
            assert_eq!(s.mode, mode);

            // Hot + volatile replicas propagate in the asked-for mode
            // (only the full-state push degrades to invalidation).
            let s = scenario_for(
                ScenarioPolicy::PerObject,
                &profile(0, 50.0).with_mode(mode),
                &g,
            );
            assert_eq!(s.mode, mode);
            assert_eq!(s.protocol, protocol_id::MASTER_SLAVE);

            // Unreplicated assignments stay unaffected by the axis.
            let s = scenario_for(
                ScenarioPolicy::Central,
                &profile(40, 50.0).with_mode(mode),
                &g,
            );
            assert_eq!(s.replicas.len(), 1);
        }
    }

    #[test]
    fn master_is_home_region_primary() {
        let g = gos();
        let p = ObjectProfile::new(0, 0.0, 1);
        let s = scenario_for(ScenarioPolicy::ReplicateAll, &p, &g);
        assert_eq!(s.replicas[0].host, HostId(10));
    }
}
