//! The Globe Name Service layer: deployment planning and the
//! name-resolution client.
//!
//! Ties the DNS substrate together into the paper's §5 architecture:
//!
//! - a DNS hierarchy (`.` → `glb.` → `gdn.glb.`) with the *GDN Zone* as
//!   a single leaf domain holding every package name;
//! - one caching resolver per site;
//! - one primary + N secondary authoritative servers for the GDN Zone
//!   ("we can distribute the load by creating multiple authoritative
//!   name servers");
//! - the Naming Authority accepting moderator updates.
//!
//! [`GnsClient`] performs the user-visible operation: Globe object name
//! → DNS name (zone prefixing, §5) → TXT record → object identifier.

use std::fmt;

use globe_crypto::cert::{CertAuthority, Credentials, Role};
use globe_crypto::gtls::{Mode, TlsConfig};
use globe_gls::ObjectId;
use globe_net::{ports, Endpoint, HostId, ServiceCtx, Topology, Transport};
use globe_sim::SimDuration;

use crate::authority::{txt_to_oid, NamingAuthority};
use crate::client::{DnsError, DnsEvent, DnsStub};
use crate::name::{DnsName, GlobeName, NameError};
use crate::records::{RData, RecordType, ResourceRecord, Zone};
use crate::resolver::Resolver;
use crate::server::AuthServer;

/// Port caching resolvers listen on (authoritative servers own 53).
pub const RESOLVER_PORT: u16 = 5353;

/// GNS deployment configuration.
#[derive(Clone, Debug)]
pub struct GnsConfig {
    /// Secondary authoritative servers for the GDN Zone (total servers
    /// is `1 + gdn_secondaries`).
    pub gdn_secondaries: u32,
    /// TTL of name→OID TXT records, seconds. The paper's scalability
    /// argument (§5) rests on these mappings being stable, hence long
    /// TTLs; experiment E6 sweeps this.
    pub record_ttl: u32,
    /// Negative-caching TTL of the GDN Zone.
    pub negative_ttl: u32,
    /// How long the Naming Authority batches updates before flushing
    /// (zero flushes immediately).
    pub batch_interval: SimDuration,
    /// Channel protection for moderator↔authority traffic. The paper
    /// uses TLS (confidentiality included); experiments compare modes.
    pub tls_mode: Mode,
}

impl Default for GnsConfig {
    fn default() -> Self {
        GnsConfig {
            gdn_secondaries: 2,
            record_ttl: 3_600,
            negative_ttl: 60,
            batch_interval: SimDuration::from_secs(5),
            tls_mode: Mode::AuthEncrypt,
        }
    }
}

/// Where every GNS component lives.
#[derive(Clone, Debug)]
pub struct GnsDeployment {
    /// The GDN Zone origin (`gdn.glb.`).
    pub zone: DnsName,
    /// Root DNS servers (hints for every resolver).
    pub root_servers: Vec<Endpoint>,
    /// The `glb.` TLD server.
    pub tld_server: Endpoint,
    /// Primary authoritative server for the GDN Zone (receives UPDATEs).
    pub gdn_primary: Endpoint,
    /// Secondary authoritative servers for the GDN Zone.
    pub gdn_secondaries: Vec<Endpoint>,
    /// Caching resolver of each site, indexed by site id.
    pub resolvers: Vec<Endpoint>,
    /// The Naming Authority endpoint.
    pub naming_authority: Endpoint,
    /// TSIG key name shared by the authority and the GDN Zone servers.
    pub tsig_key_name: String,
}

impl GnsDeployment {
    /// Plans component placement over `topo`.
    ///
    /// The root and TLD servers and the Naming Authority sit at the
    /// first host; GDN Zone servers spread across countries so that the
    /// "multiple authoritative name servers" actually buy geographic
    /// load distribution; every site's first host runs the site
    /// resolver.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no hosts.
    pub fn plan(topo: &Topology, cfg: &GnsConfig) -> GnsDeployment {
        assert!(topo.num_hosts() > 0, "topology has no hosts");
        let zone = DnsName::parse("gdn.glb").expect("constant zone name");
        let first_host_of_site = |s| topo.hosts_in_site(s).first().copied().unwrap_or(HostId(0));
        // Spread GDN servers over countries: candidate pool visits every
        // country's hosts in round-robin order, skipping hosts already
        // serving DNS (the root/TLD server at host 0) while possible.
        let mut pool: Vec<HostId> = Vec::new();
        let country_hosts: Vec<Vec<HostId>> = topo
            .countries()
            .map(|c| {
                topo.sites()
                    .filter(|&s| topo.country_of(s) == c)
                    .flat_map(|s| topo.hosts_in_site(s).iter().copied())
                    .collect()
            })
            .collect();
        let deepest = country_hosts.iter().map(Vec::len).max().unwrap_or(0);
        for depth in 0..deepest {
            for hosts in &country_hosts {
                if let Some(&h) = hosts.get(depth) {
                    pool.push(h);
                }
            }
        }
        let n_servers = 1 + cfg.gdn_secondaries as usize;
        let mut used = std::collections::BTreeSet::new();
        used.insert(HostId(0)); // root/TLD server
        let mut gdn_hosts: Vec<HostId> = pool
            .iter()
            .copied()
            .filter(|h| used.insert(*h))
            .take(n_servers)
            .collect();
        // Degenerate topologies: fall back to reuse (install merges the
        // zones of co-located servers into one daemon).
        let mut i = 0;
        while gdn_hosts.len() < n_servers {
            gdn_hosts.push(pool.get(i).copied().unwrap_or(HostId(0)));
            i += 1;
        }
        let resolvers: Vec<Endpoint> = topo
            .sites()
            .map(|s| Endpoint::new(first_host_of_site(s), RESOLVER_PORT))
            .collect();
        GnsDeployment {
            zone,
            root_servers: vec![Endpoint::new(HostId(0), ports::DNS)],
            tld_server: Endpoint::new(HostId(0), ports::DNS),
            gdn_primary: Endpoint::new(gdn_hosts[0], ports::DNS),
            gdn_secondaries: gdn_hosts[1..]
                .iter()
                .map(|&h| Endpoint::new(h, ports::DNS))
                .collect(),
            resolvers,
            naming_authority: Endpoint::new(HostId(0), ports::GNS_NA),
            tsig_key_name: "gdn-na-key".to_owned(),
        }
    }

    /// All authoritative servers for the GDN Zone (primary first).
    pub fn gdn_servers(&self) -> Vec<Endpoint> {
        let mut v = vec![self.gdn_primary];
        v.extend(self.gdn_secondaries.iter().copied());
        v
    }

    /// The caching resolver serving `host`.
    pub fn resolver_for(&self, topo: &Topology, host: HostId) -> Endpoint {
        self.resolvers[topo.site_of(host).0 as usize]
    }

    /// Installs every GNS service into the transport (the simulated
    /// world or a real-socket process).
    ///
    /// `ca` issues the Naming Authority's host certificate; the TSIG
    /// secret is derived from `secret_seed` and shared between the
    /// authority and the GDN Zone servers.
    pub fn install(
        &self,
        world: &mut dyn Transport,
        ca: &CertAuthority,
        cfg: &GnsConfig,
        secret_seed: u64,
    ) {
        let tsig_secret = format!("tsig-{secret_seed:016x}").into_bytes();
        let glb = DnsName::parse("glb").expect("constant name");

        // Root zone: delegate glb. to the TLD server.
        let mut root_zone = Zone::new(DnsName::root(), cfg.negative_ttl);
        let ns_glb = DnsName::parse("ns.glb").expect("constant name");
        root_zone.add(ResourceRecord::new(
            glb.clone(),
            cfg.record_ttl,
            RData::Ns(ns_glb.clone()),
        ));
        root_zone.add(ResourceRecord::new(
            ns_glb.clone(),
            cfg.record_ttl,
            RData::A(self.tld_server.host),
        ));

        // glb. zone: delegate gdn.glb. to primary + secondaries.
        let mut glb_zone = Zone::new(glb.clone(), cfg.negative_ttl);
        for (i, server) in self.gdn_servers().iter().enumerate() {
            let ns_name = DnsName::parse(&format!("ns{i}.gdn.glb")).expect("constant pattern");
            glb_zone.add(ResourceRecord::new(
                self.zone.clone(),
                cfg.record_ttl,
                RData::Ns(ns_name.clone()),
            ));
            glb_zone.add(ResourceRecord::new(
                ns_name,
                cfg.record_ttl,
                RData::A(server.host),
            ));
        }

        // Group zones by host: like real DNS, one daemon per (host,
        // port 53) may serve several zones. Root + TLD share host 0; in
        // degenerate topologies GDN Zone servers may co-locate with it.
        let mut per_host: std::collections::BTreeMap<u32, AuthServer> =
            std::collections::BTreeMap::new();
        per_host.insert(
            self.tld_server.host.0,
            AuthServer::new().with_zone(root_zone).with_zone(glb_zone),
        );
        let mut seen_gdn = std::collections::BTreeSet::new();
        for (i, server) in self.gdn_servers().iter().enumerate() {
            if !seen_gdn.insert(server.host.0) {
                continue; // zone already hosted by this daemon
            }
            let zone = Zone::new(self.zone.clone(), cfg.negative_ttl);
            let mut auth = per_host
                .remove(&server.host.0)
                .unwrap_or_default()
                .with_zone(zone)
                .with_tsig_key(&self.tsig_key_name, tsig_secret.clone());
            if i == 0 {
                // Replicate only to secondaries on *other* hosts.
                let secs: Vec<Endpoint> = self
                    .gdn_secondaries
                    .iter()
                    .copied()
                    .filter(|s| s.host != server.host)
                    .collect();
                auth = auth.with_secondaries(&self.zone, secs);
            }
            per_host.insert(server.host.0, auth);
        }
        for (host, auth) in per_host {
            world.add_service(HostId(host), ports::DNS, auth);
        }

        // Site resolvers.
        for ep in &self.resolvers {
            world.add_service(ep.host, ep.port, Resolver::new(self.root_servers.clone()));
        }

        // Naming Authority.
        let creds = Credentials::issue(ca, "gns-na", Role::Host, secret_seed ^ 0x4E41);
        let tls = TlsConfig::mutual(cfg.tls_mode, creds, vec![ca.root_cert().clone()]);
        let mut na = NamingAuthority::new(
            tls,
            self.zone.clone(),
            self.gdn_primary,
            &self.tsig_key_name,
            tsig_secret,
            cfg.record_ttl,
            cfg.batch_interval,
        );
        if cfg.tls_mode == Mode::Null {
            // The paper's unsecured first version: no role checks.
            na = na.with_open_access();
        }
        world.add_service(self.naming_authority.host, self.naming_authority.port, na);
    }

    /// The TSIG secret derived from `secret_seed` (for tests that need
    /// to forge or verify updates out of band).
    pub fn tsig_secret(secret_seed: u64) -> Vec<u8> {
        format!("tsig-{secret_seed:016x}").into_bytes()
    }
}

/// Errors from Globe-name resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GnsError {
    /// The name is syntactically invalid.
    Name(NameError),
    /// DNS resolution failed.
    Dns(DnsError),
    /// The TXT record did not contain a well-formed object id.
    BadRecord,
}

impl fmt::Display for GnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnsError::Name(e) => write!(f, "invalid name: {e}"),
            GnsError::Dns(e) => write!(f, "resolution failed: {e}"),
            GnsError::BadRecord => write!(f, "malformed GNS record"),
        }
    }
}

impl std::error::Error for GnsError {}

/// Completion events from [`GnsClient::take_events`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GnsEvent {
    /// A name resolution finished.
    Resolved {
        /// Caller-chosen correlation token.
        token: u64,
        /// The object id bound to the name, or why resolution failed.
        result: Result<ObjectId, GnsError>,
        /// End-to-end latency.
        latency: SimDuration,
    },
}

/// Client-side Globe name resolution (name → object id).
///
/// Embeds a [`DnsStub`] pointed at the host's site resolver and applies
/// the GDN Zone prefixing of paper §5, so callers deal only in
/// user-visible names like `/apps/graphics/gimp`.
pub struct GnsClient {
    stub: DnsStub,
    zone: DnsName,
    /// Synchronously detected failures waiting to be surfaced.
    errors: Vec<(u64, GnsError)>,
}

impl GnsClient {
    /// Creates a client for a service on `host`, resolving under
    /// `deploy`'s GDN Zone via the site resolver.
    pub fn new(deploy: &GnsDeployment, topo: &Topology, host: HostId, ns: u16) -> GnsClient {
        GnsClient {
            stub: DnsStub::new(deploy.resolver_for(topo, host), ns),
            zone: deploy.zone.clone(),
            errors: Vec::new(),
        }
    }

    /// Starts resolving a Globe object name; completion arrives as
    /// [`GnsEvent::Resolved`] with `token`.
    ///
    /// Syntactically invalid names complete immediately (the error is
    /// queued and surfaced by the next [`GnsClient::take_events`] call).
    pub fn resolve(&mut self, ctx: &mut ServiceCtx<'_>, name: &str, token: u64) {
        let dns = GlobeName::parse(name).and_then(|g| g.to_dns(&self.zone));
        match dns {
            Ok(dns_name) => self.stub.query(ctx, dns_name, RecordType::Txt, token),
            Err(e) => self.errors.push((token, GnsError::Name(e))),
        }
    }

    /// Routes an inbound datagram; `true` if consumed.
    pub fn handle_datagram(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Endpoint,
        payload: &[u8],
    ) -> bool {
        self.stub.handle_datagram(ctx, from, payload)
    }

    /// Routes a timer; `true` if consumed.
    pub fn handle_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) -> bool {
        self.stub.handle_timer(ctx, token)
    }

    /// Drains completion events.
    pub fn take_events(&mut self) -> Vec<GnsEvent> {
        let mut out: Vec<GnsEvent> = self
            .errors
            .drain(..)
            .map(|(token, e)| GnsEvent::Resolved {
                token,
                result: Err(e),
                latency: SimDuration::ZERO,
            })
            .collect();
        for ev in self.stub.take_events() {
            let DnsEvent::Answer {
                token,
                result,
                latency,
            } = ev;
            let result = match result {
                Ok(rrs) => {
                    let oid = rrs.iter().find_map(|rr| match &rr.data {
                        RData::Txt(t) => txt_to_oid(t),
                        _ => None,
                    });
                    oid.ok_or(GnsError::BadRecord)
                }
                Err(e) => Err(GnsError::Dns(e)),
            };
            out.push(GnsEvent::Resolved {
                token,
                result,
                latency,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_sane() {
        let c = GnsConfig::default();
        assert!(c.record_ttl >= 60);
        assert!(c.gdn_secondaries >= 1);
    }

    #[test]
    fn plan_places_components() {
        let topo = Topology::grid(2, 2, 2, 2);
        let d = GnsDeployment::plan(&topo, &GnsConfig::default());
        assert_eq!(d.resolvers.len(), topo.num_sites());
        assert_eq!(d.gdn_servers().len(), 3);
        // Secondaries spread beyond the primary's country.
        assert_ne!(d.gdn_primary.host, d.gdn_secondaries[0].host);
        // Every host's resolver is in its own site.
        for h in topo.hosts() {
            let r = d.resolver_for(&topo, h);
            assert_eq!(topo.site_of(r.host), topo.site_of(h));
        }
    }

    #[test]
    fn gns_error_display() {
        assert!(GnsError::BadRecord.to_string().contains("malformed"));
        assert!(GnsError::Dns(DnsError::Timeout)
            .to_string()
            .contains("respond"));
    }
}
