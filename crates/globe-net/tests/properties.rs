//! Property-based tests: the wire format is total and lossless, and the
//! topology's tier function is a consistent ultrametric-style hierarchy.

use proptest::prelude::*;

use globe_net::{Tier, Topology, WireReader, WireWriter};

proptest! {
    /// Everything written is read back identically, in order.
    #[test]
    fn wire_round_trip(
        u8s in prop::collection::vec(any::<u8>(), 0..8),
        u32s in prop::collection::vec(any::<u32>(), 0..8),
        u64s in prop::collection::vec(any::<u64>(), 0..8),
        bytes in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
        strings in prop::collection::vec("[a-z0-9/._-]{0,32}", 0..8),
    ) {
        let mut w = WireWriter::new();
        for &v in &u8s { w.put_u8(v); }
        for &v in &u32s { w.put_u32(v); }
        for &v in &u64s { w.put_u64(v); }
        for b in &bytes { w.put_bytes(b); }
        for s in &strings { w.put_str(s); }
        let buf = w.finish();

        let mut r = WireReader::new(&buf);
        for &v in &u8s { prop_assert_eq!(r.u8().unwrap(), v); }
        for &v in &u32s { prop_assert_eq!(r.u32().unwrap(), v); }
        for &v in &u64s { prop_assert_eq!(r.u64().unwrap(), v); }
        for b in &bytes { prop_assert_eq!(r.bytes().unwrap(), b.as_slice()); }
        for s in &strings { prop_assert_eq!(r.str().unwrap(), s.as_str()); }
        prop_assert!(r.expect_end().is_ok());
    }

    /// Decoding arbitrary garbage never panics (totality): it either
    /// yields values or errors.
    #[test]
    fn wire_reader_is_total(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut r = WireReader::new(&garbage);
        // Exercise every read shape; all must return (not panic).
        let _ = r.u8();
        let _ = r.u16();
        let _ = r.u32();
        let _ = r.u64();
        let _ = r.u128();
        let _ = r.bytes();
        let _ = r.str();
        let _ = r.expect_end();
    }

    /// The tier relation is symmetric, reflexive at Loopback, and
    /// "ultrametric": tier(a,c) <= max(tier(a,b), tier(b,c)).
    #[test]
    fn topology_tiers_form_hierarchy(
        regions in 1u32..3, countries in 1u32..3, sites in 1u32..3, hosts in 1u32..3,
        seed: u64,
    ) {
        let topo = Topology::grid(regions, countries, sites, hosts);
        let n = topo.num_hosts() as u32;
        let mut rng = globe_sim::Rng::new(seed);
        for _ in 0..20 {
            let a = globe_net::HostId(rng.gen_range(0..n as u64) as u32);
            let b = globe_net::HostId(rng.gen_range(0..n as u64) as u32);
            let c = globe_net::HostId(rng.gen_range(0..n as u64) as u32);
            prop_assert_eq!(topo.tier_between(a, a), Tier::Loopback);
            prop_assert_eq!(topo.tier_between(a, b), topo.tier_between(b, a));
            let ab = topo.tier_between(a, b).distance();
            let bc = topo.tier_between(b, c).distance();
            let ac = topo.tier_between(a, c).distance();
            prop_assert!(ac <= ab.max(bc), "ultrametric violated: {ac} > max({ab},{bc})");
        }
    }
}
