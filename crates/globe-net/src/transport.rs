//! Transport-level types shared between services and the transport
//! backends: endpoints, connection identifiers, connection events and
//! the [`Transport`] trait both backends implement.

use std::fmt;

use globe_sim::{Metrics, SimDuration, SimTime};

use crate::payload::Payload;
use crate::service::Service;
use crate::topology::{HostId, Topology};

/// A network endpoint: a service listening on a port of a host.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Endpoint {
    /// The host the service runs on.
    pub host: HostId,
    /// The service's port (see [`crate::ports`]).
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(host: HostId, port: u16) -> Self {
        Endpoint { host, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:{}", self.host.0, self.port)
    }
}

/// Identifies one stream connection, globally unique within a [`crate::World`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// Identifies a pending timer, for cancellation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// Why a connection stopped working.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CloseReason {
    /// The remote service closed the connection in an orderly fashion.
    Normal,
    /// No service was listening on the remote port (connection refused).
    Refused,
    /// The connection attempt timed out (remote host unreachable).
    Timeout,
    /// The remote host crashed while the connection was open.
    Reset,
}

impl fmt::Display for CloseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloseReason::Normal => write!(f, "closed by peer"),
            CloseReason::Refused => write!(f, "connection refused"),
            CloseReason::Timeout => write!(f, "connection timed out"),
            CloseReason::Reset => write!(f, "connection reset"),
        }
    }
}

/// Events delivered to a service about one of its stream connections.
///
/// Lifecycle, client side: [`ConnEvent::Opened`] (after one round trip),
/// then zero or more [`ConnEvent::Msg`], then [`ConnEvent::Closed`].
/// Server side: [`ConnEvent::Incoming`] plays the role of `Opened`.
/// A connection that never becomes established yields a single
/// [`ConnEvent::Closed`] carrying the failure reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnEvent {
    /// Server side: a new connection arrived from `from`. The connection
    /// is established; the service may send immediately.
    Incoming {
        /// The connecting endpoint.
        from: Endpoint,
    },
    /// Client side: the connection to the remote endpoint is established.
    Opened,
    /// One message (streams preserve message boundaries). The bytes are
    /// a [`Payload`]: fan-out delivery shares one buffer across all
    /// receivers instead of copying per receiver.
    Msg(Payload),
    /// The connection ended; no further events will be delivered for it.
    Closed(CloseReason),
}

/// An execution substrate for [`Service`]s.
///
/// A transport owns a set of services addressed by simulated
/// `(host, port)` [`Endpoint`]s, routes datagrams and message-framed
/// streams between them, and drives their timers. Two implementations
/// exist:
///
/// - [`World`](crate::World) — the deterministic simulation. Time is
///   virtual, every host in the topology lives in one address space, and
///   identical `(topology, params, seed, program)` replays identically.
/// - [`TcpTransport`](crate::TcpTransport) — real sockets via
///   `std::net`. Time is the wall clock (reported as [`SimTime`] since
///   process start), each OS process hosts only the topology hosts it
///   was configured with, and traffic crosses real TCP/UDP connections
///   using the `wire` framing.
///
/// # The contract services may rely on
///
/// Both backends deliver the same event vocabulary with the same
/// ordering guarantees, so service code written against [`ServiceCtx`]
/// (see [`crate::service`]) runs unmodified under either:
///
/// - **Streams preserve message boundaries.** One `ctx.send` becomes
///   exactly one [`ConnEvent::Msg`] at the peer (the TCP backend adds a
///   length-prefixed frame header; the simulation models it directly).
///   Per-connection, per-direction FIFO order holds.
/// - **Connection lifecycle.** Client side: [`ConnEvent::Opened`], then
///   messages, then one [`ConnEvent::Closed`]. Server side:
///   [`ConnEvent::Incoming`] first. Messages sent before `Opened` queue
///   behind the handshake. Failures map to the same [`CloseReason`]s
///   (refused / timeout / reset) whether they come from the simulation
///   model or from real socket errors.
/// - **Datagrams are unreliable and unordered.** They may be dropped;
///   delivery attributes the sending service's [`Endpoint`].
/// - **Timers are local and best-effort**: they fire no earlier than
///   requested and are lost on crash.
///
/// # What differs (and services must NOT rely on)
///
/// - **Determinism.** Only the simulated world replays; under TCP the
///   interleaving comes from the kernel scheduler.
/// - **Clock meaning.** `now()` is virtual time in the world and real
///   elapsed time under TCP, so absolute timestamps differ — but
///   *relative* reasoning (timeouts, leases, backoff) works in both.
/// - **CPU-cost modelling.** `send_delayed` charges virtual CPU time in
///   the simulation; the TCP backend sends immediately (the real CPU
///   spent the time already).
/// - **Partial topology.** A TCP process only instantiates services for
///   its own hosts: [`Transport::add_service_boxed`] silently ignores
///   services addressed to hosts the backend does not run, which lets
///   the shared deployment planners run unchanged in every process.
/// - **Crash injection** (`crash_host` & friends) is a
///   [`World`](crate::World) facility; real processes crash by exiting.
///
/// [`ServiceCtx`]: crate::ServiceCtx
pub trait Transport {
    /// The network topology this transport runs over.
    fn topology(&self) -> &Topology;
    /// Current time: virtual in the simulation, wall-clock elapsed since
    /// process start under TCP.
    fn now(&self) -> SimTime;
    /// Installs a service at `(host, port)`. Backends hosting a subset
    /// of the topology ignore services for hosts they do not run.
    fn add_service_boxed(&mut self, host: HostId, port: u16, service: Box<dyn Service>);
    /// Starts all installed services (`on_start` in endpoint order).
    fn start(&mut self);
    /// Runs the event loop for `d`: virtual time in the simulation, real
    /// time under TCP.
    fn run_for(&mut self, d: SimDuration);
    /// The transport-wide metrics registry.
    fn metrics(&self) -> &Metrics;
    /// Mutable access to the metrics registry.
    fn metrics_mut(&mut self) -> &mut Metrics;

    /// Schedules the link between two hosts to stop carrying new
    /// traffic at `at`. Fault injection is a simulation facility (like
    /// crash injection): the simulated [`World`](crate::World) models
    /// the partition, while backends over real networks ignore the
    /// request — partitioning a real link is outside their power.
    fn schedule_link_down(&mut self, _a: HostId, _b: HostId, _at: SimTime) {}

    /// Schedules the link between two hosts to carry traffic again at
    /// `at`. Same backend caveat as [`Transport::schedule_link_down`].
    fn schedule_link_up(&mut self, _a: HostId, _b: HostId, _at: SimTime) {}
}

impl dyn Transport + '_ {
    /// Installs a service at `(host, port)` (generic convenience over
    /// [`Transport::add_service_boxed`]).
    pub fn add_service<S: Service>(&mut self, host: HostId, port: u16, service: S) {
        self.add_service_boxed(host, port, Box::new(service));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(HostId(3), 80);
        assert_eq!(e.to_string(), "h3:80");
    }

    #[test]
    fn close_reason_display() {
        assert!(CloseReason::Refused.to_string().contains("refused"));
        assert!(CloseReason::Timeout.to_string().contains("timed out"));
        assert!(CloseReason::Reset.to_string().contains("reset"));
        assert!(CloseReason::Normal.to_string().contains("closed"));
    }

    #[test]
    fn conn_event_equality() {
        assert_eq!(ConnEvent::Opened, ConnEvent::Opened);
        assert_ne!(
            ConnEvent::Msg(vec![1].into()),
            ConnEvent::Closed(CloseReason::Normal)
        );
    }
}
