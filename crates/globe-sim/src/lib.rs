//! Deterministic discrete-event simulation kernel for the Globe/GDN
//! reproduction.
//!
//! This crate provides the building blocks every simulated subsystem rests
//! on:
//!
//! - [`time`] — a virtual clock ([`SimTime`]) and spans ([`SimDuration`]),
//!   measured in integer nanoseconds so that event ordering is exact and
//!   platform independent.
//! - [`event`] — a time-ordered [`EventQueue`] with a stable tie-break so
//!   that two events scheduled for the same instant always fire in
//!   scheduling order, which makes whole-system runs bit-for-bit
//!   reproducible. Near-future events (the hot schedule pattern) go
//!   through an O(1) timer wheel; far timers fall back to a heap.
//! - [`fxhash`] — a fast deterministic hasher ([`FxHashMap`],
//!   [`FxHashSet`]) for point lookups on hot paths; anything that
//!   iterates for schedules or reports must still use an ordered
//!   structure.
//! - [`rng`] — a seedable, splittable pseudo-random generator
//!   ([`Rng`], xoshiro256** seeded through SplitMix64). The simulator does
//!   not use `rand` on purpose: determinism across runs and across crate
//!   versions is a correctness requirement for the experiments in
//!   `EXPERIMENTS.md`, so the generator is pinned here.
//! - [`metrics`] — counters and log-bucketed histograms ([`Metrics`])
//!   used for all measurements reported by the benchmark harness.
//! - [`trace`] — a lightweight component-tagged event trace used by tests
//!   to assert protocol behaviour.
//! - [`optrace`] — structured per-object operation records layered over
//!   the trace, consumed by the schedule-fuzzing consistency auditor.
//!
//! The kernel is intentionally single-threaded: the Globe paper's claims
//! are about message counts, bytes on wide-area links and end-to-end
//! latencies, all of which we account analytically per event. Parallelism
//! only appears *above* the kernel, when the benchmark runner executes many
//! independent simulations at once.
//!
//! # Examples
//!
//! ```
//! use globe_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.as_millis(), ev), (1, "a"));
//! ```

pub mod event;
pub mod fxhash;
pub mod metrics;
pub mod optrace;
pub mod rng;
pub mod time;
pub mod trace;

pub use event::EventQueue;
pub use fxhash::{BuildFxHasher, FxHashMap, FxHashSet, FxHasher};
pub use metrics::{Histogram, HistogramId, MetricId, Metrics};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceLevel, TraceLog};
