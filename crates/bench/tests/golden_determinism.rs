//! Golden-determinism gate for the world engine.
//!
//! The engine's most valuable property is schedule determinism: two
//! runs of the same seeded cell must produce the *same* simulation, not
//! merely similar aggregates. This tier-1 test runs one smoke-scale
//! sweep cell twice and requires byte-identical evidence at three
//! depths — the aggregated `CellReport`, the full `Metrics::report()`
//! dump (every counter and histogram of every host), and the ordered
//! `TraceLog::fingerprint()` (time, level, component and message of
//! every trace entry, order-sensitive). Any engine refactor that
//! silently reorders the schedule — a timer wheel losing its FIFO
//! tie-break, a hash table leaking iteration order into event order —
//! fails here instead of surfacing as an unexplainable benchmark drift.

use globe_bench::{run_cell_traced, CellSpec, DsoClass, SweepSpec};
use globe_rts::PropagationMode;
use globe_workloads::ScenarioPolicy;

/// Smaller-than-default workload so debug-profile test runs stay quick
/// (same shape as the sweep_world tests).
fn test_spec() -> SweepSpec {
    SweepSpec {
        regions: 2,
        fanout_regions: 9,
        objects: 4,
        writes: 12,
        read_secs: 30,
        read_rate: 0.5,
        ..SweepSpec::default()
    }
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let spec = test_spec();
    let cell = CellSpec::steady(
        ScenarioPolicy::PerObject,
        PropagationMode::PushDelta,
        DsoClass::Catalog,
    );

    let (report_a, world_a) = run_cell_traced(&cell, &spec, true);
    let (report_b, world_b) = run_cell_traced(&cell, &spec, true);

    // The runs actually simulated something: traffic flowed, trace
    // entries were recorded, metrics registered. A trivially-empty
    // world would make the identity checks below vacuous.
    assert!(report_a.ok > 0, "no read traffic: {report_a:?}");
    assert!(
        !world_a.trace().entries().is_empty(),
        "traced run recorded no trace entries"
    );

    // Depth 1: the aggregated per-cell measurements.
    assert_eq!(
        format!("{report_a:?}"),
        format!("{report_b:?}"),
        "same-seed cell reports diverged"
    );

    // Depth 2: the full metrics registry, byte for byte.
    let metrics_a = world_a.metrics().report();
    let metrics_b = world_b.metrics().report();
    assert!(
        !metrics_a.is_empty(),
        "metrics report is empty — nothing was measured"
    );
    assert_eq!(metrics_a, metrics_b, "same-seed metrics reports diverged");

    // Depth 3: the ordered trace fingerprint — sensitive to event
    // *order*, not just totals, so a schedule reorder that happens to
    // preserve every counter still fails.
    assert_eq!(
        world_a.trace().fingerprint(),
        world_b.trace().fingerprint(),
        "same-seed trace fingerprints diverged (schedule reordered)"
    );

    // The two worlds processed the same number of events on the same
    // virtual clock — the engine-level statement of determinism.
    assert_eq!(world_a.events_processed(), world_b.events_processed());
    assert_eq!(world_a.now(), world_b.now());
}
