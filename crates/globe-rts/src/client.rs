//! The typed client operation layer: [`GlobeClient`] sessions own the
//! whole name-resolve → bind → invoke → retry lifecycle.
//!
//! Every GDN client in the paper — the GDN-HTTPD, the moderator tool,
//! the browser-side proxy — performs the same dance against the Globe
//! runtime: resolve the object name through the GNS, bind (installing a
//! local representative), fire a typed invocation, and recover from
//! replica failures by re-binding. Before this module each caller
//! re-implemented that dance as a bespoke token state machine over raw
//! [`RtEvent`]s: sentinel tokens to tell binds from invokes, private
//! `bind_times` maps for binding freshness, hand-rolled rebind counters
//! for failover. `GlobeClient` folds all of it into one reusable
//! facade:
//!
//! - **one call starts an operation** — [`GlobeClient::op`] (typed) or
//!   [`GlobeClient::submit`] (pre-marshalled) returns an [`OpId`]; the
//!   client drives every intermediate step internally;
//! - **one event finishes it** — [`OpDone`], whose [`OpOutput`] decodes
//!   through the interface's [`MethodDef`]; callers never see
//!   `BindDone`/`InvokeDone` or correlation-token arithmetic;
//! - **bind caching with a freshness window** — bindings older than
//!   [`ClientConfig::bind_refresh`] are re-resolved against the GLS
//!   (without discarding warm representative state) so newly created
//!   replicas become visible;
//! - **candidate-set failover** — a bind installs the *whole* ranked
//!   replica candidate set (GLS addresses re-ranked by the runtime's
//!   [`HealthLedger`](crate::health::HealthLedger)); [`RetryPolicy`]
//!   rotates through it by health rank
//!   ([`RotationMode::HealthRank`]) instead of blindly re-resolving,
//!   falling back to the GLS only when the set is exhausted;
//! - **hedging** — [`OpBuilder::hedge`] (or a session-wide
//!   [`ClientConfig::hedge`]) launches a duplicate attempt at the
//!   next-healthiest candidate when the first answer is slow, for
//!   idempotent ops only;
//! - **placement preference** — [`OpBuilder::prefer`] pins an op's
//!   reads at a chosen candidate ([`Placement::Replica`]);
//! - **read coalescing** — identical in-flight read ops against the
//!   same target share one invocation ([`ClientStats::coalesced`],
//!   `client.coalesced`);
//! - **pipelining** — any number of ops may be in flight per object;
//!   ops behind an unresolved name or an in-flight bind queue and all
//!   proceed when it completes;
//! - **metrics** — [`ClientStats`] plus the `client.ops`,
//!   `client.rebinds`, `client.retries`, `client.coalesced` and
//!   `client.hedges` world counters; every [`OpDone`] reports the
//!   attempts consumed, the replica that served it and that replica's
//!   health bucket.
//!
//! # Migration: token state machines → client ops
//!
//! | old token pattern | client API |
//! |---|---|
//! | `gns.resolve(ctx, name, TOKEN)` + `GnsEvent::Resolved` match | pass the name as the op target |
//! | `runtime.submit_bind(ctx, BindRequest::new(oid, TOKEN))` + `RtEvent::BindDone` match | implicit: every op binds (or reuses a fresh binding) |
//! | sentinel tokens (`STATS_BIND`, `u64::MAX - k`) to route completions | distinct [`OpId`]s per op, remembered by the caller |
//! | `bind_times` map + manual staleness check + `runtime.rebind` | [`ClientConfig::bind_refresh`] |
//! | `attempts` counter + rebind-on-`Timeout`/`PeerUnreachable` | [`RetryPolicy`] |
//! | `info.typed::<I>()` then `bound.invoke(&mut runtime, ...)` | `client.op::<I>(ctx, target).invoke(&I::METHOD, &args)` |
//! | `RtEvent::InvokeDone` match + `METHOD.decode_result(&data)` | [`OpDone`] + [`OpOutput::decode`] |
//!
//! # Migration: single-address bind/retry → the candidate-set API
//!
//! | old bind/retry surface | CandidateSet API |
//! |---|---|
//! | bind to the first GLS address; failover = blind `rebind` | bind installs the full health-ranked [`CandidateSet`]; inspect via [`GlobeClient::candidate_set`] |
//! | `RetryPolicy { max_attempts, backoff }` re-resolving every retry | add [`RetryPolicy::rotation`]: [`RotationMode::HealthRank`] rotates in-set, deprecated [`RotationMode::Reresolve`] keeps the old behaviour |
//! | no way to steer an op at a replica | [`OpBuilder::prefer`]`(`[`Placement::Replica`]`(ep))` |
//! | tail latency absorbed per attempt | [`OpBuilder::hedge`]`(after)` / [`ClientConfig::hedge`] duplicate the attempt at the next-healthiest candidate |
//! | [`GlobeClient::submit_full`] with positional flags | [`GlobeClient::op`] builder (typed) or [`GlobeClient::submit`] (pre-marshalled); `submit_full` is a deprecated shim for one release |
//! | failover inferred from `client.retries` metric deltas | [`OpDone::attempts`], [`OpDone::replica`], [`OpDone::bucket`] |
//!
//! The owning service routes its I/O through
//! [`GlobeClient::handle_datagram`] / [`GlobeClient::handle_timer`] /
//! [`GlobeClient::handle_conn_event`] and drains [`OpDone`]s with
//! [`GlobeClient::take_events`] — the same embedding pattern as the
//! runtime itself, one layer up.
//!
//! [`RtEvent`]: crate::runtime::RtEvent

use std::collections::BTreeMap;

use globe_gls::ObjectId;
use globe_gns::{GnsClient, GnsError, GnsEvent};
use globe_net::{ns_token, owns_token, token_id, ConnEvent, ConnId, Endpoint, ServiceCtx};
use globe_sim::{SimDuration, SimTime};

use crate::health::Bucket;
use crate::interface::{DsoInterface, InterfaceError, MethodDef, WireCodec};
use crate::object::{Invocation, MethodKind};
use crate::replication::InvokeError;
use crate::repository::ImplId;
use crate::runtime::{BindError, BindRequest, GlobeRuntime, RtConn, RtEvent};

/// What an operation addresses: a Globe object name (resolved through
/// the client's GNS resolver) or an already-known object id.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpTarget {
    /// A user-visible Globe name, e.g. `/apps/graphics/gimp`.
    Name(String),
    /// A resolved object id.
    Oid(ObjectId),
}

impl From<&str> for OpTarget {
    fn from(name: &str) -> OpTarget {
        OpTarget::Name(name.to_owned())
    }
}

impl From<String> for OpTarget {
    fn from(name: String) -> OpTarget {
        OpTarget::Name(name)
    }
}

impl From<&String> for OpTarget {
    fn from(name: &String) -> OpTarget {
        OpTarget::Name(name.clone())
    }
}

impl From<ObjectId> for OpTarget {
    fn from(oid: ObjectId) -> OpTarget {
        OpTarget::Oid(oid)
    }
}

/// Handle of one client operation, echoed in its [`OpDone`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct OpId(pub u64);

/// How a retry picks its next replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RotationMode {
    /// Rotate through the bound [`CandidateSet`] by health rank
    /// (bucket, then observed latency, then distance); re-resolve
    /// against the GLS only when the set has nothing left to rotate
    /// to. The default.
    #[default]
    HealthRank,
    /// The pre-candidate-set behaviour: re-invoke once on the
    /// installed representative, then blindly re-resolve against the
    /// GLS on every further retry, ignoring observed health.
    #[deprecated(note = "use RotationMode::HealthRank; blind re-resolve \
                         ignores the health ledger and re-binds through \
                         sick replicas")]
    Reresolve,
}

/// Failover behaviour of a client session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts per op after a `Timeout`/`PeerUnreachable`
    /// invocation failure (0 = fail fast).
    ///
    /// The policy never overrides the idempotency gate: a
    /// non-idempotent op (see
    /// [`MethodSpec::idempotent`](crate::interface::MethodSpec::idempotent))
    /// that fails *ambiguously* — a timeout, where the invocation may
    /// already have executed — completes with the error instead of
    /// being blindly re-invoked. Unambiguous failures (the replica was
    /// never reached) retry regardless of idempotency.
    pub max_attempts: u32,
    /// Base delay before a retry; attempt `n` waits `backoff × 2^(n-1)`
    /// (zero = retry immediately, the access-point default).
    pub backoff: SimDuration,
    /// How each retry picks its replica (see [`RotationMode`]).
    pub rotation: RotationMode,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: SimDuration::ZERO,
            rotation: RotationMode::HealthRank,
        }
    }
}

impl RetryPolicy {
    /// The pre-candidate-set policy shape, for callers that have not
    /// migrated yet. Shimmed for one release; see the module docs'
    /// migration table.
    #[deprecated(note = "construct RetryPolicy with rotation: \
                         RotationMode::HealthRank (the default) instead")]
    pub fn legacy_reresolve(max_attempts: u32, backoff: SimDuration) -> RetryPolicy {
        #[allow(deprecated)]
        RetryPolicy {
            max_attempts,
            backoff,
            rotation: RotationMode::Reresolve,
        }
    }
}

/// Where an op's reads should land, set with [`OpBuilder::prefer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// The default health-then-distance ranking.
    #[default]
    Ranked,
    /// Pin reads at this candidate (ignored when it is not in the
    /// bound candidate set).
    Replica(Endpoint),
}

/// One bind candidate: a replica endpoint with its current health
/// classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The replica's GRP endpoint.
    pub endpoint: Endpoint,
    /// Its health bucket at the time of the query.
    pub bucket: Bucket,
}

/// The ranked replica candidates behind a bound object — what the
/// redesigned bind path installs instead of a single address. Obtain
/// with [`GlobeClient::candidate_set`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CandidateSet {
    /// All candidates the bound representative can direct reads at,
    /// in its current rotation order.
    pub candidates: Vec<Candidate>,
    /// The candidate currently serving reads.
    pub current: Option<Endpoint>,
}

impl CandidateSet {
    /// Whether the set is empty (object unbound, or served locally by
    /// a replica-grade representative).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Tunables of a client session.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// How long a binding is trusted before the next op re-resolves it
    /// against the GLS (so newly created replicas become visible).
    pub bind_refresh: SimDuration,
    /// Failover behaviour.
    pub retry: RetryPolicy,
    /// Session-wide hedge delay for *idempotent typed read* ops: when
    /// set, an op still unanswered after this delay fires a duplicate
    /// attempt at the next-healthiest candidate (first answer wins,
    /// the loser is discarded). Per-op [`OpBuilder::hedge`] overrides
    /// it. `None` (the default) disables hedging.
    pub hedge: Option<SimDuration>,
    /// Ops queued behind one unresolved name beyond this cap complete
    /// immediately with [`ClientError::Saturated`] — fire-and-forget
    /// telemetry must never grow an unbounded buffer.
    pub max_waiters: usize,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            bind_refresh: SimDuration::from_secs(30),
            retry: RetryPolicy::default(),
            hedge: None,
            max_waiters: 256,
        }
    }
}

/// Why an operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Name resolution failed.
    Resolve(GnsError),
    /// The op targeted a name but the client has no GNS resolver.
    NoResolver,
    /// Binding failed (after any retries).
    Bind(BindError),
    /// The bound object's class does not match the op's interface.
    Interface(InterfaceError),
    /// The invocation failed (after any retries).
    Invoke(InvokeError),
    /// Too many ops already queued behind the target's resolution.
    Saturated,
    /// The op's [`OpBuilder::deadline`] passed before it completed. The
    /// op is cancelled client-side: no further retries are attempted
    /// and a late result is discarded (the invocation itself may still
    /// execute at the replica).
    DeadlineExceeded,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Resolve(e) => write!(f, "{e}"),
            ClientError::NoResolver => write!(f, "client has no name resolver"),
            ClientError::Bind(e) => write!(f, "{e}"),
            ClientError::Interface(e) => write!(f, "{e}"),
            ClientError::Invoke(e) => write!(f, "{e}"),
            ClientError::Saturated => write!(f, "too many queued operations"),
            ClientError::DeadlineExceeded => write!(f, "operation deadline exceeded"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A completed op's marshalled result, decoded through the method it
/// was invoked with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpOutput {
    data: Vec<u8>,
}

impl OpOutput {
    /// Unmarshals the result through the invoking method's definition.
    pub fn decode<A: WireCodec, R: WireCodec>(
        &self,
        method: &MethodDef<A, R>,
    ) -> Result<R, globe_net::WireError> {
        method.decode_result(&self.data)
    }

    /// The raw marshalled result bytes.
    pub fn raw(&self) -> &[u8] {
        &self.data
    }
}

/// The one completion event of a client op, drained via
/// [`GlobeClient::take_events`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpDone {
    /// The op this completes.
    pub op: OpId,
    /// The typed result payload, or why the lifecycle failed.
    pub result: Result<OpOutput, ClientError>,
    /// Failover attempts the op consumed (≤ the policy's cap).
    pub attempts: u32,
    /// The remote replica that served (or last failed) the op, when it
    /// was forwarded; `None` for locally served calls and pre-invoke
    /// failures.
    pub replica: Option<Endpoint>,
    /// The serving replica's health bucket at completion time.
    pub bucket: Option<Bucket>,
}

/// Per-session counters (world-level equivalents: `client.ops`,
/// `client.rebinds`, `client.retries`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Operations started.
    pub ops: u64,
    /// Operations completed successfully.
    pub completed: u64,
    /// Operations completed with an error.
    pub failed: u64,
    /// Ops whose name was answered from the client's name cache.
    pub name_cache_hits: u64,
    /// GLS re-resolves the client initiated (freshness + failover).
    pub rebinds: u64,
    /// Failover retry attempts after invocation failures.
    pub retries: u64,
    /// Read ops that attached to an identical in-flight op instead of
    /// invoking.
    pub coalesced: u64,
    /// Duplicate attempts launched by hedging.
    pub hedges: u64,
    /// Health-driven in-set candidate rotations performed on retries.
    pub rotations: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum OpState {
    /// Waiting on the GNS (queued under `resolving[name]`).
    Resolving,
    /// Waiting on a bind/rebind (queued under `binding[oid]`).
    Binding,
    /// Invocation in flight.
    Invoking,
    /// Waiting out the retry backoff.
    Backoff,
    /// Riding an identical in-flight read op (queued under
    /// `followers[leader]`); completes when the leader does.
    Coalesced,
}

/// Coalescing identity of a read op: target, method and marshalled
/// arguments. Two ops with equal keys would execute identically, so
/// the second can share the first's result.
type CoalesceKey = (OpTarget, u32, Vec<u8>);

struct PendingOp {
    /// The name the op targeted, if any (evicted from the name cache on
    /// a stale-binding `NotFound`).
    name: Option<String>,
    oid: Option<ObjectId>,
    /// Implementation the method's interface expects (class check at
    /// bind completion); `None` for pre-marshalled class-generic ops.
    expect: Option<ImplId>,
    inv: Invocation,
    attempts: u32,
    state: OpState,
    /// Whether re-invoking after an ambiguous failure is safe (from the
    /// method's declaration; pre-marshalled ops keep the historical
    /// retry-everything behaviour).
    idempotent: bool,
    /// Pin reads at this candidate before invoking
    /// ([`OpBuilder::prefer`]).
    prefer: Option<Endpoint>,
    /// Launch a duplicate attempt at the next-healthiest candidate
    /// after this delay ([`OpBuilder::hedge`] / [`ClientConfig::hedge`]).
    hedge: Option<SimDuration>,
    /// Whether this op's hedge timer has been armed (once per op).
    hedge_armed: bool,
    /// This op leads a coalescing group under this key; followers are
    /// fanned the result on completion.
    coalesce_key: Option<CoalesceKey>,
}

/// Marks a timer token as an op deadline rather than a retry backoff.
/// Op ids are sequential and far below 2^46, so the bit is free within
/// the 48-bit id space of [`ns_token`].
const DEADLINE_BIT: u64 = 1 << 47;

/// Marks a timer token as an op's hedge trigger.
const HEDGE_BIT: u64 = 1 << 46;

/// Per-op knobs collected by [`OpBuilder`] (defaults match the
/// pre-marshalled [`GlobeClient::submit`] path).
#[derive(Clone, Debug)]
struct OpOptions {
    idempotent: bool,
    deadline: Option<SimDuration>,
    /// The method's declared kind, when known (typed path only);
    /// coalescing applies to reads.
    kind: Option<MethodKind>,
    prefer: Option<Endpoint>,
    hedge: Option<SimDuration>,
}

impl Default for OpOptions {
    fn default() -> OpOptions {
        OpOptions {
            // Pre-marshalled ops carry no method declaration; they keep
            // the historical retry-everything behaviour.
            idempotent: true,
            deadline: None,
            kind: None,
            prefer: None,
            hedge: None,
        }
    }
}

/// A typed client session over one Globe runtime (see module docs).
pub struct GlobeClient {
    runtime: GlobeRuntime,
    resolver: Option<GnsClient>,
    /// Session configuration (mutable between ops).
    pub config: ClientConfig,
    /// Session counters.
    pub stats: ClientStats,
    ns: u16,
    next_op: u64,
    ops: BTreeMap<u64, PendingOp>,
    /// Stable name → oid bindings (paper §5: name mappings are stable,
    /// so caching them aggressively is sound).
    names: BTreeMap<String, ObjectId>,
    /// name → op ids queued behind its in-flight resolve.
    resolving: BTreeMap<String, Vec<u64>>,
    /// oid → op ids queued behind its in-flight bind/rebind.
    binding: BTreeMap<u128, Vec<u64>>,
    /// When each object was last (re-)resolved against the GLS; evicted
    /// on bind failure and failover so a broken binding can never
    /// suppress the re-resolve that would heal it.
    bind_times: BTreeMap<u128, SimTime>,
    /// Read-coalescing index: identity of each in-flight read-leader.
    coalescing: BTreeMap<CoalesceKey, u64>,
    /// leader op id → follower op ids completed alongside it.
    followers: BTreeMap<u64, Vec<u64>>,
    events: Vec<OpDone>,
}

impl GlobeClient {
    /// Creates a session over `runtime`, using timer namespace `ns` for
    /// retry backoff timers (must not collide with the runtime's or the
    /// resolver's namespaces).
    pub fn new(runtime: GlobeRuntime, ns: u16) -> GlobeClient {
        GlobeClient {
            runtime,
            resolver: None,
            config: ClientConfig::default(),
            stats: ClientStats::default(),
            ns,
            next_op: 1,
            ops: BTreeMap::new(),
            names: BTreeMap::new(),
            resolving: BTreeMap::new(),
            binding: BTreeMap::new(),
            bind_times: BTreeMap::new(),
            coalescing: BTreeMap::new(),
            followers: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Attaches a GNS resolver, enabling name targets.
    pub fn with_resolver(mut self, gns: GnsClient) -> GlobeClient {
        self.resolver = Some(gns);
        self
    }

    /// Overrides the session configuration.
    pub fn with_config(mut self, config: ClientConfig) -> GlobeClient {
        self.config = config;
        self
    }

    /// The underlying runtime (read access for tests/experiments).
    pub fn runtime(&self) -> &GlobeRuntime {
        &self.runtime
    }

    /// The underlying runtime, mutably — for runtime facilities outside
    /// the op lifecycle (application connections, replica registration).
    /// Callers must not submit raw binds/invokes through it: their
    /// completion tokens would collide with the client's op ids.
    pub fn runtime_mut(&mut self) -> &mut GlobeRuntime {
        &mut self.runtime
    }

    /// Opens (or reuses) a secured application connection (delegates to
    /// [`GlobeRuntime::open_app_conn`]).
    pub fn open_app_conn(&mut self, ctx: &mut ServiceCtx<'_>, peer: Endpoint) -> ConnId {
        self.runtime.open_app_conn(ctx, peer)
    }

    /// Sends an application frame (delegates to
    /// [`GlobeRuntime::send_app`]).
    pub fn send_app(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, frame: &[u8]) {
        self.runtime.send_app(ctx, conn, frame)
    }

    /// Ops currently in flight.
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }

    /// Starts a typed operation; finish with
    /// [`OpBuilder::invoke`], which returns the [`OpId`] the completion
    /// event will carry.
    pub fn op<'a, 'b, I: DsoInterface>(
        &'a mut self,
        ctx: &'a mut ServiceCtx<'b>,
        target: impl Into<OpTarget>,
    ) -> OpBuilder<'a, 'b, I> {
        OpBuilder {
            client: self,
            ctx,
            target: target.into(),
            deadline: None,
            prefer: Placement::default(),
            hedge: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Starts a pre-marshalled operation (class-generic callers such as
    /// the moderator pipeline's fill scripts). `expect` enables the
    /// bind-time class check when the caller knows the class.
    ///
    /// Pre-marshalled ops carry no method declaration, so they keep the
    /// historical retry-everything behaviour; use the typed
    /// [`GlobeClient::op`] path to get the idempotency retry gate.
    pub fn submit(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        target: impl Into<OpTarget>,
        expect: Option<ImplId>,
        inv: Invocation,
    ) -> OpId {
        self.submit_op(ctx, target.into(), expect, inv, OpOptions::default())
    }

    /// Starts an operation with explicit retry-gate and deadline
    /// settings — the pre-redesign explicit-flags surface, shimmed for
    /// one release (see the module docs' migration table).
    #[deprecated(note = "use GlobeClient::op (typed builder) or \
                         GlobeClient::submit (pre-marshalled)")]
    pub fn submit_full(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        target: impl Into<OpTarget>,
        expect: Option<ImplId>,
        inv: Invocation,
        idempotent: bool,
        deadline: Option<SimDuration>,
    ) -> OpId {
        self.submit_op(
            ctx,
            target.into(),
            expect,
            inv,
            OpOptions {
                idempotent,
                deadline,
                ..OpOptions::default()
            },
        )
    }

    /// Starts an operation with the full redesigned option set (the
    /// typed [`OpBuilder`] path lands here).
    fn submit_op(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        target: OpTarget,
        expect: Option<ImplId>,
        inv: Invocation,
        opts: OpOptions,
    ) -> OpId {
        let id = self.next_op;
        self.next_op += 1;
        self.stats.ops += 1;
        ctx.metrics().inc("client.ops", 1);
        // Read coalescing: an identical read already in flight serves
        // this op too — attach instead of invoking.
        let coalesce_key = if opts.kind == Some(MethodKind::Read) && opts.prefer.is_none() {
            Some((target.clone(), inv.method.0, inv.args.clone()))
        } else {
            None
        };
        if let Some(key) = &coalesce_key {
            if let Some(&leader) = self.coalescing.get(key) {
                if self.ops.contains_key(&leader) {
                    self.ops.insert(
                        id,
                        PendingOp {
                            name: None,
                            oid: None,
                            expect,
                            inv,
                            attempts: 0,
                            state: OpState::Coalesced,
                            idempotent: opts.idempotent,
                            prefer: None,
                            hedge: None,
                            hedge_armed: false,
                            coalesce_key: None,
                        },
                    );
                    self.followers.entry(leader).or_default().push(id);
                    self.stats.coalesced += 1;
                    ctx.metrics().inc("client.coalesced", 1);
                    if let Some(d) = opts.deadline {
                        ctx.set_timer(d, ns_token(self.ns, id | DEADLINE_BIT));
                    }
                    return OpId(id);
                }
                self.coalescing.remove(key);
            }
        }
        let (name, oid) = match target {
            OpTarget::Name(n) => (Some(n), None),
            OpTarget::Oid(o) => (None, Some(o)),
        };
        if let Some(key) = &coalesce_key {
            self.coalescing.insert(key.clone(), id);
        }
        self.ops.insert(
            id,
            PendingOp {
                name,
                oid,
                expect,
                inv,
                attempts: 0,
                state: OpState::Resolving,
                idempotent: opts.idempotent,
                prefer: opts.prefer,
                hedge: opts.hedge,
                hedge_armed: false,
                coalesce_key,
            },
        );
        if let Some(d) = opts.deadline {
            // No handle is kept: a deadline firing after completion
            // finds no pending op and is ignored.
            ctx.set_timer(d, ns_token(self.ns, id | DEADLINE_BIT));
        }
        self.start(ctx, id);
        self.drive(ctx);
        OpId(id)
    }

    /// The ranked replica candidates behind `oid`'s binding, each with
    /// its current health bucket (empty when unbound or served
    /// locally).
    pub fn candidate_set(&self, oid: ObjectId, now: SimTime) -> CandidateSet {
        CandidateSet {
            candidates: self
                .runtime
                .candidate_set(oid, now)
                .into_iter()
                .map(|(endpoint, bucket)| Candidate { endpoint, bucket })
                .collect(),
            current: self.runtime.current_candidate(oid),
        }
    }

    /// Drains completion events.
    pub fn take_events(&mut self) -> Vec<OpDone> {
        std::mem::take(&mut self.events)
    }

    /// Routes an inbound datagram (runtime / resolver traffic). Returns
    /// `true` if consumed.
    pub fn handle_datagram(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Endpoint,
        payload: &[u8],
    ) -> bool {
        if self.runtime.handle_datagram(ctx, from, payload) {
            self.drive(ctx);
            return true;
        }
        if let Some(gns) = self.resolver.as_mut() {
            if gns.handle_datagram(ctx, from, payload) {
                self.drive(ctx);
                return true;
            }
        }
        false
    }

    /// Routes a timer (runtime / resolver / retry backoff). Returns
    /// `true` if consumed.
    pub fn handle_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) -> bool {
        if self.runtime.handle_timer(ctx, token) {
            self.drive(ctx);
            return true;
        }
        if let Some(gns) = self.resolver.as_mut() {
            if gns.handle_timer(ctx, token) {
                self.drive(ctx);
                return true;
            }
        }
        if owns_token(self.ns, token) {
            let id = token_id(token);
            if id & DEADLINE_BIT != 0 {
                // An op deadline. If the op is still pending in any
                // state, cancel it client-side; a late runtime result
                // for the dead id is discarded by `complete`.
                let id = id & !DEADLINE_BIT;
                if self.ops.contains_key(&id) {
                    ctx.metrics().inc("client.deadline_exceeded", 1);
                    self.complete(id, Err(ClientError::DeadlineExceeded), None);
                }
                return true;
            }
            if id & HEDGE_BIT != 0 {
                self.fire_hedge(ctx, id & !HEDGE_BIT);
                self.drive(ctx);
                return true;
            }
            if matches!(
                self.ops.get(&id).map(|op| &op.state),
                Some(OpState::Backoff)
            ) {
                self.retry(ctx, id);
                self.drive(ctx);
            }
            return true;
        }
        false
    }

    /// The hedge delay elapsed with the op still unanswered: rotate the
    /// binding to the next-healthiest candidate and launch a duplicate
    /// attempt under the same op id. Whichever attempt answers first
    /// completes the op; the loser's result finds no pending op and is
    /// discarded.
    fn fire_hedge(&mut self, ctx: &mut ServiceCtx<'_>, id: u64) {
        let Some(op) = self.ops.get(&id) else {
            return;
        };
        if op.state != OpState::Invoking || !op.idempotent {
            return;
        }
        let Some(oid) = op.oid else {
            return;
        };
        if self.runtime.rotate_candidate(ctx, oid).is_none() {
            // Nothing to hedge against (single candidate).
            return;
        }
        self.stats.hedges += 1;
        ctx.metrics().inc("client.hedges", 1);
        let inv = self.ops.get(&id).expect("checked above").inv.clone();
        self.runtime.invoke(ctx, oid, inv, id);
    }

    /// Routes a stream-connection event through the runtime; see
    /// [`RtConn`]. Application frames and foreign events are handed
    /// back to the owner.
    pub fn handle_conn_event(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        conn: ConnId,
        ev: ConnEvent,
    ) -> RtConn {
        let out = self.runtime.handle_conn_event(ctx, conn, ev);
        if !matches!(out, RtConn::NotMine(_)) {
            self.drive(ctx);
        }
        out
    }

    /// Resets all volatile state after a host crash.
    pub fn on_crash(&mut self) {
        self.runtime.on_crash();
        self.ops.clear();
        self.names.clear();
        self.resolving.clear();
        self.binding.clear();
        self.bind_times.clear();
        self.coalescing.clear();
        self.followers.clear();
        self.events.clear();
    }

    // ------------------------------------------------- op lifecycle

    fn complete(
        &mut self,
        id: u64,
        result: Result<Vec<u8>, ClientError>,
        served: Option<(Endpoint, Bucket)>,
    ) {
        let Some(op) = self.ops.remove(&id) else {
            return;
        };
        if let Some(key) = &op.coalesce_key {
            if self.coalescing.get(key) == Some(&id) {
                self.coalescing.remove(key);
            }
        }
        match &result {
            Ok(_) => self.stats.completed += 1,
            Err(_) => self.stats.failed += 1,
        }
        self.events.push(OpDone {
            op: OpId(id),
            result: result.clone().map(|data| OpOutput { data }),
            attempts: op.attempts,
            replica: served.map(|(ep, _)| ep),
            bucket: served.map(|(_, b)| b),
        });
        // Fan the leader's result out to every coalesced follower (a
        // follower that already completed — deadline — is skipped by
        // the missing-op guard above).
        for follower in self.followers.remove(&id).unwrap_or_default() {
            self.complete(follower, result.clone(), served);
        }
    }

    /// First step of a fresh op: resolve the name (or skip straight to
    /// the access path when the target is an oid / cached name).
    fn start(&mut self, ctx: &mut ServiceCtx<'_>, id: u64) {
        let Some(op) = self.ops.get_mut(&id) else {
            return;
        };
        if op.oid.is_none() {
            let name = op.name.clone().expect("op targets a name or an oid");
            if let Some(&oid) = self.names.get(&name) {
                self.stats.name_cache_hits += 1;
                op.oid = Some(oid);
            } else {
                if self.resolver.is_none() {
                    self.complete(id, Err(ClientError::NoResolver), None);
                    return;
                }
                if let Some(waiters) = self.resolving.get_mut(&name) {
                    if waiters.len() >= self.config.max_waiters {
                        ctx.metrics().inc("client.saturated", 1);
                        self.complete(id, Err(ClientError::Saturated), None);
                        return;
                    }
                    waiters.push(id);
                    return;
                }
                self.resolving.insert(name.clone(), vec![id]);
                self.resolver
                    .as_mut()
                    .expect("checked above")
                    .resolve(ctx, &name, id);
                return;
            }
        }
        self.access(ctx, id);
    }

    /// Second step: ensure a fresh binding, then invoke.
    fn access(&mut self, ctx: &mut ServiceCtx<'_>, id: u64) {
        let Some(op) = self.ops.get_mut(&id) else {
            return;
        };
        let oid = op.oid.expect("access follows resolution");
        if let Some(waiters) = self.binding.get_mut(&oid.0) {
            op.state = OpState::Binding;
            waiters.push(id);
            return;
        }
        let bound = self.runtime.is_bound(oid);
        let fresh = self
            .bind_times
            .get(&oid.0)
            .map(|&t| ctx.now().saturating_sub(t) <= self.config.bind_refresh)
            .unwrap_or(false);
        if bound && fresh {
            self.invoke(ctx, id, oid);
            return;
        }
        if bound {
            // Stale binding: re-resolve without discarding the warm
            // representative (a TTL cache refreshes by delta afterwards).
            self.start_rebind(ctx, id, oid);
        } else {
            if let Some(op) = self.ops.get_mut(&id) {
                op.state = OpState::Binding;
            }
            self.binding.insert(oid.0, vec![id]);
            self.bind_times.insert(oid.0, ctx.now());
            self.runtime.submit_bind(ctx, BindRequest::new(oid, id));
        }
    }

    /// Starts (or joins) a GLS re-resolve for `oid` on behalf of op
    /// `id`, with all the freshness/metrics bookkeeping in one place.
    fn start_rebind(&mut self, ctx: &mut ServiceCtx<'_>, id: u64, oid: ObjectId) {
        if let Some(op) = self.ops.get_mut(&id) {
            op.state = OpState::Binding;
        }
        if let Some(waiters) = self.binding.get_mut(&oid.0) {
            waiters.push(id);
            return;
        }
        self.binding.insert(oid.0, vec![id]);
        self.bind_times.insert(oid.0, ctx.now());
        self.stats.rebinds += 1;
        ctx.metrics().inc("client.rebinds", 1);
        self.runtime.rebind(ctx, oid, id);
    }

    /// Third step: the typed invocation itself.
    fn invoke(&mut self, ctx: &mut ServiceCtx<'_>, id: u64, oid: ObjectId) {
        let Some(op) = self.ops.get_mut(&id) else {
            return;
        };
        // Class check (the typed-bind contract): the installed
        // representative must belong to the interface's class.
        if let Some(expect) = op.expect {
            if let Some(err) = self.runtime.bound_impl(oid).and_then(|found| {
                (found != expect).then_some(InterfaceError::ClassMismatch {
                    expected: expect,
                    found,
                })
            }) {
                self.complete(id, Err(ClientError::Interface(err)), None);
                return;
            }
        }
        op.state = OpState::Invoking;
        let inv = op.inv.clone();
        let prefer = op.prefer;
        let hedge = (!op.hedge_armed).then_some(op.hedge).flatten();
        if hedge.is_some() {
            op.hedge_armed = true;
        }
        if let Some(ep) = prefer {
            // Placement preference: steer the representative at the
            // chosen candidate before the invocation leaves. A stale
            // preference (the replica left the set) is ignored.
            self.runtime.prefer_candidate(ctx, oid, ep);
        }
        if let Some(after) = hedge {
            // Armed once per op, on the first invocation attempt; the
            // timer outliving the op is harmless (`fire_hedge` checks).
            ctx.set_timer(after, ns_token(self.ns, id | HEDGE_BIT));
        }
        self.runtime.invoke(ctx, oid, inv, id);
    }

    /// A failover retry. Under [`RotationMode::HealthRank`] the binding
    /// rotates to the next-healthiest candidate in the installed set
    /// and re-invokes; only when the set has nothing left to offer does
    /// the client fall back to a GLS re-resolve. Under the deprecated
    /// [`RotationMode::Reresolve`], attempt 1 re-invokes on the
    /// installed representative and later attempts blindly re-resolve.
    fn retry(&mut self, ctx: &mut ServiceCtx<'_>, id: u64) {
        let Some(op) = self.ops.get_mut(&id) else {
            return;
        };
        let oid = op.oid.expect("retry follows an invocation");
        #[allow(deprecated)]
        match self.config.retry.rotation {
            RotationMode::HealthRank => {
                if self.runtime.is_bound(oid) && !self.binding.contains_key(&oid.0) {
                    if self.runtime.rotate_candidate(ctx, oid).is_some() {
                        self.stats.rotations += 1;
                        self.invoke(ctx, id, oid);
                        return;
                    }
                    if op.attempts == 1 {
                        // Single-candidate set: nothing to rotate to, so
                        // the first retry re-invokes in place (the
                        // failure may be transient) and only later
                        // attempts pay for a GLS re-resolve.
                        self.invoke(ctx, id, oid);
                        return;
                    }
                }
            }
            RotationMode::Reresolve => {
                if op.attempts == 1
                    && self.runtime.is_bound(oid)
                    && !self.binding.contains_key(&oid.0)
                {
                    self.invoke(ctx, id, oid);
                    return;
                }
            }
        }
        self.start_rebind(ctx, id, oid);
    }

    /// Processes runtime and resolver completions until quiescent
    /// (handling one event may synchronously produce the next: bind hit
    /// → invoke → local execution → completion).
    fn drive(&mut self, ctx: &mut ServiceCtx<'_>) {
        loop {
            let rt_events = self.runtime.take_events();
            let gns_events = self
                .resolver
                .as_mut()
                .map(|g| g.take_events())
                .unwrap_or_default();
            if rt_events.is_empty() && gns_events.is_empty() {
                break;
            }
            for ev in gns_events {
                self.on_resolved(ctx, ev);
            }
            for ev in rt_events {
                self.on_rt_event(ctx, ev);
            }
        }
    }

    fn on_resolved(&mut self, ctx: &mut ServiceCtx<'_>, ev: GnsEvent) {
        let GnsEvent::Resolved { token, result, .. } = ev;
        let Some(name) = self.ops.get(&token).and_then(|op| op.name.clone()) else {
            return;
        };
        let waiters = self.resolving.remove(&name).unwrap_or_default();
        match result {
            Ok(oid) => {
                self.names.insert(name, oid);
                for id in waiters {
                    if let Some(op) = self.ops.get_mut(&id) {
                        op.oid = Some(oid);
                    }
                    self.access(ctx, id);
                }
            }
            Err(e) => {
                ctx.metrics().inc("client.resolve_failed", 1);
                for id in waiters {
                    self.complete(id, Err(ClientError::Resolve(e.clone())), None);
                }
            }
        }
    }

    fn on_rt_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: RtEvent) {
        match ev {
            RtEvent::BindDone { token, result } => {
                let Some(oid) = self.ops.get(&token).and_then(|op| op.oid) else {
                    return;
                };
                let waiters = self.binding.remove(&oid.0).unwrap_or_default();
                match result {
                    Ok(_) => {
                        // A completed rebind replaced the representative,
                        // and the replacement's protocol state starts
                        // empty: invocations that were in flight through
                        // the old instance died with it. Re-issue them —
                        // at-least-once on the failover path, like every
                        // retry here.
                        let orphaned: Vec<u64> = self
                            .ops
                            .iter()
                            .filter(|(id, op)| {
                                op.oid == Some(oid)
                                    && op.state == OpState::Invoking
                                    && !waiters.contains(id)
                            })
                            .map(|(&id, _)| id)
                            .collect();
                        for id in waiters.into_iter().chain(orphaned) {
                            self.invoke(ctx, id, oid);
                        }
                    }
                    Err(e) => {
                        // Evict the broken binding so the next op on the
                        // object re-resolves instead of trusting it.
                        self.bind_times.remove(&oid.0);
                        if e == BindError::NotFound {
                            // Stale name cache: the object vanished.
                            if let Some(name) = self.ops.get(&token).and_then(|op| op.name.clone())
                            {
                                self.names.remove(&name);
                            }
                        }
                        for id in waiters {
                            self.complete(id, Err(ClientError::Bind(e.clone())), None);
                        }
                    }
                }
            }
            RtEvent::InvokeDone {
                token,
                result,
                replica,
            } => match result {
                Ok(data) => {
                    let served =
                        replica.map(|ep| (ep, self.runtime.health().bucket(ep, ctx.now())));
                    self.complete(token, Ok(data), served);
                }
                Err(e @ (InvokeError::Timeout | InvokeError::PeerUnreachable)) => {
                    // The idempotency gate: a timeout is ambiguous (the
                    // write may have executed before the reply was
                    // lost), so only idempotent ops may re-invoke.
                    // `PeerUnreachable` means the replica was never
                    // reached — unambiguous, always retryable.
                    let can_retry = self
                        .ops
                        .get(&token)
                        .map(|op| {
                            op.attempts < self.config.retry.max_attempts
                                && (op.idempotent || e != InvokeError::Timeout)
                        })
                        .unwrap_or(false);
                    if !can_retry {
                        let served =
                            replica.map(|ep| (ep, self.runtime.health().bucket(ep, ctx.now())));
                        self.complete(token, Err(ClientError::Invoke(e)), served);
                        return;
                    }
                    let op = self.ops.get_mut(&token).expect("checked above");
                    op.attempts += 1;
                    let attempts = op.attempts;
                    // The binding just failed us: never let its
                    // timestamp suppress the re-resolve that heals it.
                    if let Some(oid) = op.oid {
                        self.bind_times.remove(&oid.0);
                    }
                    self.stats.retries += 1;
                    ctx.metrics().inc("client.retries", 1);
                    let backoff = self.config.retry.backoff;
                    // Backoff exists to let an overloaded replica drain,
                    // and a timeout already consumed a full RPC window.
                    // `PeerUnreachable` is the opposite shape: it failed
                    // instantly (connection refused/closed) and waiting
                    // changes nothing — rotate to the next candidate
                    // right away, before a competing rebind swallows the
                    // op into its waiter queue.
                    if backoff > SimDuration::ZERO && e == InvokeError::Timeout {
                        let op = self.ops.get_mut(&token).expect("checked above");
                        op.state = OpState::Backoff;
                        let delay = backoff * 2u64.saturating_pow(attempts.saturating_sub(1));
                        ctx.set_timer(delay, ns_token(self.ns, token));
                    } else {
                        self.retry(ctx, token);
                    }
                }
                Err(e) => {
                    let served =
                        replica.map(|ep| (ep, self.runtime.health().bucket(ep, ctx.now())));
                    self.complete(token, Err(ClientError::Invoke(e)), served);
                }
            },
            RtEvent::Registered { .. } | RtEvent::Deregistered { .. } => {}
        }
    }
}

/// Builder returned by [`GlobeClient::op`]: carries the interface type
/// so the invocation marshals and class-checks against it.
pub struct OpBuilder<'a, 'b, I: DsoInterface> {
    client: &'a mut GlobeClient,
    ctx: &'a mut ServiceCtx<'b>,
    target: OpTarget,
    deadline: Option<SimDuration>,
    prefer: Placement,
    hedge: Option<SimDuration>,
    _marker: std::marker::PhantomData<fn() -> I>,
}

impl<I: DsoInterface> OpBuilder<'_, '_, I> {
    /// Cancels the op with [`ClientError::DeadlineExceeded`] if it has
    /// not completed within `d` of submission. The deadline spans the
    /// whole pipeline — resolve, bind, every retry and backoff — not a
    /// single attempt. Cancellation is client-side only: an invocation
    /// already in flight may still execute at the replica.
    pub fn deadline(mut self, d: SimDuration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Steers the op's placement. [`Placement::Replica`] pins the
    /// binding at a chosen candidate (discover candidates via
    /// [`GlobeClient::candidate_set`]); a replica no longer in the set
    /// is ignored and the default health ranking applies. A pinned op
    /// never coalesces with ranked reads.
    pub fn prefer(mut self, placement: Placement) -> Self {
        self.prefer = placement;
        self
    }

    /// Launches a duplicate attempt at the next-healthiest candidate if
    /// the op is still unanswered `after` the first invocation left.
    /// Whichever attempt answers first wins. Applies to idempotent ops
    /// only (a non-idempotent op silently ignores it — duplicating an
    /// ambiguous write is never safe). Overrides the session-wide
    /// [`ClientConfig::hedge`] for this op.
    pub fn hedge(mut self, after: SimDuration) -> Self {
        self.hedge = Some(after);
        self
    }

    /// Marshals `args` and starts the operation; the returned [`OpId`]'s
    /// [`OpDone`] payload decodes via `method`. The method's
    /// [`idempotent`](MethodDef::idempotent) flag gates ambiguous-failure
    /// retries (see [`RetryPolicy::max_attempts`]) and hedging; its
    /// [`kind`](MethodDef::kind) gates read coalescing.
    pub fn invoke<A: WireCodec, R: WireCodec>(self, method: &MethodDef<A, R>, args: &A) -> OpId {
        let kind = method.kind();
        let idempotent = method.idempotent();
        let hedge = if idempotent {
            self.hedge.or_else(|| {
                (kind == MethodKind::Read)
                    .then_some(self.client.config.hedge)
                    .flatten()
            })
        } else {
            None
        };
        self.client.submit_op(
            self.ctx,
            self.target,
            Some(I::IMPL),
            method.invocation(args),
            OpOptions {
                idempotent,
                deadline: self.deadline,
                kind: Some(kind),
                prefer: match self.prefer {
                    Placement::Ranked => None,
                    Placement::Replica(ep) => Some(ep),
                },
                hedge,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_targets_convert() {
        assert_eq!(OpTarget::from("/a"), OpTarget::Name("/a".into()));
        assert_eq!(
            OpTarget::from(String::from("/b")),
            OpTarget::Name("/b".into())
        );
        assert_eq!(OpTarget::from(ObjectId(7)), OpTarget::Oid(ObjectId(7)));
    }

    #[test]
    fn client_error_display() {
        assert!(ClientError::NoResolver.to_string().contains("resolver"));
        assert!(ClientError::Saturated.to_string().contains("queued"));
        assert!(ClientError::Bind(BindError::NotFound)
            .to_string()
            .contains("not registered"));
        assert!(ClientError::Invoke(InvokeError::Timeout)
            .to_string()
            .contains("timed out"));
        assert!(ClientError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }

    /// Deadline timer tokens must never collide with retry-backoff
    /// tokens: op ids count up from 0, far below the flag bit.
    #[test]
    fn deadline_bit_is_outside_op_id_range() {
        assert_eq!(DEADLINE_BIT & (DEADLINE_BIT - 1), 0, "single bit");
        let id = 123_456_789u64;
        assert_eq!((id | DEADLINE_BIT) & !DEADLINE_BIT, id);
        assert_eq!(id & DEADLINE_BIT, 0);
    }

    #[test]
    fn retry_policy_defaults_are_bounded() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.backoff, SimDuration::ZERO);
        let c = ClientConfig::default();
        assert_eq!(c.bind_refresh, SimDuration::from_secs(30));
        assert!(c.max_waiters > 0);
    }

    #[test]
    fn op_output_decodes_through_method_defs() {
        use crate::object::{MethodId, MethodKind};
        const GET: MethodDef<(), u64> = MethodDef::new(MethodId(1), MethodKind::Read, "get");
        let out = OpOutput {
            data: 42u64.to_bytes(),
        };
        assert_eq!(out.decode(&GET).unwrap(), 42);
        assert_eq!(out.raw(), 42u64.to_bytes().as_slice());
    }
}
