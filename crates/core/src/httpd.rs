//! The GDN-enabled HTTPD: the users' access point to the GDN (paper §4).
//!
//! "We use URLs that have embedded in them the name of a package DSO.
//! The GDN-HTTPD extracts this object name and binds to the DSO. The
//! HTTPD then invokes the appropriate method(s) ... For example, it
//! could call listContents() to obtain the list of files contained in
//! the package, which is subsequently reformatted into HTML and sent
//! back to the requesting browser. If the URL designates a particular
//! file in the package, the HTTPD calls the getFileContents() method and
//! sends back the returned content."
//!
//! URL scheme: `GET /pkg/<globe-name>` lists a package;
//! `GET /pkg/<globe-name>?file=<name>` downloads one file;
//! `GET /catalog/<globe-name>` renders a catalog DSO's package index;
//! `GET /catalog/<globe-name>?q=<term>` searches it;
//! `GET /mirrors/<globe-name>` renders a mirror-list DSO
//! (`?region=<n>` filters to one region, fattest pipe first);
//! `GET /stats/top?n=<k>` ranks the most-downloaded packages from the
//! configured download-stats object.
//!
//! When configured with a stats object
//! ([`GdnHttpd::with_stats_object`]), every successful `/pkg` fetch
//! additionally records a download against that
//! [`DownloadStatsDso`](crate::DownloadStatsDso) — fire-and-forget
//! client ops whose lazy resolve, binding and batching ride the
//! ordinary operation lifecycle instead of a side channel.
//!
//! All object access flows through one [`GlobeClient`] session: each
//! HTTP request becomes a typed client op
//! (`client.op::<I>(name).invoke(&METHOD, &args)`), and the client owns
//! name resolution, the bind cache with its freshness window, replica
//! failover within [`RetryPolicy`](globe_rts::RetryPolicy) bounds, and
//! result decoding via [`MethodDef`](globe_rts::MethodDef)s — the HTTPD
//! itself never touches a bind token or a raw runtime event.
//!
//! The same service type doubles as the paper's *GDN-enabled proxy
//! server* when instantiated on a user's machine with anonymous
//! credentials — the architecture is identical, only the certificates
//! differ.

use std::collections::{BTreeMap, BTreeSet};

use globe_gns::{GnsClient, GnsDeployment, GnsError};
use globe_net::{impl_service_any, ConnEvent, ConnId, Endpoint, Service, ServiceCtx};
use globe_rts::{BindError, ClientError, GlobeClient, GlobeRuntime, InvokeError, OpDone, RtConn};
use globe_sim::{SimDuration, SimTime};

use crate::catalog::{CatalogEntry, CatalogInterface, Page, PageQuery, Query};
use crate::http::{HttpRequest, HttpResponse};
use crate::mirrors::{Mirror, MirrorListInterface, RegionQuery};
use crate::package::{GetFile, PackageInterface};
use crate::stats::{DownloadStatsInterface, PackageStat, RecordDownload, TopQuery};

/// Load counters for one HTTPD.
#[derive(Clone, Copy, Debug, Default)]
pub struct HttpdStats {
    /// HTTP requests received.
    pub requests: u64,
    /// 200 responses.
    pub ok: u64,
    /// Non-200 responses.
    pub errors: u64,
    /// Client ops answered from the session's name cache (mirrors
    /// [`ClientStats::name_cache_hits`](globe_rts::ClientStats)).
    pub name_cache_hits: u64,
    /// `/pkg` fetches recorded into the configured stats object.
    pub downloads_recorded: u64,
}

/// What a request wants from the object it names.
#[derive(Clone, Debug)]
enum ReqKind {
    /// A package listing, or one file of it.
    Package { file: Option<String> },
    /// A catalog index, or a search over it.
    Catalog { query: Option<String> },
    /// One page of a catalog index (`?page=N&per=K`).
    CatalogPage { page: u32, per: u32 },
    /// A mirror list, or one region's slice of it.
    Mirrors { region: Option<u32> },
    /// The download-stats ranking (`/stats/top`).
    StatsTop { limit: u32 },
}

#[derive(Debug)]
struct PendingReq {
    conn: ConnId,
    name: String,
    kind: ReqKind,
    started: SimTime,
}

/// The GDN-enabled HTTPD service.
pub struct GdnHttpd {
    /// The embedded client session (public for experiments: its runtime
    /// holds the paper's "LR installed in the GDN-HTTPD").
    pub client: GlobeClient,
    /// HTTP requests in flight, keyed by their client op.
    requests: BTreeMap<u64, PendingReq>,
    /// Globe name of the download-stats object fetches report into.
    stats_object: Option<String>,
    /// Fire-and-forget `record` ops in flight.
    stats_records: BTreeSet<u64>,
    /// Load counters.
    pub stats: HttpdStats,
}

impl GdnHttpd {
    /// Creates an HTTPD whose client session embeds `runtime` and a GNS
    /// resolver via the host's site resolver.
    pub fn new(
        runtime: GlobeRuntime,
        gns_deploy: &GnsDeployment,
        topo: &globe_net::Topology,
        host: globe_net::HostId,
        gns_ns: u16,
    ) -> GdnHttpd {
        let gns = GnsClient::new(gns_deploy, topo, host, gns_ns);
        GdnHttpd {
            client: GlobeClient::new(runtime, gns_ns + 1).with_resolver(gns),
            requests: BTreeMap::new(),
            stats_object: None,
            stats_records: BTreeSet::new(),
            stats: HttpdStats::default(),
        }
    }

    /// Overrides how long the client trusts a binding before the GLS is
    /// asked again (default 30 s).
    pub fn with_bind_refresh(mut self, d: SimDuration) -> GdnHttpd {
        self.client.config.bind_refresh = d;
        self
    }

    /// Records every successful `/pkg` fetch into the download-stats
    /// object named `name`, and serves `/stats/top` from it. The object
    /// is resolved and bound lazily by the first op that needs it, so it
    /// may be published after this HTTPD starts. The HTTPD's runtime
    /// credentials must pass the write gate (the deployment's HTTPDs
    /// hold host certificates, which do).
    pub fn with_stats_object(mut self, name: &str) -> GdnHttpd {
        self.stats_object = Some(name.to_owned());
        self
    }

    /// Queues one download observation as a fire-and-forget `record` op
    /// against the configured stats object. Failures are counted and
    /// dropped — telemetry must never fail a user fetch.
    fn record_download(&mut self, ctx: &mut ServiceCtx<'_>, name: String, bytes: u64) {
        let Some(stats_name) = self.stats_object.clone() else {
            return;
        };
        let op = self
            .client
            .op::<DownloadStatsInterface>(ctx, stats_name)
            .invoke(
                &DownloadStatsInterface::RECORD,
                &RecordDownload { name, bytes },
            );
        self.stats_records.insert(op.0);
    }

    fn respond(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        op: u64,
        status: u16,
        ctype: &str,
        body: &[u8],
    ) {
        let Some(req) = self.requests.remove(&op) else {
            return;
        };
        if status == 200 {
            self.stats.ok += 1;
        } else {
            self.stats.errors += 1;
        }
        let latency = ctx.now().saturating_sub(req.started);
        ctx.metrics()
            .record("httpd.response_us", latency.as_micros());
        ctx.metrics().inc(&format!("httpd.status.{status}"), 1);
        ctx.send(req.conn, HttpResponse::build(status, ctype, body));
        ctx.close(req.conn);
    }

    /// Answers a request without an object behind it (static pages,
    /// parse errors).
    fn reply_now(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, status: u16, body: &[u8]) {
        let ctype = if status == 200 {
            "text/html"
        } else {
            "text/plain"
        };
        ctx.send(conn, HttpResponse::build(status, ctype, body));
        ctx.close(conn);
        if status == 200 {
            self.stats.ok += 1;
        } else {
            self.stats.errors += 1;
        }
    }

    fn handle_http(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, data: &[u8]) {
        self.stats.requests += 1;
        ctx.metrics().inc("httpd.requests", 1);
        let Some(req) = HttpRequest::parse(data) else {
            self.reply_now(ctx, conn, 400, b"malformed request");
            return;
        };
        let (route, query) = req.split_query();
        if req.method != "GET" {
            self.reply_now(ctx, conn, 400, b"only GET is supported");
            return;
        }
        let (name, kind) = if route == "/stats/top" {
            // The ranking lives in the configured stats object; without
            // one there is nothing to rank.
            if self.stats_object.is_none() {
                self.reply_now(ctx, conn, 404, b"no stats object configured");
                return;
            }
            let limit = match query.and_then(|q| q.strip_prefix("n=")) {
                Some(raw) => match raw.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        self.reply_now(ctx, conn, 400, b"bad top limit");
                        return;
                    }
                },
                None => 10,
            };
            let stats_name = self.stats_object.clone().expect("checked above");
            (stats_name, ReqKind::StatsTop { limit })
        } else if let Some(name) = route.strip_prefix("/pkg") {
            let file = query
                .and_then(|q| q.strip_prefix("file="))
                .map(|f| f.to_owned());
            (name.to_owned(), ReqKind::Package { file })
        } else if let Some(name) = route.strip_prefix("/catalog") {
            let q = query_param(query, "q").map(str::to_owned);
            let page_raw = query_param(query, "page");
            let per_raw = query_param(query, "per");
            let kind = if q.is_none() && (page_raw.is_some() || per_raw.is_some()) {
                match (
                    page_raw.map_or(Ok(0), str::parse),
                    per_raw.map_or(Ok(DEFAULT_PAGE_SIZE), str::parse),
                ) {
                    (Ok(page), Ok(per)) => ReqKind::CatalogPage { page, per },
                    _ => {
                        self.reply_now(ctx, conn, 400, b"bad page parameters");
                        return;
                    }
                }
            } else {
                ReqKind::Catalog { query: q }
            };
            (name.to_owned(), kind)
        } else if let Some(name) = route.strip_prefix("/mirrors") {
            let region = match query.and_then(|q| q.strip_prefix("region=")) {
                Some(raw) => match raw.parse() {
                    Ok(region) => Some(region),
                    Err(_) => {
                        // A malformed filter must not silently widen to
                        // the full list — the client asked for a slice.
                        self.reply_now(ctx, conn, 400, b"bad region filter");
                        return;
                    }
                },
                None => None,
            };
            (name.to_owned(), ReqKind::Mirrors { region })
        } else {
            if route == "/index.html" || route == "/" {
                let body = b"<html><body><h1>Globe Distribution Network</h1>\
                    <p>Fetch /pkg/&lt;package-name&gt; for a listing, or \
                    /catalog/&lt;catalog-name&gt; for a package index.</p></body></html>";
                self.reply_now(ctx, conn, 200, body);
                return;
            }
            self.reply_now(ctx, conn, 404, b"unknown route");
            return;
        };
        // One typed client op per request: the session resolves the
        // embedded object name (paper §4), binds with its freshness
        // window, and invokes the method the route implies.
        let op = match kind.clone() {
            ReqKind::Package { file } => match file {
                Some(fname) => self
                    .client
                    .op::<PackageInterface>(ctx, name.as_str())
                    .invoke(&PackageInterface::GET_FILE, &GetFile { name: fname }),
                None => self
                    .client
                    .op::<PackageInterface>(ctx, name.as_str())
                    .invoke(&PackageInterface::LIST_CONTENTS, &()),
            },
            ReqKind::Catalog { query } => match query {
                Some(term) => self
                    .client
                    .op::<CatalogInterface>(ctx, name.as_str())
                    .invoke(&CatalogInterface::SEARCH, &Query { term }),
                None => self
                    .client
                    .op::<CatalogInterface>(ctx, name.as_str())
                    .invoke(&CatalogInterface::LIST, &()),
            },
            ReqKind::CatalogPage { page, per } => self
                .client
                .op::<CatalogInterface>(ctx, name.as_str())
                .invoke(&CatalogInterface::LIST_PAGE, &PageQuery { page, per }),
            ReqKind::Mirrors { region } => match region {
                Some(region) => self
                    .client
                    .op::<MirrorListInterface>(ctx, name.as_str())
                    .invoke(&MirrorListInterface::IN_REGION, &RegionQuery { region }),
                None => self
                    .client
                    .op::<MirrorListInterface>(ctx, name.as_str())
                    .invoke(&MirrorListInterface::LIST, &()),
            },
            ReqKind::StatsTop { limit } => self
                .client
                .op::<DownloadStatsInterface>(ctx, name.as_str())
                .invoke(&DownloadStatsInterface::TOP, &TopQuery { limit }),
        };
        self.requests.insert(
            op.0,
            PendingReq {
                conn,
                name,
                kind,
                started: ctx.now(),
            },
        );
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        // Loop: responding may start follow-up ops (download telemetry)
        // that complete synchronously against a local representative.
        loop {
            let events = self.client.take_events();
            if events.is_empty() {
                break;
            }
            for done in events {
                self.on_op_done(ctx, done);
            }
        }
        self.stats.name_cache_hits = self.client.stats.name_cache_hits;
    }

    fn on_op_done(&mut self, ctx: &mut ServiceCtx<'_>, done: OpDone) {
        if self.stats_records.remove(&done.op.0) {
            // Telemetry completions: count, never touch a user fetch.
            match done.result {
                Ok(_) => {
                    self.stats.downloads_recorded += 1;
                    ctx.metrics().inc("httpd.stats.recorded", 1);
                }
                Err(ClientError::Saturated) => {
                    ctx.metrics().inc("httpd.stats.dropped", 1);
                }
                Err(_) => ctx.metrics().inc("httpd.stats.record_failed", 1),
            }
            return;
        }
        let op = done.op.0;
        let Some(req) = self.requests.get(&op) else {
            return;
        };
        let output = match done.result {
            Ok(output) => output,
            Err(e) => {
                let (status, body) = error_response(&e);
                if status == 504 {
                    ctx.metrics().inc("httpd.err.replica_unreachable", 1);
                }
                self.respond(ctx, op, status, "text/plain", &body);
                return;
            }
        };
        let name = req.name.clone();
        match req.kind.clone() {
            ReqKind::Package { file: Some(_) } => {
                // Typed result, digest-verified end to end (paper §6.1).
                match output
                    .decode(&PackageInterface::GET_FILE)
                    .ok()
                    .and_then(|blob| blob.verified().ok())
                {
                    Some(contents) => {
                        let bytes = contents.len() as u64;
                        self.respond(ctx, op, 200, "application/octet-stream", &contents);
                        self.record_download(ctx, name, bytes);
                    }
                    None => {
                        self.respond(ctx, op, 500, "text/plain", b"corrupt file payload");
                    }
                }
            }
            ReqKind::Package { file: None } => {
                match output.decode(&PackageInterface::LIST_CONTENTS) {
                    Ok(listing) => {
                        let html = render_listing(&name, &listing);
                        self.respond(ctx, op, 200, "text/html", html.as_bytes());
                        let bytes = html.len() as u64;
                        self.record_download(ctx, name, bytes);
                    }
                    Err(_) => {
                        self.respond(ctx, op, 500, "text/plain", b"corrupt listing");
                    }
                }
            }
            ReqKind::Catalog { query } => {
                // LIST and SEARCH share their result type; either
                // decodes here.
                match output.decode(&CatalogInterface::LIST) {
                    Ok(entries) => {
                        let html = render_catalog(&name, query.as_deref(), &entries);
                        self.respond(ctx, op, 200, "text/html", html.as_bytes());
                    }
                    Err(_) => {
                        self.respond(ctx, op, 500, "text/plain", b"corrupt catalog");
                    }
                }
            }
            ReqKind::CatalogPage { page, per } => {
                match output.decode(&CatalogInterface::LIST_PAGE) {
                    Ok(pg) => {
                        let html = render_catalog_page(&name, page, per, &pg);
                        self.respond(ctx, op, 200, "text/html", html.as_bytes());
                    }
                    Err(_) => {
                        self.respond(ctx, op, 500, "text/plain", b"corrupt catalog");
                    }
                }
            }
            ReqKind::Mirrors { region } => {
                // LIST and IN_REGION share their result type; either
                // decodes here.
                match output.decode(&MirrorListInterface::LIST) {
                    Ok(mirrors) => {
                        let html = render_mirrors(&name, region, &mirrors);
                        self.respond(ctx, op, 200, "text/html", html.as_bytes());
                    }
                    Err(_) => {
                        self.respond(ctx, op, 500, "text/plain", b"corrupt mirror list");
                    }
                }
            }
            ReqKind::StatsTop { limit } => match output.decode(&DownloadStatsInterface::TOP) {
                Ok(top) => {
                    let html = render_stats_top(limit, &top);
                    self.respond(ctx, op, 200, "text/html", html.as_bytes());
                }
                Err(_) => {
                    self.respond(ctx, op, 500, "text/plain", b"corrupt stats");
                }
            },
        }
    }
}

/// Page size used when `?page=N` is given without `&per=K`.
const DEFAULT_PAGE_SIZE: u32 = 10;

/// Finds `key=` in an `&`-separated query string and returns its value.
fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?.split('&').find_map(|pair| {
        pair.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
    })
}

/// Maps an operation failure to the HTTP status and body the user sees.
fn error_response(e: &ClientError) -> (u16, Vec<u8>) {
    match e {
        ClientError::Resolve(GnsError::Dns(_)) => (404, b"no such package".to_vec()),
        ClientError::Resolve(e) => (400, e.to_string().into_bytes()),
        // Stale name cache (the object vanished): the client has already
        // evicted the name, so a later fetch re-resolves.
        ClientError::Bind(BindError::NotFound) => (404, b"package not available".to_vec()),
        ClientError::Invoke(InvokeError::Sem(msg)) if msg.contains("no file") => {
            (404, msg.clone().into_bytes())
        }
        ClientError::Invoke(InvokeError::AccessDenied) => (403, b"forbidden".to_vec()),
        // The client exhausted its retry policy against unreachable
        // replicas (paper's replication-for-availability, client side).
        ClientError::Invoke(InvokeError::Timeout | InvokeError::PeerUnreachable) => {
            (504, b"replica unreachable".to_vec())
        }
        ClientError::Interface(e) => (500, e.to_string().into_bytes()),
        e => (502, e.to_string().into_bytes()),
    }
}

/// Escapes `&`, `<`, `>` and both quote characters for interpolation
/// into HTML: names, search terms and descriptions all originate
/// outside the HTTPD (anonymous query strings, moderator uploads) and
/// must not inject markup — quotes matter because names land inside
/// `href="..."` attributes.
fn escape_html(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a package listing as the paper describes: the contents list
/// "reformatted into HTML".
fn render_listing(name: &str, listing: &[crate::package::FileInfo]) -> String {
    use std::fmt::Write as _;
    let name = escape_html(name);
    let mut html = String::new();
    let _ = write!(
        html,
        "<html><head><title>{name}</title></head><body><h1>{name}</h1><ul>"
    );
    for f in listing {
        let _ = write!(
            html,
            "<li><a href=\"/pkg{name}?file={fname}\">{fname}</a> ({size} bytes)</li>",
            fname = escape_html(&f.name),
            size = f.size
        );
    }
    let _ = write!(html, "</ul></body></html>");
    html
}

/// Renders a catalog index (or search result) as HTML, with each entry
/// linking to its package listing at `/pkg<name>`.
fn render_catalog(name: &str, query: Option<&str>, entries: &[CatalogEntry]) -> String {
    use std::fmt::Write as _;
    let name = escape_html(name);
    let mut html = String::new();
    let _ = write!(
        html,
        "<html><head><title>{name}</title></head><body><h1>{name}</h1>"
    );
    if let Some(q) = query {
        let _ = write!(
            html,
            "<p>{} result(s) for <b>{}</b></p>",
            entries.len(),
            escape_html(q)
        );
    }
    let _ = write!(html, "<ul>");
    for e in entries {
        let _ = write!(
            html,
            "<li><a href=\"/pkg{pkg}\">{pkg}</a> &mdash; {desc}</li>",
            pkg = escape_html(&e.name),
            desc = escape_html(&e.description)
        );
    }
    let _ = write!(html, "</ul></body></html>");
    html
}

/// Renders one page of a catalog index with pager links. The DSO clamps
/// the page size server-side, so the links reuse the same clamp to keep
/// the client and the object walking the same grid.
fn render_catalog_page(name: &str, page: u32, per: u32, pg: &Page) -> String {
    use std::fmt::Write as _;
    let name = escape_html(name);
    let per = per.clamp(1, crate::catalog::MAX_PAGE_SIZE);
    let mut html = String::new();
    let _ = write!(
        html,
        "<html><head><title>{name}</title></head><body><h1>{name}</h1>\
         <p>page {page} &mdash; {shown} of {total} package(s)</p><ul>",
        shown = pg.entries.len(),
        total = pg.total
    );
    for e in &pg.entries {
        let _ = write!(
            html,
            "<li><a href=\"/pkg{pkg}\">{pkg}</a> &mdash; {desc}</li>",
            pkg = escape_html(&e.name),
            desc = escape_html(&e.description)
        );
    }
    let _ = write!(html, "</ul><p>");
    if page > 0 {
        let _ = write!(
            html,
            "<a href=\"/catalog{name}?page={prev}&amp;per={per}\">prev</a> ",
            prev = page - 1
        );
    }
    if u64::from(page.saturating_add(1)) * u64::from(per) < pg.total {
        let _ = write!(
            html,
            "<a href=\"/catalog{name}?page={next}&amp;per={per}\">next</a>",
            next = page.saturating_add(1)
        );
    }
    let _ = write!(html, "</p></body></html>");
    html
}

/// Renders a mirror list (optionally one region's slice) as HTML.
fn render_mirrors(name: &str, region: Option<u32>, mirrors: &[Mirror]) -> String {
    use std::fmt::Write as _;
    let name = escape_html(name);
    let mut html = String::new();
    let _ = write!(
        html,
        "<html><head><title>{name}</title></head><body><h1>{name}</h1>"
    );
    if let Some(r) = region {
        let _ = write!(html, "<p>{} mirror(s) in region {r}</p>", mirrors.len());
    }
    let _ = write!(html, "<ul>");
    for m in mirrors {
        let _ = write!(
            html,
            "<li><a href=\"{url}\">{url}</a> (region {region}, {bw} Mbit/s)</li>",
            url = escape_html(&m.url),
            region = m.region,
            bw = m.bandwidth_mbps
        );
    }
    let _ = write!(html, "</ul></body></html>");
    html
}

/// Renders the download-stats ranking: most-downloaded first, each
/// entry linking to its package listing.
fn render_stats_top(limit: u32, top: &[PackageStat]) -> String {
    use std::fmt::Write as _;
    let mut html = String::new();
    let _ = write!(
        html,
        "<html><head><title>top downloads</title></head><body>\
         <h1>Top {limit} downloads</h1><ol>"
    );
    for s in top {
        let _ = write!(
            html,
            "<li><a href=\"/pkg{pkg}\">{pkg}</a> &mdash; {downloads} download(s), {bytes} bytes</li>",
            pkg = escape_html(&s.name),
            downloads = s.downloads,
            bytes = s.bytes,
        );
    }
    let _ = write!(html, "</ol></body></html>");
    html
}

impl Service for GdnHttpd {
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.client.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.client.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(ev) => match ev {
                ConnEvent::Msg(data) => self.handle_http(ctx, conn, &data),
                ConnEvent::Closed(_) => {
                    // Drop pending work for a browser that went away (the
                    // underlying client op finishes and is discarded).
                    let stale: Vec<u64> = self
                        .requests
                        .iter()
                        .filter(|(_, r)| r.conn == conn)
                        .map(|(&t, _)| t)
                        .collect();
                    for t in stale {
                        self.requests.remove(&t);
                    }
                }
                ConnEvent::Incoming { .. } | ConnEvent::Opened => {}
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.client.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        self.client.on_crash();
        self.requests.clear();
        self.stats_records.clear();
    }

    impl_service_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::FileInfo;

    #[test]
    fn listing_html_contains_links() {
        let listing = vec![
            FileInfo {
                name: "README".into(),
                size: 5,
                digest: [0; 32],
            },
            FileInfo {
                name: "gimp-1.0.tar".into(),
                size: 1_000_000,
                digest: [1; 32],
            },
        ];
        let html = render_listing("/apps/graphics/gimp", &listing);
        assert!(html.contains("<title>/apps/graphics/gimp</title>"));
        assert!(html.contains("href=\"/pkg/apps/graphics/gimp?file=README\""));
        assert!(html.contains("1000000 bytes"));
    }

    #[test]
    fn catalog_html_links_into_packages() {
        let entries = vec![CatalogEntry {
            name: "/apps/graphics/gimp".into(),
            description: "GNU Image Manipulation Program".into(),
        }];
        let html = render_catalog("/catalog/main", None, &entries);
        assert!(html.contains("href=\"/pkg/apps/graphics/gimp\""));
        assert!(html.contains("GNU Image Manipulation Program"));
        assert!(!html.contains("result(s)"));

        let html = render_catalog("/catalog/main", Some("gimp"), &entries);
        assert!(html.contains("1 result(s) for <b>gimp</b>"));
    }

    #[test]
    fn query_param_splits_on_ampersand() {
        assert_eq!(query_param(Some("page=2&per=10"), "page"), Some("2"));
        assert_eq!(query_param(Some("page=2&per=10"), "per"), Some("10"));
        assert_eq!(query_param(Some("per=10"), "page"), None);
        assert_eq!(query_param(Some("query=x"), "q"), None);
        assert_eq!(query_param(Some("q=gimp"), "q"), Some("gimp"));
        assert_eq!(query_param(None, "page"), None);
    }

    #[test]
    fn catalog_page_html_renders_pager_links() {
        let entry = |n: &str| CatalogEntry {
            name: n.into(),
            description: "a package".into(),
        };
        // A middle page of a 5-entry catalog: both pager links present.
        let pg = Page {
            total: 5,
            entries: vec![entry("/apps/c"), entry("/apps/d")],
        };
        let html = render_catalog_page("/catalog/main", 1, 2, &pg);
        assert!(html.contains("page 1 &mdash; 2 of 5 package(s)"));
        assert!(html.contains("href=\"/pkg/apps/c\""));
        assert!(html.contains("href=\"/catalog/catalog/main?page=0&amp;per=2\">prev"));
        assert!(html.contains("href=\"/catalog/catalog/main?page=2&amp;per=2\">next"));

        // First page: no prev. Last page: no next.
        let html = render_catalog_page("/catalog/main", 0, 2, &pg);
        assert!(!html.contains(">prev<"), "{html}");
        let last = Page {
            total: 5,
            entries: vec![entry("/apps/e")],
        };
        let html = render_catalog_page("/catalog/main", 2, 2, &last);
        assert!(!html.contains(">next<"), "{html}");
    }

    #[test]
    fn mirrors_html_lists_sites_and_regions() {
        let mirrors = vec![
            Mirror {
                url: "http://ftp.nl/globe".into(),
                region: 0,
                bandwidth_mbps: 100,
            },
            Mirror {
                url: "http://ftp.us/<evil>".into(),
                region: 1,
                bandwidth_mbps: 1000,
            },
        ];
        let html = render_mirrors("/mirrors/main", None, &mirrors);
        assert!(html.contains("<title>/mirrors/main</title>"));
        assert!(html.contains("http://ftp.nl/globe"));
        assert!(html.contains("1000 Mbit/s"));
        assert!(!html.contains("mirror(s) in region"));
        assert!(!html.contains("<evil>"), "{html}");

        let html = render_mirrors("/mirrors/main", Some(1), &mirrors[1..]);
        assert!(html.contains("1 mirror(s) in region 1"));
    }

    #[test]
    fn stats_top_html_ranks_and_links() {
        let top = vec![
            PackageStat {
                name: "/apps/graphics/gimp".into(),
                downloads: 12,
                bytes: 4096,
            },
            PackageStat {
                name: "/apps/<evil>".into(),
                downloads: 3,
                bytes: 77,
            },
        ];
        let html = render_stats_top(5, &top);
        assert!(html.contains("<title>top downloads</title>"));
        assert!(html.contains("Top 5 downloads"));
        assert!(html.contains("href=\"/pkg/apps/graphics/gimp\""));
        assert!(html.contains("12 download(s), 4096 bytes"));
        assert!(!html.contains("<evil>"), "{html}");
    }

    #[test]
    fn rendered_html_escapes_untrusted_input() {
        let entries = vec![CatalogEntry {
            name: "/apps/<evil>".into(),
            description: "a </ul><script>alert(1)</script> trick".into(),
        }];
        let html = render_catalog("/catalog/main", Some("<script>x</script>"), &entries);
        assert!(!html.contains("<script>"), "{html}");
        assert!(html.contains("&lt;script&gt;x&lt;/script&gt;"));
        assert!(html.contains("/apps/&lt;evil&gt;"));

        let listing = vec![FileInfo {
            name: "<img src=x>".into(),
            size: 1,
            digest: [0; 32],
        }];
        let html = render_listing("/apps/<evil>", &listing);
        assert!(!html.contains("<img"), "{html}");
        assert!(html.contains("&lt;img src=x&gt;"));

        // Quotes must not break out of href attributes.
        let top = vec![PackageStat {
            name: "/x\" onfocus=\"alert(1)".into(),
            downloads: 1,
            bytes: 1,
        }];
        let html = render_stats_top(1, &top);
        assert!(!html.contains("onfocus=\""), "{html}");
        assert!(html.contains("&quot;"));
    }

    #[test]
    fn error_responses_map_client_errors_to_statuses() {
        use globe_gns::DnsError;
        assert_eq!(
            error_response(&ClientError::Resolve(GnsError::Dns(DnsError::NxDomain))).0,
            404
        );
        assert_eq!(
            error_response(&ClientError::Bind(BindError::NotFound)).0,
            404
        );
        assert_eq!(
            error_response(&ClientError::Invoke(InvokeError::AccessDenied)).0,
            403
        );
        assert_eq!(
            error_response(&ClientError::Invoke(InvokeError::PeerUnreachable)).0,
            504
        );
        assert_eq!(
            error_response(&ClientError::Invoke(InvokeError::Sem("no file x".into()))).0,
            404
        );
        assert_eq!(
            error_response(&ClientError::Bind(BindError::NoAddress)).0,
            502
        );
    }
}
