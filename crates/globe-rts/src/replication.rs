//! The replication subobject interface and its execution context.
//!
//! The paper's key structural claim (§3.3): replication subobjects have
//! *standard interfaces* and operate only on opaque invocations, so any
//! protocol can be attached to any object. [`ReplicationSubobject`] is
//! that standard interface; [`ReplCtx`] is everything a protocol may do
//! — execute locally, message peers, set timers, complete invocations —
//! with the transport, security and marshalling owned by the runtime
//! (the communication subobject).
//!
//! # The effects pipeline: dirty → digest-gate → batch persist → multicast
//!
//! Protocol code never touches the network or stable storage directly;
//! every call runs against a fresh `ReplEffects` accumulator that the
//! runtime translates after the protocol returns:
//!
//! 1. **dirty** — any state-touching context call ([`ReplCtx::exec`],
//!    [`ReplCtx::install_state`], [`ReplCtx::apply_delta`],
//!    [`ReplCtx::bump_version`]) marks the effect batch dirty. Delta
//!    application marks it *deferrable*: a replica fed deltas can be
//!    re-derived cheaply from its master after a crash, so its durable
//!    checkpoint may lag a bounded number of versions.
//! 2. **digest-gate** — at flush time the runtime compares the
//!    semantics subobject's cheap [`state_digest`] against the digest
//!    of the last persisted blob; unchanged state (e.g. a read that
//!    executed locally) is never re-encoded or re-written.
//! 3. **batch persist** — persistence runs once per runtime dispatch
//!    (end of `invoke` / timer / datagram / connection event), not once
//!    per dirty effect, so a burst of protocol activity inside one
//!    dispatch costs at most one `stable_put` per object.
//! 4. **multicast** — [`ReplCtx::multicast`] hands one body plus N
//!    peers to the runtime, which encodes the GRP frame *once* and
//!    fans the same bytes out per connection (encryption stays
//!    per-connection).
//!
//! [`state_digest`]: crate::object::SemanticsObject::state_digest

use std::fmt;

use globe_net::Endpoint;
use globe_sim::{SimDuration, SimTime};

use crate::chunks::{ChunkRef, ChunkStoreRef};
use crate::grp::{GrpBody, RoleSpec};
use crate::health::FailureReason;
use crate::object::{Invocation, MethodId, MethodKind, SemanticsObject};

/// Why an invocation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvokeError {
    /// No local representative for the object (bind first).
    NotBound,
    /// The replica refused: caller lacks write privileges (paper §6.1).
    AccessDenied,
    /// No reply from the remote replica in time.
    Timeout,
    /// The remote replica's host is unreachable.
    PeerUnreachable,
    /// The semantics subobject raised an error.
    Sem(String),
    /// A runtime-internal invariant failed (reported, never panicked).
    Internal(&'static str),
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::NotBound => write!(f, "object not bound"),
            InvokeError::AccessDenied => write!(f, "write access denied"),
            InvokeError::Timeout => write!(f, "invocation timed out"),
            InvokeError::PeerUnreachable => write!(f, "replica unreachable"),
            InvokeError::Sem(e) => write!(f, "semantics error: {e}"),
            InvokeError::Internal(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for InvokeError {}

/// Where a GRP message came from / should go to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Peer {
    /// Reply path: the connection the triggering message arrived on.
    Conn(u64),
    /// A replica's advertised GRP endpoint (opens or reuses a pooled
    /// connection).
    Addr(Endpoint),
}

/// One observed attempt outcome against a replica endpoint, queued for
/// the runtime's [`HealthLedger`](crate::health::HealthLedger).
#[derive(Debug, Clone, Copy)]
pub(crate) enum HealthEvent {
    /// The replica answered; round-trip latency attached.
    Success(SimDuration),
    /// The attempt failed for the classified reason.
    Failure(FailureReason),
}

/// One finished invocation: `(token, result, serving replica)` — the
/// endpoint is `None` when the invocation was served locally (full
/// replicas, cache hits).
pub(crate) type Completion = (u64, Result<Vec<u8>, InvokeError>, Option<Endpoint>);

/// Effects a replication subobject requests during one call.
#[derive(Debug, Default)]
pub(crate) struct ReplEffects {
    pub sends: Vec<(Peer, GrpBody)>,
    /// One body to many peers: the runtime encodes the frame once.
    pub multicasts: Vec<(Vec<Peer>, GrpBody)>,
    pub timers: Vec<(globe_sim::SimDuration, u64)>,
    pub completions: Vec<Completion>,
    /// Attempt outcomes to fold into the runtime's health ledger.
    pub health: Vec<(Endpoint, HealthEvent)>,
    pub stale_reads: u64,
    pub fresh_reads: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub deltas_applied: u64,
    /// State may have changed; the runtime schedules persistence.
    pub dirty: bool,
    /// The change must be checkpointed at the next flush (writes,
    /// full-state installs). Dirty-but-not-eager batches (delta
    /// applications) may defer their checkpoint a bounded number of
    /// versions.
    pub dirty_eager: bool,
}

/// The execution context handed to a replication subobject.
///
/// Borrow structure: the runtime splits one local representative into
/// its semantics subobject, version counter and protocol state, and
/// collects all outward effects for translation after the protocol code
/// returns (no aliasing with the network layer).
pub struct ReplCtx<'a> {
    pub(crate) oid: u128,
    pub(crate) my_grp: Endpoint,
    pub(crate) now: SimTime,
    pub(crate) sem: Option<&'a mut Box<dyn SemanticsObject>>,
    pub(crate) version: &'a mut u64,
    pub(crate) epoch: &'a mut u64,
    /// Runtime-unique value mixed into minted epochs (two incarnations
    /// created at the same virtual instant must still differ).
    pub(crate) epoch_nonce: u64,
    pub(crate) kind_of: &'a dyn Fn(MethodId) -> MethodKind,
    pub(crate) oracle_version: u64,
    /// The host's shared content-addressed chunk store (the semantics
    /// subobject holds the same handle via `attach_chunk_store`).
    pub(crate) chunks: ChunkStoreRef,
    pub(crate) effects: ReplEffects,
}

impl<'a> ReplCtx<'a> {
    /// The object this representative belongs to.
    pub fn oid(&self) -> u128 {
        self.oid
    }

    /// This representative's GRP endpoint (what peers would dial).
    pub fn my_grp(&self) -> Endpoint {
        self.my_grp
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Classifies a method (unknown methods classify as writes, the
    /// conservative direction for routing and access control).
    pub fn kind_of(&self, m: MethodId) -> MethodKind {
        (self.kind_of)(m)
    }

    /// Executes an invocation on the local semantics subobject.
    ///
    /// Fails with [`InvokeError::Internal`] on pure proxies, which have
    /// no semantics instance.
    pub fn exec(&mut self, inv: &Invocation) -> Result<Vec<u8>, InvokeError> {
        // Reads mark the batch dirty only conservatively (the digest
        // gate clears them for free); writes force an eager checkpoint.
        self.effects.dirty = true;
        if self.kind_of(inv.method) == MethodKind::Write {
            self.effects.dirty_eager = true;
        }
        match self.sem.as_deref_mut() {
            Some(sem) => sem
                .dispatch(inv)
                .map_err(|e| InvokeError::Sem(e.to_string())),
            None => Err(InvokeError::Internal("no semantics subobject")),
        }
    }

    /// Serializes the local state (for state transfer).
    pub fn state(&self) -> Vec<u8> {
        self.sem
            .as_deref()
            .map(|s| s.get_state())
            .unwrap_or_default()
    }

    /// Installs a state blob at `version` of lineage `epoch`.
    pub fn install_state(
        &mut self,
        version: u64,
        epoch: u64,
        state: &[u8],
    ) -> Result<(), InvokeError> {
        let sem = self
            .sem
            .as_deref_mut()
            .ok_or(InvokeError::Internal("no semantics subobject"))?;
        sem.set_state(state)
            .map_err(|e| InvokeError::Sem(e.to_string()))?;
        *self.version = version;
        *self.epoch = epoch;
        self.effects.dirty = true;
        self.effects.dirty_eager = true;
        Ok(())
    }

    /// Drains the semantics subobject's mutation log (one write's worth
    /// when called per write), or `None` when the class keeps none.
    pub fn take_delta(&mut self) -> Option<Vec<u8>> {
        self.sem.as_deref_mut().and_then(|s| s.take_delta())
    }

    /// The version *lineage* this copy belongs to (`0` = unknown).
    ///
    /// Version numbers restart when a replica is deleted and recreated,
    /// so they are only comparable within one lineage; deltas never
    /// splice across lineages. The epoch lives next to the version in
    /// the local representative, so it survives proxy re-binds and —
    /// for persistent replicas — restarts.
    pub fn copy_epoch(&self) -> u64 {
        *self.epoch
    }

    /// Returns this copy's lineage, minting a fresh one on first call —
    /// write-accepting replicas do this at install so every incarnation
    /// with a new history gets a distinct epoch, while a replica
    /// restored from stable storage keeps the lineage it persisted
    /// (its history genuinely continues).
    pub fn ensure_epoch(&mut self) -> u64 {
        if *self.epoch == 0 {
            let ep = self.my_grp;
            let mixed = self.now.as_nanos().wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.epoch_nonce.wrapping_mul(0xFF51_AFD7_ED55_8CCD)
                ^ (self.oid as u64).rotate_left(17)
                ^ (((ep.host.0 as u64) << 40) | ep.port as u64);
            *self.epoch = mixed | 1;
        }
        *self.epoch
    }

    /// Splices a [`GrpBody::Delta`] into the
    /// local copy: applies the payload on top of the exact predecessor
    /// version and advances to `to_version`.
    ///
    /// An empty payload with `from_version == to_version` is a
    /// freshness confirmation and leaves the state untouched. The
    /// resulting dirtiness is *deferrable* (see `ReplEffects`): a
    /// delta-fed replica may checkpoint lazily because it can always be
    /// re-derived from its master.
    pub fn apply_delta(
        &mut self,
        from_version: u64,
        to_version: u64,
        epoch: u64,
        payload: &[u8],
    ) -> Result<(), InvokeError> {
        if epoch == 0 || *self.epoch != epoch {
            return Err(InvokeError::Internal("delta lineage mismatch"));
        }
        if from_version != *self.version || to_version < from_version {
            return Err(InvokeError::Internal("delta version gap"));
        }
        if to_version == from_version && payload.is_empty() {
            return Ok(());
        }
        let sem = self
            .sem
            .as_deref_mut()
            .ok_or(InvokeError::Internal("no semantics subobject"))?;
        sem.apply_delta(payload)
            .map_err(|e| InvokeError::Sem(e.to_string()))?;
        *self.version = to_version;
        self.effects.dirty = true;
        self.effects.deltas_applied += 1;
        Ok(())
    }

    /// The host's shared content-addressed chunk store.
    pub fn chunk_store(&self) -> &ChunkStoreRef {
        &self.chunks
    }

    /// Serializes the local state as a skeleton + chunk manifest (see
    /// [`SemanticsObject::save_chunked`]); `None` when the class keeps
    /// no chunked state (protocols fall back to full-state transfer).
    pub fn save_chunked(&self) -> Option<(Vec<u8>, Vec<ChunkRef>)> {
        self.sem.as_deref().and_then(|s| s.save_chunked())
    }

    /// Installs a chunked state (skeleton + manifest, all chunks
    /// present in the store) at `version` of lineage `epoch` — the
    /// compact-propagation counterpart of [`ReplCtx::install_state`].
    pub fn install_chunked(
        &mut self,
        version: u64,
        epoch: u64,
        skeleton: &[u8],
        manifest: &[ChunkRef],
    ) -> Result<(), InvokeError> {
        let sem = self
            .sem
            .as_deref_mut()
            .ok_or(InvokeError::Internal("no semantics subobject"))?;
        sem.restore_chunked(skeleton, manifest)
            .map_err(|e| InvokeError::Sem(e.to_string()))?;
        *self.version = version;
        *self.epoch = epoch;
        self.effects.dirty = true;
        self.effects.dirty_eager = true;
        Ok(())
    }

    /// The representative's current state version.
    pub fn version(&self) -> u64 {
        *self.version
    }

    /// Increments and returns the state version (masters call this per
    /// write).
    pub fn bump_version(&mut self) -> u64 {
        *self.version += 1;
        self.effects.dirty = true;
        self.effects.dirty_eager = true;
        *self.version
    }

    /// Sends a GRP message to a peer of this object.
    pub fn send(&mut self, to: Peer, body: GrpBody) {
        self.effects.sends.push((to, body));
    }

    /// Sends one GRP message to many peers; the runtime encodes the
    /// frame once and fans the identical bytes out per connection.
    pub fn multicast(&mut self, to: Vec<Peer>, body: GrpBody) {
        if !to.is_empty() {
            self.effects.multicasts.push((to, body));
        }
    }

    /// Completes a local invocation started with this `token`.
    pub fn complete(&mut self, token: u64, result: Result<Vec<u8>, InvokeError>) {
        self.effects.completions.push((token, result, None));
    }

    /// Completes a local invocation that was served by the remote
    /// replica at `replica`, so the client can report which candidate
    /// answered (and its health bucket) in the op's completion.
    pub fn complete_from(
        &mut self,
        token: u64,
        result: Result<Vec<u8>, InvokeError>,
        replica: Endpoint,
    ) {
        self.effects
            .completions
            .push((token, result, Some(replica)));
    }

    /// Reports a successful attempt served by `replica` with the
    /// observed round-trip `latency` to the runtime's health ledger.
    pub fn report_success(&mut self, replica: Endpoint, latency: SimDuration) {
        self.effects
            .health
            .push((replica, HealthEvent::Success(latency)));
    }

    /// Reports a failed attempt against `replica`, classified by
    /// `reason`, to the runtime's health ledger.
    pub fn report_failure(&mut self, replica: Endpoint, reason: FailureReason) {
        self.effects
            .health
            .push((replica, HealthEvent::Failure(reason)));
    }

    /// Schedules [`ReplicationSubobject::on_timer`] with `subtoken`.
    pub fn set_timer(&mut self, delay: globe_sim::SimDuration, subtoken: u64) {
        self.effects.timers.push((delay, subtoken));
    }

    /// Records whether a locally served read saw the newest version.
    ///
    /// This consults a measurement-only oracle (the writes counter kept
    /// by the metrics registry); protocols never act on it — it exists
    /// so experiments can report stale-read fractions.
    pub fn record_read_freshness(&mut self) {
        if *self.version < self.oracle_version {
            self.effects.stale_reads += 1;
        } else {
            self.effects.fresh_reads += 1;
        }
    }
}

/// The standard interface of replication subobjects (paper §3.3).
///
/// Implementations never touch sockets, certificates or marshalled
/// argument contents: they see opaque [`Invocation`]s, peers as
/// [`Peer`] handles, and act through [`ReplCtx`].
pub trait ReplicationSubobject: 'static {
    /// The protocol identifier registered in contact addresses.
    fn proto(&self) -> u16;

    /// Whether this representative accepts state-modifying invocations
    /// (sets the contact-address write flag).
    fn accepts_writes(&self) -> bool;

    /// Whether this representative should be registered in the GLS as a
    /// contactable replica (proxies and caches are not).
    fn is_replica(&self) -> bool;

    /// Serializable role description, for object-server persistence.
    fn descriptor(&self) -> RoleSpec;

    /// Called once when the representative is installed.
    fn on_install(&mut self, _c: &mut ReplCtx<'_>) {}

    /// A local client invoked a method; complete it now or later via
    /// [`ReplCtx::complete`].
    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation);

    /// A GRP message for this object arrived (already authenticated and
    /// authorized by the runtime).
    fn on_grp(&mut self, c: &mut ReplCtx<'_>, from: Peer, body: GrpBody);

    /// A timer set through [`ReplCtx::set_timer`] fired.
    fn on_timer(&mut self, _c: &mut ReplCtx<'_>, _subtoken: u64) {}

    /// A peer replica became unreachable.
    fn on_peer_gone(&mut self, _c: &mut ReplCtx<'_>, _peer: Endpoint) {}

    /// The remote candidate endpoints this representative can direct
    /// invocations at, best-ranked first. Empty for full replicas
    /// (everything executes locally) — client-side proxies expose their
    /// replica list here so the runtime can build a
    /// [`CandidateSet`](crate::client::CandidateSet) without knowing
    /// the protocol.
    fn targets(&self) -> Vec<Endpoint> {
        Vec::new()
    }

    /// The candidate currently serving reads, if any.
    fn current_target(&self) -> Option<Endpoint> {
        None
    }

    /// Redirects subsequent reads at `ep`; returns `false` when `ep` is
    /// not one of this representative's candidates (or the protocol has
    /// no notion of a read target). The health-ranked retry path uses
    /// this to rotate within the bound candidate set instead of
    /// re-resolving through the GLS.
    fn retarget(&mut self, _ep: Endpoint) -> bool {
        false
    }

    /// Adds `eps` to this representative's candidate set without
    /// disturbing the current read target; returns how many were new.
    /// The runtime's background candidate-set enrichment calls this
    /// when an exploratory lookup surfaces replicas the binding lookup
    /// (which answers with the nearest replica only) never named.
    /// Default: the protocol has no candidate set to widen.
    fn widen_targets(&mut self, _eps: &[Endpoint]) -> usize {
        0
    }

    /// Protocol state worth persisting alongside the replica blob
    /// (appended by the object server's `encode_replica`). The shipped
    /// protocols persist their [`GrpBody::Refresh`]-answering delta
    /// history here, so a warm restart can still catch requesters up
    /// with deltas instead of full state. Default: nothing.
    fn persist_extra(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state produced by [`ReplicationSubobject::persist_extra`]
    /// after a restart. Undecodable or empty blobs must degrade to the
    /// blank default, never fail — the extra blob is an optimization,
    /// not correctness-bearing state.
    fn restore_extra(&mut self, _data: &[u8]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invoke_error_display() {
        assert!(InvokeError::AccessDenied.to_string().contains("denied"));
        assert!(InvokeError::Timeout.to_string().contains("timed out"));
        assert!(InvokeError::Sem("x".into()).to_string().contains('x'));
    }

    #[test]
    fn peer_equality() {
        assert_eq!(Peer::Conn(1), Peer::Conn(1));
        assert_ne!(Peer::Conn(1), Peer::Conn(2));
    }
}
