//! Catalog browsing: a second DSO class in action.
//!
//! The typed interface layer makes "add a new distributed shared object
//! class" a one-file affair; this example exercises the one shipped
//! beyond packages — the catalog DSO, a read-heavy package index
//! published under a cache-proxy scenario. A moderator publishes two
//! packages and a catalog indexing them; a user on the far side of the
//! world lists the catalog, searches it, and follows its link into a
//! package download.
//!
//! Run with: `cargo run --example catalog_browse`

use globe::gdn::catalog::{catalog_publish_op, CatalogEntry};
use globe::gdn::{Browser, GdnDeployment, GdnOptions, ModEvent, ModOp, ModeratorTool, Scenario};
use globe::net::{ports, HostId, NetParams, Topology, World};
use globe::sim::SimDuration;

fn main() {
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), 2112);
    let gdn = GdnDeployment::install(&mut world, GdnOptions::default());

    // Moderator alice publishes two packages, then a catalog DSO
    // indexing them. The catalog gets its own replication scenario —
    // cache-proxy, since browsing is read-heavy.
    let gos = gdn.gos_for(world.topology(), HostId(0));
    let ops = vec![
        ModOp::Publish {
            name: "/apps/graphics/gimp".into(),
            description: "GNU Image Manipulation Program".into(),
            files: vec![("README".into(), b"The GIMP. Free as in freedom.".to_vec())],
            scenario: Scenario::single(gos),
        },
        ModOp::Publish {
            name: "/apps/editors/emacs".into(),
            description: "the extensible, customizable editor".into(),
            files: vec![("emacs.tar".into(), vec![0xE0; 100_000])],
            scenario: Scenario::single(gos),
        },
        catalog_publish_op(
            "/catalog/main",
            vec![
                CatalogEntry {
                    name: "/apps/graphics/gimp".into(),
                    description: "GNU Image Manipulation Program".into(),
                },
                CatalogEntry {
                    name: "/apps/editors/emacs".into(),
                    description: "the extensible, customizable editor".into(),
                },
            ],
            Scenario::cached(gos),
        ),
    ];
    let tool = gdn.moderator_tool(world.topology(), HostId(1), "alice", ops);
    world.add_service(HostId(1), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(60));

    let tool = world
        .service::<ModeratorTool>(HostId(1), ports::DRIVER)
        .expect("moderator tool");
    for ev in &tool.results {
        match ev {
            ModEvent::PublishDone {
                name,
                result: Ok(oid),
            } => println!("published {name} as {oid:?}"),
            other => panic!("publish failed: {other:?}"),
        }
    }

    // A user in the other region: list the catalog, search it, follow
    // the link it renders into a package file.
    let user = HostId(13);
    let access_point = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(
        access_point,
        vec![
            "/catalog/catalog/main".into(),
            "/catalog/catalog/main?q=editor".into(),
            "/pkg/apps/editors/emacs?file=emacs.tar".into(),
        ],
    )
    .keeping_bodies();
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(120));

    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert!(b.done(), "fetches incomplete: {:?}", b.results);
    for r in &b.results {
        println!("GET {:<35} -> {} ({} bytes)", r.path, r.status, r.body_len);
    }
    let index = String::from_utf8_lossy(&b.results[0].body);
    assert!(index.contains("href=\"/pkg/apps/graphics/gimp\""));
    let hits = String::from_utf8_lossy(&b.results[1].body);
    assert!(hits.contains("emacs") && !hits.contains("gimp"));
    assert_eq!(b.results[2].status, 200);
    assert_eq!(b.results[2].body_len, 100_000);
    println!("catalog browse, search and linked download all verified");
}
