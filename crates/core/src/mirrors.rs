//! The mirror-list DSO: where a package's bits can be fetched from.
//!
//! "On the Superdistribution of Digital Goods" (see PAPERS.md) frames
//! free-software distribution as an economy of redistributing sites;
//! the operational artifact of that economy is the *mirror list* — the
//! set of hosts a region's users should download from. Mirror lists
//! complete the GDN's workload spectrum: packages are write-rarely but
//! bulky, catalogs are read-heavy indexes, download stats are
//! write-heavy counters, and mirror lists are *write-rarely* metadata —
//! updated when an operator joins or leaves (days apart), read by every
//! client choosing a download source. The matching scenarios replicate
//! aggressively (stale mirror lists are cheap, reads are everything),
//! which is exactly what the scenario sweep measures against the other
//! classes.
//!
//! The whole class is this one file: typed argument/result structs, the
//! semantics subobject, and one [`globe_rts::dso_interface!`]
//! declaration — the interface layer derives the rest.

use std::collections::BTreeMap;

use globe_rts::interface::{DsoInterface, DsoState};
use globe_rts::{dso_interface, wire_struct, ImplId, Invocation, SemError};

use crate::delta::MutationLog;
use crate::modtool::{ModOp, Scenario};

/// The mirror-list class's identifier in the implementation repository.
pub const MIRRORS_IMPL: ImplId = <MirrorListInterface as DsoInterface>::IMPL;

wire_struct! {
    /// One mirror site: `addMirror` arguments and listing element.
    pub struct Mirror {
        /// The mirror's URL, e.g. `http://ftp.example.nl/globe`.
        pub url: String,
        /// The topology region the mirror serves from.
        pub region: u32,
        /// Advertised capacity, megabits per second.
        pub bandwidth_mbps: u32,
    }
}

wire_struct! {
    /// `removeMirror` arguments.
    pub struct RemoveMirror {
        /// The URL to drop from the list.
        pub url: String,
    }
}

wire_struct! {
    /// `inRegion` arguments.
    pub struct RegionQuery {
        /// The region whose mirrors are wanted.
        pub region: u32,
    }
}

/// Delta op: add (or replace) one mirror.
const DOP_ADD: u8 = 1;
/// Delta op: drop one mirror.
const DOP_REMOVE: u8 = 2;

/// The mirror-list semantics subobject: a keyed set of mirror sites.
#[derive(Default)]
pub struct MirrorListDso {
    /// url → (region, bandwidth).
    mirrors: BTreeMap<String, (u32, u32)>,
    /// Mutations since the last delta drain (delta replication).
    log: MutationLog,
    /// Bumped on every state change: the cheap persistence digest.
    gen: u64,
}

impl MirrorListDso {
    /// Creates an empty mirror list.
    pub fn new() -> MirrorListDso {
        MirrorListDso::default()
    }

    /// Number of listed mirrors (direct inspection for tests).
    pub fn len(&self) -> usize {
        self.mirrors.len()
    }

    /// Whether no mirrors are listed.
    pub fn is_empty(&self) -> bool {
        self.mirrors.is_empty()
    }

    // Typed method handlers, dispatched by the interface declaration
    // below.

    fn add_mirror(&mut self, args: Mirror) -> Result<(), SemError> {
        self.log.record(|w| {
            w.put_u8(DOP_ADD);
            w.put_str(&args.url);
            w.put_u32(args.region);
            w.put_u32(args.bandwidth_mbps);
        });
        self.gen += 1;
        self.mirrors
            .insert(args.url, (args.region, args.bandwidth_mbps));
        Ok(())
    }

    fn remove_mirror(&mut self, args: RemoveMirror) -> Result<(), SemError> {
        if self.mirrors.remove(&args.url).is_none() {
            return Err(SemError::Application(format!("no mirror {:?}", args.url)));
        }
        self.log.record(|w| {
            w.put_u8(DOP_REMOVE);
            w.put_str(&args.url);
        });
        self.gen += 1;
        Ok(())
    }

    fn list(&mut self, _args: ()) -> Result<Vec<Mirror>, SemError> {
        Ok(self
            .mirrors
            .iter()
            .map(|(url, &(region, bandwidth_mbps))| Mirror {
                url: url.clone(),
                region,
                bandwidth_mbps,
            })
            .collect())
    }

    fn in_region(&mut self, args: RegionQuery) -> Result<Vec<Mirror>, SemError> {
        let mut hits: Vec<Mirror> = self
            .mirrors
            .iter()
            .filter(|(_, &(region, _))| region == args.region)
            .map(|(url, &(region, bandwidth_mbps))| Mirror {
                url: url.clone(),
                region,
                bandwidth_mbps,
            })
            .collect();
        // Fattest pipe first; URLs break ties deterministically.
        hits.sort_by(|a, b| {
            b.bandwidth_mbps
                .cmp(&a.bandwidth_mbps)
                .then(a.url.cmp(&b.url))
        });
        Ok(hits)
    }
}

impl DsoState for MirrorListDso {
    fn save(&self) -> Vec<u8> {
        use globe_net::WireWriter;
        let mut w = WireWriter::new();
        w.put_u32(self.mirrors.len() as u32);
        for (url, &(region, bandwidth)) in &self.mirrors {
            w.put_str(url);
            w.put_u32(region);
            w.put_u32(bandwidth);
        }
        w.finish()
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        let parse = || -> Result<BTreeMap<String, (u32, u32)>, WireError> {
            let mut r = WireReader::new(state);
            let n = r.u32()?;
            if n > 1_000_000 {
                return Err(WireError::TooLarge);
            }
            let mut mirrors = BTreeMap::new();
            for _ in 0..n {
                let url = r.str()?.to_owned();
                let region = r.u32()?;
                let bandwidth = r.u32()?;
                mirrors.insert(url, (region, bandwidth));
            }
            r.expect_end()?;
            Ok(mirrors)
        };
        self.mirrors = parse().map_err(|_| SemError::BadState)?;
        // New baseline: undrained mutations predate it.
        self.log.reset();
        self.gen += 1;
        Ok(())
    }

    fn digest(&self) -> u64 {
        self.gen
    }

    fn take_delta(&mut self) -> Option<Vec<u8>> {
        self.log.take()
    }

    fn apply_delta(&mut self, delta: &[u8]) -> Result<(), SemError> {
        use globe_net::{WireError, WireReader};
        /// One decoded delta op: add/replace (`Some(entry)`) or drop.
        type MirrorOp = (String, Option<(u32, u32)>);
        let parse = || -> Result<Vec<MirrorOp>, WireError> {
            let mut r = WireReader::new(delta);
            let mut ops = Vec::new();
            while r.remaining() > 0 {
                ops.push(match r.u8()? {
                    DOP_ADD => {
                        let url = r.str()?.to_owned();
                        (url, Some((r.u32()?, r.u32()?)))
                    }
                    DOP_REMOVE => (r.str()?.to_owned(), None),
                    t => return Err(WireError::BadTag(t)),
                });
            }
            Ok(ops)
        };
        let ops = parse().map_err(|_| SemError::BadState)?;
        for (url, entry) in ops {
            match entry {
                Some(e) => {
                    self.mirrors.insert(url, e);
                }
                None => {
                    self.mirrors.remove(&url);
                }
            }
        }
        self.gen += 1;
        Ok(())
    }
}

dso_interface! {
    /// The mirror-list DSO interface: add/remove/list/inRegion,
    /// write-rarely.
    pub interface MirrorListInterface {
        class: "gdn-mirror-list",
        impl_id: 13,
        semantics: MirrorListDso,
        methods: {
            /// Adds (or replaces) a mirror. Write; keyed on the URL, so
            /// re-invoking is safe.
            1 => write(idempotent) ADD_MIRROR/add_mirror(Mirror) -> (),
            /// Drops a mirror. Write; a repeat leaves the same state.
            2 => write(idempotent) REMOVE_MIRROR/remove_mirror(RemoveMirror) -> (),
            /// Lists every mirror. Read.
            3 => read LIST/list(()) -> Vec<Mirror>,
            /// The mirrors serving one region, fattest pipe first. Read.
            4 => read IN_REGION/in_region(RegionQuery) -> Vec<Mirror>,
        }
    }
}

/// Builds the moderator operation publishing a mirror list under `name`
/// with the given initial mirrors and replication scenario.
pub fn mirrors_publish_op(name: &str, mirrors: Vec<Mirror>, scenario: Scenario) -> ModOp {
    let fill: Vec<Invocation> = mirrors
        .iter()
        .map(|m| MirrorListInterface::ADD_MIRROR.invocation(m))
        .collect();
    ModOp::PublishObject {
        name: name.to_owned(),
        impl_id: MIRRORS_IMPL,
        scenario,
        fill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_rts::{MethodId, MethodKind, SemanticsObject};

    fn mirror(url: &str, region: u32, bw: u32) -> Mirror {
        Mirror {
            url: url.into(),
            region,
            bandwidth_mbps: bw,
        }
    }

    fn fill() -> MirrorListDso {
        let mut m = MirrorListDso::new();
        for entry in [
            mirror("http://ftp.nl/globe", 0, 100),
            mirror("http://ftp.us/globe", 1, 1000),
            mirror("http://ftp2.us/globe", 1, 10),
        ] {
            m.dispatch(&MirrorListInterface::ADD_MIRROR.invocation(&entry))
                .unwrap();
        }
        m
    }

    #[test]
    fn add_list_query_remove() {
        let mut m = fill();
        assert_eq!(m.len(), 3);

        let raw = m
            .dispatch(&MirrorListInterface::LIST.invocation(&()))
            .unwrap();
        let all = MirrorListInterface::LIST.decode_result(&raw).unwrap();
        assert_eq!(all.len(), 3);

        let raw = m
            .dispatch(&MirrorListInterface::IN_REGION.invocation(&RegionQuery { region: 1 }))
            .unwrap();
        let us = MirrorListInterface::IN_REGION.decode_result(&raw).unwrap();
        assert_eq!(us.len(), 2);
        // Fattest pipe first.
        assert_eq!(us[0].url, "http://ftp.us/globe");

        m.dispatch(
            &MirrorListInterface::REMOVE_MIRROR.invocation(&RemoveMirror {
                url: "http://ftp.nl/globe".into(),
            }),
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert!(m
            .dispatch(
                &MirrorListInterface::REMOVE_MIRROR.invocation(&RemoveMirror {
                    url: "http://ftp.nl/globe".into(),
                })
            )
            .is_err());
    }

    #[test]
    fn state_transfer_preserves_list() {
        let a = fill();
        let mut b = MirrorListDso::new();
        b.set_state(&a.get_state()).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.get_state(), a.get_state());
        assert!(b.set_state(&[9, 9]).is_err());
    }

    #[test]
    fn deltas_match_full_state() {
        let mut a = MirrorListDso::new();
        let mut b = MirrorListDso::new();
        b.set_state(&a.get_state()).unwrap();
        let _ = SemanticsObject::take_delta(&mut a);

        a.dispatch(&MirrorListInterface::ADD_MIRROR.invocation(&mirror("http://x", 0, 7)))
            .unwrap();
        a.dispatch(&MirrorListInterface::ADD_MIRROR.invocation(&mirror("http://y", 2, 9)))
            .unwrap();
        a.dispatch(
            &MirrorListInterface::REMOVE_MIRROR.invocation(&RemoveMirror {
                url: "http://x".into(),
            }),
        )
        .unwrap();
        let delta = SemanticsObject::take_delta(&mut a).unwrap();
        SemanticsObject::apply_delta(&mut b, &delta).unwrap();
        assert_eq!(b.get_state(), a.get_state());
        assert!(SemanticsObject::apply_delta(&mut b, &[0xFF]).is_err());
    }

    #[test]
    fn dispatch_is_total() {
        let mut m = MirrorListDso::new();
        assert_eq!(
            m.dispatch(&Invocation::new(
                MirrorListInterface::ADD_MIRROR.id(),
                vec![2]
            )),
            Err(SemError::BadArguments)
        );
        assert!(matches!(
            m.dispatch(&Invocation::new(MethodId(200), vec![])),
            Err(SemError::NoSuchMethod(_))
        ));
    }

    #[test]
    fn class_registration_and_kinds() {
        let mut repo = globe_rts::ImplRepository::new();
        MirrorListInterface::register(&mut repo);
        assert!(repo.contains(MIRRORS_IMPL));
        assert_eq!(
            repo.kind_of(MIRRORS_IMPL, MirrorListInterface::LIST.id()),
            Some(MethodKind::Read)
        );
        assert_eq!(
            repo.kind_of(MIRRORS_IMPL, MirrorListInterface::ADD_MIRROR.id()),
            Some(MethodKind::Write)
        );
    }

    #[test]
    fn publish_op_builds_typed_fill() {
        let op = mirrors_publish_op(
            "/mirrors/main",
            vec![mirror("http://a", 0, 1)],
            Scenario::single(globe_net::Endpoint::new(globe_net::HostId(0), 700)),
        );
        let ModOp::PublishObject { impl_id, fill, .. } = op else {
            panic!("wrong op variant");
        };
        assert_eq!(impl_id, MIRRORS_IMPL);
        assert_eq!(fill.len(), 1);
        assert_eq!(fill[0].method, MirrorListInterface::ADD_MIRROR.id());
    }
}
