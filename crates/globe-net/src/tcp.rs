//! Real-socket transport backend over `std::net`.
//!
//! [`TcpTransport`] runs the same [`Service`]s the simulated
//! [`World`](crate::World) runs, but over actual TCP/UDP sockets: one
//! OS process per configured host (or set of hosts), nonblocking
//! sockets driven by a single poll loop, and a background thread per
//! in-flight `connect` so a slow handshake never stalls the loop. See
//! [`Transport`] for the exact contract shared with the simulation.
//!
//! ## Address mapping
//!
//! Simulated endpoints are `(host, port)` pairs; every host in the
//! topology is assigned a [`NodeAddr`] — an IP plus a *port base* — and
//! the real socket address of endpoint `(h, p)` is
//! `addrs[h].ip : addrs[h].base + p`. Distinct bases let many hosts
//! share one loopback interface without port collisions.
//!
//! ## Wire mapping
//!
//! Streams reuse the `wire` conventions: every logical message travels
//! as one `u32` big-endian length prefix followed by the payload, with
//! the same 64 MiB cap [`crate::wire::MAX_FIELD`] enforces on fields.
//! The first frame on every connection is a *hello* carrying the
//! client's simulated endpoint (`u32` host, `u16` port, written with
//! [`WireWriter`]), so the server side can deliver
//! [`ConnEvent::Incoming`] with a meaningful `from`. Datagrams carry
//! the same 6-byte source header ahead of the payload.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use globe_sim::{Metrics, Rng, SimDuration, SimTime, TraceLog};

use crate::payload::Payload;
use crate::service::{service_rng_stream, Effect, Service, ServiceCtx};
use crate::topology::{HostId, Topology};
use crate::transport::{CloseReason, ConnEvent, ConnId, Endpoint, TimerId, Transport};
use crate::wire::{WireReader, WireWriter, MAX_FIELD};

/// Where a topology host lives on the real network.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NodeAddr {
    /// The host's IP address (loopback in tests; any interface works).
    pub ip: IpAddr,
    /// Real port for simulated port `p` is `base + p`.
    pub base: u16,
}

impl NodeAddr {
    /// Creates a node address.
    pub fn new(ip: IpAddr, base: u16) -> NodeAddr {
        NodeAddr { ip, base }
    }

    /// The real socket address of simulated port `port` on this node.
    pub fn socket_addr(&self, port: u16) -> SocketAddr {
        let real = self
            .base
            .checked_add(port)
            .expect("port base + service port overflows u16");
        SocketAddr::new(self.ip, real)
    }
}

/// Encodes the hello / datagram source header: `u32` host, `u16` port.
pub fn encode_source(ep: Endpoint) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(ep.host.0);
    w.put_u16(ep.port);
    w.finish()
}

/// Decodes a 6-byte hello / datagram source header.
pub fn decode_source(bytes: &[u8]) -> Option<Endpoint> {
    let mut r = WireReader::new(bytes);
    let host = r.u32().ok()?;
    let port = r.u16().ok()?;
    r.expect_end().ok()?;
    Some(Endpoint::new(HostId(host), port))
}

/// Frames one logical message for the stream: `u32` big-endian length
/// prefix + payload (the framing real TCP clients must speak).
pub fn frame(msg: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + msg.len());
    frame_into(&mut out, msg);
    out
}

/// Appends one framed message to `out` without an intermediate
/// allocation (the hot path for connection output buffers).
pub fn frame_into(out: &mut Vec<u8>, msg: &[u8]) {
    out.reserve(4 + msg.len());
    out.extend_from_slice(&(msg.len() as u32).to_be_bytes());
    out.extend_from_slice(msg);
}

/// What a stream connection is currently doing.
enum StreamState {
    /// Outgoing: the background connect thread has not reported yet.
    /// Messages sent meanwhile queue here.
    Connecting { queued: Vec<Payload> },
    /// Incoming: accepted, waiting for the peer's hello frame.
    AwaitHello,
    /// Established in both directions.
    Open,
}

struct Stream {
    /// `None` while an outgoing connect is still in flight.
    stream: Option<TcpStream>,
    /// The local service this connection belongs to.
    owner: Endpoint,
    state: StreamState,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Local close requested: flush `outbuf`, then shut down and drop.
    closing: bool,
}

struct Slot {
    service: Option<Box<dyn Service>>,
    rng: Rng,
}

/// An event waiting to be dispatched to a local service.
enum Delivery {
    Start(Endpoint),
    Datagram {
        dst: Endpoint,
        from: Endpoint,
        payload: Vec<u8>,
    },
    Conn {
        dst: Endpoint,
        conn: ConnId,
        ev: ConnEvent,
    },
    Timer {
        dst: Endpoint,
        token: u64,
    },
}

struct TimerEntry {
    due: SimTime,
    seq: u64,
    id: TimerId,
    owner: Endpoint,
    token: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Result of one background connect attempt.
struct ConnectOutcome {
    conn: ConnId,
    result: std::io::Result<TcpStream>,
}

/// The real-socket transport: services on this process's hosts, driven
/// by wall-clock time over `std::net` sockets.
///
/// See the [module docs](self) for the address and wire mapping, and
/// [`Transport`] for the behavioural contract. Unlike the simulated
/// world, a `TcpTransport` instantiates only services whose host is in
/// its configured local set — deployment code that installs a whole
/// topology runs unchanged, and each process picks up its share.
pub struct TcpTransport {
    topo: Topology,
    seed: u64,
    epoch: Instant,
    addrs: BTreeMap<u32, NodeAddr>,
    local_hosts: BTreeSet<u32>,
    services: BTreeMap<(u32, u16), Slot>,
    listeners: BTreeMap<(u32, u16), TcpListener>,
    udps: BTreeMap<(u32, u16), UdpSocket>,
    conns: BTreeMap<u64, Stream>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    cancelled: HashSet<u64>,
    pending: VecDeque<Delivery>,
    stable: BTreeMap<u32, BTreeMap<String, Vec<u8>>>,
    metrics: Metrics,
    trace: TraceLog,
    connect_tx: mpsc::Sender<ConnectOutcome>,
    connect_rx: mpsc::Receiver<ConnectOutcome>,
    connect_timeout: Duration,
    next_conn: u64,
    next_timer: u64,
    started: bool,
    /// Reused receive scratch for the UDP and TCP pump loops; allocating
    /// 64 KiB per poll iteration showed up as the loop's top allocator.
    udp_scratch: Vec<u8>,
    read_scratch: Vec<u8>,
}

impl TcpTransport {
    /// Creates a transport for the hosts in `local_hosts`, with every
    /// topology host mapped to a real address by `addrs`.
    ///
    /// Sockets are bound when services are added; the loop runs only
    /// inside [`Transport::run_for`] / [`TcpTransport::run_while`].
    pub fn new(
        topo: Topology,
        seed: u64,
        addrs: BTreeMap<u32, NodeAddr>,
        local_hosts: impl IntoIterator<Item = HostId>,
    ) -> TcpTransport {
        let (connect_tx, connect_rx) = mpsc::channel();
        TcpTransport {
            topo,
            seed,
            epoch: Instant::now(),
            addrs,
            local_hosts: local_hosts.into_iter().map(|h| h.0).collect(),
            services: BTreeMap::new(),
            listeners: BTreeMap::new(),
            udps: BTreeMap::new(),
            conns: BTreeMap::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            cancelled: HashSet::new(),
            pending: VecDeque::new(),
            stable: BTreeMap::new(),
            metrics: Metrics::new(),
            trace: TraceLog::disabled(),
            connect_tx,
            connect_rx,
            connect_timeout: Duration::from_secs(3),
            next_conn: 1,
            next_timer: 1,
            started: false,
            udp_scratch: vec![0u8; 65536],
            read_scratch: vec![0u8; 65536],
        }
    }

    /// Overrides the TCP connect timeout (default 3 s, matching the
    /// simulation's `NetParams::connect_timeout`).
    pub fn set_connect_timeout(&mut self, t: Duration) {
        self.connect_timeout = t;
    }

    /// Replaces the trace log.
    pub fn set_trace(&mut self, trace: TraceLog) {
        self.trace = trace;
    }

    /// The trace log, for draining entries (e.g. to a process's stderr).
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// Immutable, typed access to a local service.
    pub fn service<S: Service>(&self, host: HostId, port: u16) -> Option<&S> {
        self.services
            .get(&(host.0, port))?
            .service
            .as_ref()?
            .as_any()
            .downcast_ref()
    }

    /// Mutable, typed access to a local service.
    pub fn service_mut<S: Service>(&mut self, host: HostId, port: u16) -> Option<&mut S> {
        self.services
            .get_mut(&(host.0, port))?
            .service
            .as_mut()?
            .as_any_mut()
            .downcast_mut()
    }

    /// Runs the poll loop for at most `d` of wall-clock time, stopping
    /// early once `keep_going` returns `false`.
    pub fn run_while(&mut self, d: Duration, mut keep_going: impl FnMut(&TcpTransport) -> bool) {
        let deadline = Instant::now() + d;
        while Instant::now() < deadline && keep_going(self) {
            let busy = self.poll_once();
            if !busy {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }

    fn now_inner(&self) -> SimTime {
        let elapsed = self.epoch.elapsed();
        SimTime::ZERO + SimDuration::from_nanos(elapsed.as_nanos().min(u64::MAX as u128) as u64)
    }

    fn real_addr(&self, ep: Endpoint) -> Option<SocketAddr> {
        self.addrs.get(&ep.host.0).map(|a| a.socket_addr(ep.port))
    }

    /// One pass over timers, connect results, sockets and the pending
    /// event queue. Returns whether any work was done.
    fn poll_once(&mut self) -> bool {
        let mut busy = false;
        busy |= self.fire_due_timers();
        busy |= self.drain_connects();
        busy |= self.accept_new();
        busy |= self.pump_udp();
        busy |= self.pump_streams();
        while let Some(d) = self.pending.pop_front() {
            busy = true;
            self.deliver(d);
        }
        busy
    }

    fn fire_due_timers(&mut self) -> bool {
        let now = self.now_inner();
        let mut fired = false;
        while let Some(Reverse(top)) = self.timers.peek() {
            if top.due > now {
                break;
            }
            let e = self.timers.pop().expect("peeked").0;
            if self.cancelled.remove(&e.id.0) {
                continue;
            }
            fired = true;
            self.pending.push_back(Delivery::Timer {
                dst: e.owner,
                token: e.token,
            });
        }
        fired
    }

    fn drain_connects(&mut self) -> bool {
        let mut busy = false;
        while let Ok(out) = self.connect_rx.try_recv() {
            busy = true;
            if !self.conns.contains_key(&out.conn.0) {
                continue; // closed while connecting
            }
            match out.result {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_err() {
                        self.drop_conn(out.conn, Some(CloseReason::Reset));
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let owner = {
                        let c = self.conns.get_mut(&out.conn.0).expect("checked above");
                        let queued = match &mut c.state {
                            StreamState::Connecting { queued } => std::mem::take(queued),
                            _ => Vec::new(),
                        };
                        c.stream = Some(stream);
                        c.state = StreamState::Open;
                        // Hello first, then anything sent before Opened.
                        let hello = encode_source(c.owner);
                        frame_into(&mut c.outbuf, &hello);
                        for msg in queued {
                            frame_into(&mut c.outbuf, &msg);
                        }
                        c.owner
                    };
                    self.pending.push_back(Delivery::Conn {
                        dst: owner,
                        conn: out.conn,
                        ev: ConnEvent::Opened,
                    });
                    if self.flush_conn(out.conn.0).is_err() {
                        self.drop_conn(out.conn, Some(CloseReason::Reset));
                    }
                }
                Err(e) => {
                    let reason = match e.kind() {
                        ErrorKind::ConnectionRefused => CloseReason::Refused,
                        ErrorKind::TimedOut | ErrorKind::WouldBlock => CloseReason::Timeout,
                        _ => CloseReason::Reset,
                    };
                    self.drop_conn(out.conn, Some(reason));
                }
            }
        }
        busy
    }

    fn accept_new(&mut self) -> bool {
        let mut busy = false;
        let keys: Vec<(u32, u16)> = self.listeners.keys().copied().collect();
        for key in keys {
            loop {
                match self.listeners[&key].accept() {
                    Ok((stream, _)) => {
                        busy = true;
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let conn = ConnId(self.next_conn);
                        self.next_conn += 1;
                        self.conns.insert(
                            conn.0,
                            Stream {
                                stream: Some(stream),
                                owner: Endpoint::new(HostId(key.0), key.1),
                                state: StreamState::AwaitHello,
                                inbuf: Vec::new(),
                                outbuf: Vec::new(),
                                closing: false,
                            },
                        );
                    }
                    Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        busy
    }

    fn pump_udp(&mut self) -> bool {
        let mut busy = false;
        let keys: Vec<(u32, u16)> = self.udps.keys().copied().collect();
        let mut buf = std::mem::take(&mut self.udp_scratch);
        for key in keys {
            let dst = Endpoint::new(HostId(key.0), key.1);
            loop {
                match self.udps[&key].recv_from(&mut buf) {
                    Ok((n, _)) => {
                        busy = true;
                        // 6-byte source header: u32 host, u16 port.
                        if n < 6 {
                            self.metrics.inc("net.dgrams_malformed", 1);
                            continue;
                        }
                        let Some(from) = decode_source(&buf[..6]) else {
                            self.metrics.inc("net.dgrams_malformed", 1);
                            continue;
                        };
                        self.pending.push_back(Delivery::Datagram {
                            dst,
                            from,
                            payload: buf[6..n].to_vec(),
                        });
                    }
                    Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        self.udp_scratch = buf;
        busy
    }

    fn pump_streams(&mut self) -> bool {
        enum Outcome {
            KeepOpen,
            Eof,
            Error,
        }
        let mut busy = false;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        let mut read_buf = std::mem::take(&mut self.read_scratch);
        for id in ids {
            let conn = ConnId(id);
            // Flush pending output first so closes can complete.
            match self.flush_conn(id) {
                Ok(did) => busy |= did,
                Err(()) => {
                    self.drop_conn(conn, Some(CloseReason::Reset));
                    continue;
                }
            }
            let outcome = {
                let Some(c) = self.conns.get_mut(&id) else {
                    continue;
                };
                let Some(s) = c.stream.as_mut() else {
                    continue;
                };
                let mut outcome = Outcome::KeepOpen;
                loop {
                    match s.read(&mut read_buf) {
                        Ok(0) => {
                            outcome = Outcome::Eof;
                            break;
                        }
                        Ok(n) => {
                            busy = true;
                            c.inbuf.extend_from_slice(&read_buf[..n]);
                        }
                        Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            outcome = Outcome::Error;
                            break;
                        }
                    }
                }
                outcome
            };
            self.extract_frames(conn);
            match outcome {
                Outcome::KeepOpen => {}
                Outcome::Eof => {
                    busy = true;
                    self.drop_conn(conn, Some(CloseReason::Normal));
                }
                Outcome::Error => {
                    busy = true;
                    self.drop_conn(conn, Some(CloseReason::Reset));
                }
            }
        }
        self.read_scratch = read_buf;
        busy
    }

    /// Writes as much buffered output as the socket accepts. `Err(())`
    /// means the connection is dead.
    fn flush_conn(&mut self, id: u64) -> Result<bool, ()> {
        let Some(c) = self.conns.get_mut(&id) else {
            return Ok(false);
        };
        let Some(s) = c.stream.as_mut() else {
            return Ok(false);
        };
        let mut did = false;
        while !c.outbuf.is_empty() {
            match s.write(&c.outbuf) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    did = true;
                    c.outbuf.drain(..n);
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if c.closing && c.outbuf.is_empty() {
            let _ = s.shutdown(std::net::Shutdown::Both);
            self.conns.remove(&id);
            did = true;
        }
        Ok(did)
    }

    /// Parses complete frames out of a connection's input buffer and
    /// queues the resulting events.
    ///
    /// The accumulated input buffer is moved behind one [`Payload`] and
    /// each frame is delivered as an O(1) sub-window of it — a receive
    /// chunk holding many small frames costs one allocation total, not
    /// one copy per frame. Only the trailing partial frame (if any) is
    /// copied back into the connection's input buffer.
    fn extract_frames(&mut self, conn: ConnId) {
        let Some(c) = self.conns.get_mut(&conn.0) else {
            return;
        };
        if matches!(c.state, StreamState::Connecting { .. }) || c.inbuf.len() < 4 {
            return;
        }
        let owner = c.owner;
        let chunk = Payload::from(std::mem::take(&mut c.inbuf));
        let mut off = 0usize;
        let mut events: Vec<ConnEvent> = Vec::new();
        // `Some(notify)` kills the connection after queued events.
        let mut kill: Option<Option<CloseReason>> = None;
        let mut bad_hello = false;
        loop {
            let rest = &chunk[off..];
            if rest.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if len > MAX_FIELD as usize {
                kill = Some(Some(CloseReason::Reset));
                break;
            }
            if rest.len() < 4 + len {
                break;
            }
            let payload = chunk.slice(off + 4, off + 4 + len);
            off += 4 + len;
            match c.state {
                StreamState::AwaitHello => match decode_source(&payload) {
                    Some(from) => {
                        c.state = StreamState::Open;
                        events.push(ConnEvent::Incoming { from });
                    }
                    None => {
                        bad_hello = true;
                        kill = Some(None);
                        break;
                    }
                },
                StreamState::Open => events.push(ConnEvent::Msg(payload)),
                StreamState::Connecting { .. } => unreachable!("checked above"),
            }
        }
        // Keep the unconsumed tail (partial frame or post-kill bytes).
        if off < chunk.len() {
            c.inbuf.extend_from_slice(&chunk[off..]);
        }
        for ev in events {
            self.pending.push_back(Delivery::Conn {
                dst: owner,
                conn,
                ev,
            });
        }
        if bad_hello {
            self.metrics.inc("net.hello_malformed", 1);
        }
        if let Some(notify) = kill {
            self.drop_conn(conn, notify);
        }
    }

    /// Removes a connection, optionally notifying its owner.
    fn drop_conn(&mut self, conn: ConnId, notify: Option<CloseReason>) {
        if let Some(c) = self.conns.remove(&conn.0) {
            if let Some(s) = &c.stream {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            if let Some(reason) = notify {
                // A connection the owner never learned about (incoming,
                // no hello yet) dies silently: nothing to report.
                if !matches!(c.state, StreamState::AwaitHello) {
                    self.pending.push_back(Delivery::Conn {
                        dst: c.owner,
                        conn,
                        ev: ConnEvent::Closed(reason),
                    });
                }
            }
        }
    }

    fn deliver(&mut self, d: Delivery) {
        match d {
            Delivery::Start(ep) => self.dispatch(ep, |s, ctx| s.on_start(ctx)),
            Delivery::Datagram { dst, from, payload } => {
                self.dispatch(dst, move |s, ctx| s.on_datagram(ctx, from, payload));
            }
            Delivery::Conn { dst, conn, ev } => {
                self.dispatch(dst, move |s, ctx| s.on_conn_event(ctx, conn, ev));
            }
            Delivery::Timer { dst, token } => {
                self.dispatch(dst, move |s, ctx| s.on_timer(ctx, token));
            }
        }
    }

    fn dispatch<F>(&mut self, me: Endpoint, f: F)
    where
        F: FnOnce(&mut dyn Service, &mut ServiceCtx<'_>),
    {
        let key = (me.host.0, me.port);
        let (mut service, mut rng) = match self.services.get_mut(&key) {
            Some(slot) => match slot.service.take() {
                Some(s) => (s, slot.rng.clone()),
                None => return,
            },
            None => return,
        };
        let effects = {
            let mut ctx = ServiceCtx {
                now: self.now_inner(),
                me,
                topo: &self.topo,
                rng: &mut rng,
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                stable: self.stable.entry(me.host.0).or_default(),
                effects: Vec::new(),
                next_conn: &mut self.next_conn,
                next_timer: &mut self.next_timer,
            };
            f(service.as_mut(), &mut ctx);
            ctx.effects
        };
        if let Some(slot) = self.services.get_mut(&key) {
            slot.service = Some(service);
            slot.rng = rng;
        }
        self.apply_effects(me, effects);
    }

    fn apply_effects(&mut self, src: Endpoint, effects: Vec<Effect>) {
        for e in effects {
            match e {
                // Deferred variants model virtual CPU cost; on real
                // sockets the CPU time was genuinely spent, so they
                // apply immediately.
                Effect::Datagram { dst, payload }
                | Effect::DeferredDatagram { dst, payload, .. } => {
                    self.send_datagram(src, dst, payload);
                }
                Effect::Open { conn, dst } => self.open(src, conn, dst),
                Effect::Send { conn, msg } | Effect::DeferredSend { conn, msg, .. } => {
                    self.stream_send(conn, msg);
                }
                Effect::Close { conn } => self.close_conn(conn),
                Effect::Timer { id, delay, token } => {
                    self.timer_seq += 1;
                    self.timers.push(Reverse(TimerEntry {
                        due: self.now_inner() + delay,
                        seq: self.timer_seq,
                        id,
                        owner: src,
                        token,
                    }));
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id.0);
                }
            }
        }
    }

    fn send_datagram(&mut self, src: Endpoint, dst: Endpoint, payload: Vec<u8>) {
        let Some(addr) = self.real_addr(dst) else {
            self.metrics.inc("net.dgrams_no_route", 1);
            return;
        };
        let Some(sock) = self.udps.get(&(src.host.0, src.port)) else {
            self.metrics.inc("net.dgrams_no_socket", 1);
            return;
        };
        let mut pkt = encode_source(src);
        pkt.extend_from_slice(&payload);
        // Datagrams are unreliable by contract; send errors are drops.
        if sock.send_to(&pkt, addr).is_err() {
            self.metrics.inc("net.dgrams_lost", 1);
        }
    }

    fn open(&mut self, src: Endpoint, conn: ConnId, dst: Endpoint) {
        let Some(addr) = self.real_addr(dst) else {
            // Unroutable host behaves like an unreachable one.
            self.pending.push_back(Delivery::Conn {
                dst: src,
                conn,
                ev: ConnEvent::Closed(CloseReason::Timeout),
            });
            return;
        };
        self.conns.insert(
            conn.0,
            Stream {
                stream: None,
                owner: src,
                state: StreamState::Connecting { queued: Vec::new() },
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                closing: false,
            },
        );
        let tx = self.connect_tx.clone();
        let timeout = self.connect_timeout;
        std::thread::spawn(move || {
            let result = TcpStream::connect_timeout(&addr, timeout);
            let _ = tx.send(ConnectOutcome { conn, result });
        });
    }

    fn stream_send(&mut self, conn: ConnId, msg: Payload) {
        let Some(c) = self.conns.get_mut(&conn.0) else {
            self.metrics.inc("net.send_dropped", 1);
            return;
        };
        match &mut c.state {
            StreamState::Connecting { queued } => queued.push(msg),
            _ => frame_into(&mut c.outbuf, &msg),
        }
    }

    fn close_conn(&mut self, conn: ConnId) {
        let Some(c) = self.conns.get_mut(&conn.0) else {
            return;
        };
        if matches!(c.state, StreamState::Connecting { .. }) {
            // Abandon the attempt; the connect outcome will be ignored.
            self.conns.remove(&conn.0);
            return;
        }
        c.closing = true;
        if self.flush_conn(conn.0).is_err() {
            self.drop_conn(conn, None);
        }
    }
}

impl Transport for TcpTransport {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn now(&self) -> SimTime {
        self.now_inner()
    }

    /// Binds real sockets for the service. Services addressed to hosts
    /// outside this process's local set are silently ignored — that is
    /// how one shared deployment plan fans out over many processes.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint is already in use locally or its real
    /// address cannot be bound (configuration error).
    fn add_service_boxed(&mut self, host: HostId, port: u16, service: Box<dyn Service>) {
        if !self.local_hosts.contains(&host.0) {
            return;
        }
        let key = (host.0, port);
        assert!(
            !self.services.contains_key(&key),
            "endpoint h{}:{port} already in use",
            host.0
        );
        let addr = self
            .addrs
            .get(&host.0)
            .unwrap_or_else(|| panic!("no address configured for local host h{}", host.0))
            .socket_addr(port);
        let listener = TcpListener::bind(addr)
            .unwrap_or_else(|e| panic!("cannot bind TCP {addr} for h{}:{port}: {e}", host.0));
        listener
            .set_nonblocking(true)
            .expect("set_nonblocking(listener)");
        let udp = UdpSocket::bind(addr)
            .unwrap_or_else(|e| panic!("cannot bind UDP {addr} for h{}:{port}: {e}", host.0));
        udp.set_nonblocking(true).expect("set_nonblocking(udp)");
        self.listeners.insert(key, listener);
        self.udps.insert(key, udp);
        self.services.insert(
            key,
            Slot {
                service: Some(service),
                rng: Rng::new(service_rng_stream(host.0, port, self.seed)),
            },
        );
        if self.started {
            self.pending
                .push_back(Delivery::Start(Endpoint::new(host, port)));
        }
    }

    fn start(&mut self) {
        assert!(!self.started, "transport already started");
        self.started = true;
        let eps: Vec<Endpoint> = self
            .services
            .keys()
            .map(|&(h, p)| Endpoint::new(HostId(h), p))
            .collect();
        for ep in eps {
            self.dispatch(ep, |s, ctx| s.on_start(ctx));
        }
    }

    fn run_for(&mut self, d: SimDuration) {
        let dur = Duration::from_nanos(d.as_nanos());
        self.run_while(dur, |_| true);
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_service_any;
    use crate::topology::TopologyBuilder;

    fn two_host_topo() -> (Topology, HostId, HostId) {
        let mut b = TopologyBuilder::new();
        let r = b.region("eu");
        let c = b.country(r, "nl");
        let s = b.site(c, "vu");
        let a = b.host(s, "a");
        let z = b.host(s, "z");
        (b.build(), a, z)
    }

    /// Picks a pair of port bases unlikely to collide across test runs.
    /// Sim ports reach 9000 (`ports::DRIVER`), so bases stay well below
    /// `u16::MAX - 9000` and the pair is 10k apart.
    fn port_bases() -> (u16, u16) {
        let pid = std::process::id() as u16;
        let base = 20000 + (pid % 180) * 128;
        (base, base + 10000)
    }

    fn loopback_addrs(a: u16, z: u16) -> BTreeMap<u32, NodeAddr> {
        let ip: IpAddr = "127.0.0.1".parse().unwrap();
        let mut m = BTreeMap::new();
        m.insert(0, NodeAddr::new(ip, a));
        m.insert(1, NodeAddr::new(ip, z));
        m
    }

    struct Echo;
    impl Service for Echo {
        fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
            if let ConnEvent::Msg(m) = ev {
                ctx.send(conn, m);
            }
        }
        impl_service_any!();
    }

    struct Client {
        server: Endpoint,
        conn: Option<ConnId>,
        replies: Vec<Vec<u8>>,
        closed: Option<CloseReason>,
        payload: Vec<u8>,
    }
    impl Service for Client {
        fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
            let c = ctx.connect(self.server);
            ctx.send(c, self.payload.clone());
            self.conn = Some(c);
        }
        fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, _conn: ConnId, ev: ConnEvent) {
            match ev {
                ConnEvent::Msg(m) => {
                    self.replies.push(m.to_vec());
                    ctx.close(self.conn.unwrap());
                }
                ConnEvent::Closed(r) => self.closed = Some(r),
                _ => {}
            }
        }
        impl_service_any!();
    }

    /// One process hosting both hosts: stream echo over real loopback
    /// sockets, including the hello handshake and framing.
    #[test]
    fn loopback_stream_round_trip() {
        let (topo, a, z) = two_host_topo();
        let (pa, pz) = port_bases();
        let mut t = TcpTransport::new(topo, 7, loopback_addrs(pa, pz), [a, z]);
        t.add_service_boxed(z, crate::ports::DRIVER, Box::new(Echo));
        t.add_service_boxed(
            a,
            crate::ports::DRIVER,
            Box::new(Client {
                server: Endpoint::new(z, crate::ports::DRIVER),
                conn: None,
                replies: Vec::new(),
                closed: None,
                payload: b"over real sockets".to_vec(),
            }),
        );
        t.start();
        t.run_while(Duration::from_secs(10), |t| {
            t.service::<Client>(HostId(0), crate::ports::DRIVER)
                .map(|c| c.replies.is_empty())
                .unwrap_or(true)
        });
        let c = t.service::<Client>(a, crate::ports::DRIVER).unwrap();
        assert_eq!(c.replies, vec![b"over real sockets".to_vec()]);
    }

    /// Connecting to a port nobody listens on yields `Refused`, same as
    /// the simulation's model of an RST.
    #[test]
    fn refused_maps_to_close_reason() {
        let (topo, a, z) = two_host_topo();
        let (pa, pz) = port_bases();
        // Only host a is local; z's ports are mapped but never bound.
        let mut t = TcpTransport::new(topo, 7, loopback_addrs(pa.wrapping_add(7), pz), [a]);
        t.add_service_boxed(
            a,
            crate::ports::DRIVER,
            Box::new(Client {
                server: Endpoint::new(z, crate::ports::DRIVER),
                conn: None,
                replies: Vec::new(),
                closed: None,
                payload: b"x".to_vec(),
            }),
        );
        t.start();
        t.run_while(Duration::from_secs(10), |t| {
            t.service::<Client>(HostId(0), crate::ports::DRIVER)
                .map(|c| c.closed.is_none())
                .unwrap_or(true)
        });
        let c = t.service::<Client>(a, crate::ports::DRIVER).unwrap();
        assert_eq!(c.closed, Some(CloseReason::Refused));
    }

    /// Datagrams cross UDP with their source endpoint attributed.
    #[test]
    fn loopback_datagram_with_source() {
        struct Pitcher {
            dst: Endpoint,
        }
        impl Service for Pitcher {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                ctx.send_datagram(self.dst, b"throw".to_vec());
            }
            impl_service_any!();
        }
        #[derive(Default)]
        struct Catcher {
            got: Option<(Endpoint, Vec<u8>)>,
        }
        impl Service for Catcher {
            fn on_datagram(&mut self, _ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
                self.got = Some((from, payload));
            }
            impl_service_any!();
        }
        let (topo, a, z) = two_host_topo();
        let (pa, pz) = port_bases();
        let mut t = TcpTransport::new(
            topo,
            7,
            loopback_addrs(pa.wrapping_add(13), pz.wrapping_add(13)),
            [a, z],
        );
        t.add_service_boxed(z, crate::ports::DRIVER, Box::new(Catcher::default()));
        t.add_service_boxed(
            a,
            crate::ports::DRIVER,
            Box::new(Pitcher {
                dst: Endpoint::new(z, crate::ports::DRIVER),
            }),
        );
        t.start();
        t.run_while(Duration::from_secs(10), |t| {
            t.service::<Catcher>(HostId(1), crate::ports::DRIVER)
                .map(|c| c.got.is_none())
                .unwrap_or(true)
        });
        let c = t.service::<Catcher>(z, crate::ports::DRIVER).unwrap();
        let (from, payload) = c.got.clone().expect("datagram arrived");
        assert_eq!(from, Endpoint::new(a, crate::ports::DRIVER));
        assert_eq!(payload, b"throw");
    }

    /// Timers fire on the wall clock and cancellation works.
    #[test]
    fn timers_fire_and_cancel() {
        struct Timed {
            fired: Vec<u64>,
            cancel: Option<TimerId>,
        }
        impl Service for Timed {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 1);
                let id = ctx.set_timer(SimDuration::from_millis(400), 2);
                self.cancel = Some(id);
            }
            fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
                self.fired.push(token);
                if token == 1 {
                    ctx.cancel_timer(self.cancel.unwrap());
                    ctx.set_timer(SimDuration::from_millis(10), 3);
                }
            }
            impl_service_any!();
        }
        let (topo, a, _z) = two_host_topo();
        let (pa, pz) = port_bases();
        let mut t = TcpTransport::new(
            topo,
            7,
            loopback_addrs(pa.wrapping_add(21), pz.wrapping_add(21)),
            [a],
        );
        t.add_service_boxed(
            a,
            crate::ports::DRIVER,
            Box::new(Timed {
                fired: Vec::new(),
                cancel: None,
            }),
        );
        t.start();
        t.run_while(Duration::from_secs(5), |t| {
            t.service::<Timed>(HostId(0), crate::ports::DRIVER)
                .map(|s| !s.fired.contains(&3))
                .unwrap_or(true)
        });
        // Give the cancelled timer a chance to (wrongly) fire.
        t.run_while(Duration::from_millis(500), |_| true);
        let s = t.service::<Timed>(a, crate::ports::DRIVER).unwrap();
        assert_eq!(s.fired, vec![1, 3], "timer 2 must stay cancelled");
    }
}
