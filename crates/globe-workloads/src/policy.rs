//! Replication-scenario assignment policies.
//!
//! The heart of the paper's argument (§3.1): no single replication
//! scenario fits every object; each object should get one matched to its
//! own popularity and update pattern, as the cited case study
//! [Pierre et al. 1999] found for web documents. These policies assign
//! scenarios uniformly (the baselines) or per object (the paper's
//! position), and experiment E3 compares them.

use gdn_core::Scenario;
use globe_net::Endpoint;
use globe_rts::PropagationMode;

/// Per-object inputs to the assignment decision.
///
/// The adaptive policy uses these the way Pierre et al.'s trace-driven
/// selection uses per-document access statistics — here the synthetic
/// catalog's ground truth plays the role of the analyzed trace.
#[derive(Clone, Debug)]
pub struct ObjectProfile {
    /// Popularity rank (0 = hottest).
    pub rank: usize,
    /// Mean updates per simulated hour.
    pub updates_per_hour: f64,
    /// The region the object is published from.
    pub home_region: usize,
}

/// A scenario-assignment policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ScenarioPolicy {
    /// Every object on one server at its home site (no replication —
    /// the anonymous-FTP baseline).
    Central,
    /// Every object cached at clients with a TTL (the web-proxy
    /// baseline).
    UniformCache,
    /// Every object replicated into every region, master/slave with
    /// eager push (the mirror-everything baseline).
    ReplicateAll,
    /// Per-object choice (the paper's position): hot + stable objects
    /// replicate everywhere; hot + volatile use invalidation replicas;
    /// cold objects stay central or cached.
    Adaptive,
}

impl ScenarioPolicy {
    /// All policies, in the order experiment tables report them.
    pub const ALL: [ScenarioPolicy; 4] = [
        ScenarioPolicy::Central,
        ScenarioPolicy::UniformCache,
        ScenarioPolicy::ReplicateAll,
        ScenarioPolicy::Adaptive,
    ];

    /// Short name for report rows.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioPolicy::Central => "central",
            ScenarioPolicy::UniformCache => "cache-ttl",
            ScenarioPolicy::ReplicateAll => "replicate-all",
            ScenarioPolicy::Adaptive => "adaptive",
        }
    }
}

/// Rank threshold below which an object counts as "hot" for the
/// adaptive policy (Zipf mass concentrates in the first few ranks).
const HOT_RANK: usize = 10;
/// Update-rate threshold (per hour) above which replicas use
/// invalidation instead of eager push.
const VOLATILE_UPDATES: f64 = 2.0;

/// Assigns a scenario to one object under `policy`.
///
/// `gos_by_region[r]` lists the object servers of region `r` (first =
/// regional primary). The home region's primary hosts the master.
///
/// # Panics
///
/// Panics if the home region has no object server.
pub fn scenario_for(
    policy: ScenarioPolicy,
    profile: &ObjectProfile,
    gos_by_region: &[Vec<Endpoint>],
) -> Scenario {
    let home = gos_by_region[profile.home_region]
        .first()
        .copied()
        .expect("home region must have an object server");
    let everywhere = || {
        let mut replicas = vec![home];
        for (r, list) in gos_by_region.iter().enumerate() {
            if r != profile.home_region {
                if let Some(&ep) = list.first() {
                    replicas.push(ep);
                }
            }
        }
        replicas
    };
    match policy {
        ScenarioPolicy::Central => Scenario::single(home),
        ScenarioPolicy::UniformCache => Scenario::cached(home),
        ScenarioPolicy::ReplicateAll => {
            Scenario::master_slave(everywhere(), PropagationMode::PushState)
        }
        ScenarioPolicy::Adaptive => {
            let hot = profile.rank < HOT_RANK;
            let volatile = profile.updates_per_hour > VOLATILE_UPDATES;
            match (hot, volatile) {
                // Hot and stable: regional replicas feeding client
                // caches — repeats are local, fills stay in-region.
                (true, false) => {
                    Scenario::cached_replicated(everywhere(), PropagationMode::PushState)
                }
                // Hot but changing: replicas everywhere, invalidation
                // keeps reads fresh without client-cache staleness.
                (true, true) => Scenario::master_slave(everywhere(), PropagationMode::Invalidate),
                // Cold and stable: client caches suffice.
                (false, false) => Scenario::cached(home),
                // Cold and changing: not worth replicating at all.
                (false, true) => Scenario::single(home),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_net::HostId;
    use globe_rts::protocol_id;

    fn gos() -> Vec<Vec<Endpoint>> {
        vec![
            vec![Endpoint::new(HostId(0), 700)],
            vec![Endpoint::new(HostId(10), 700)],
        ]
    }

    fn profile(rank: usize, upd: f64) -> ObjectProfile {
        ObjectProfile {
            rank,
            updates_per_hour: upd,
            home_region: 0,
        }
    }

    #[test]
    fn uniform_policies_ignore_profile() {
        let g = gos();
        for p in [profile(0, 100.0), profile(999, 0.0)] {
            assert_eq!(
                scenario_for(ScenarioPolicy::Central, &p, &g).replicas.len(),
                1
            );
            assert_eq!(
                scenario_for(ScenarioPolicy::UniformCache, &p, &g).protocol,
                protocol_id::CACHE_TTL
            );
            assert_eq!(
                scenario_for(ScenarioPolicy::ReplicateAll, &p, &g)
                    .replicas
                    .len(),
                2
            );
        }
    }

    #[test]
    fn adaptive_differentiates() {
        let g = gos();
        let hot_stable = scenario_for(ScenarioPolicy::Adaptive, &profile(0, 0.1), &g);
        assert_eq!(hot_stable.replicas.len(), 2);
        assert_eq!(hot_stable.mode, PropagationMode::PushState);

        let hot_volatile = scenario_for(ScenarioPolicy::Adaptive, &profile(0, 50.0), &g);
        assert_eq!(hot_volatile.mode, PropagationMode::Invalidate);

        let cold_stable = scenario_for(ScenarioPolicy::Adaptive, &profile(40, 0.1), &g);
        assert_eq!(cold_stable.protocol, protocol_id::CACHE_TTL);

        let cold_volatile = scenario_for(ScenarioPolicy::Adaptive, &profile(40, 50.0), &g);
        assert_eq!(cold_volatile.protocol, protocol_id::CLIENT_SERVER);
        assert_eq!(cold_volatile.replicas.len(), 1);
    }

    #[test]
    fn master_is_home_region_primary() {
        let g = gos();
        let p = ObjectProfile {
            rank: 0,
            updates_per_hour: 0.0,
            home_region: 1,
        };
        let s = scenario_for(ScenarioPolicy::ReplicateAll, &p, &g);
        assert_eq!(s.replicas[0].host, HostId(10));
    }
}
