//! Core Globe Location Service types: object identifiers, contact
//! addresses and error codes.

use std::error::Error;
use std::fmt;

use globe_net::{Endpoint, HostId, WireError, WireReader, WireWriter};
use globe_sim::Rng;

/// A worldwide-unique, location-independent object identifier
/// (paper §3.4: "long strings of bits", never reused, never changing).
///
/// 128 bits are drawn from the registering party's random stream; the
/// collision probability at any realistic object count is negligible.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u128);

impl ObjectId {
    /// Draws a fresh identifier from `rng`.
    pub fn generate(rng: &mut Rng) -> ObjectId {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        ObjectId((hi << 64) | lo)
    }

    /// The "special hashing technique" of the paper (§3.5): maps this
    /// identifier to one of `k` directory subnodes. FNV-1a over the id
    /// bytes, reduced modulo `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn subnode_index(&self, k: u32) -> u32 {
        assert!(k > 0, "subnode count must be positive");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.0.to_be_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % k as u64) as u32
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{:032x}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Flag bit: the replica behind this address accepts state-modifying
/// invocations (e.g. it is the master in a master/slave protocol).
pub const ADDR_FLAG_WRITES: u8 = 0b0000_0001;

/// A contact address: where a local representative of a DSO listens and
/// how to talk to it (paper §3.4: network address, port and protocol
/// information).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct ContactAddress {
    /// Where the replica listens for replication-protocol traffic.
    pub endpoint: Endpoint,
    /// Which replication protocol the replica speaks (registry lives in
    /// `globe-rts`; the GLS treats it as opaque).
    pub protocol: u16,
    /// Implementation handle: which class to load from the
    /// implementation repository when installing a local representative
    /// (paper §3.4 — part of "how to talk to it").
    pub impl_hint: u16,
    /// Property bits, e.g. [`ADDR_FLAG_WRITES`].
    pub flags: u8,
}

impl ContactAddress {
    /// Creates an address.
    pub fn new(endpoint: Endpoint, protocol: u16, flags: u8) -> ContactAddress {
        ContactAddress {
            endpoint,
            protocol,
            impl_hint: 0,
            flags,
        }
    }

    /// Sets the implementation handle.
    pub fn with_impl(mut self, impl_hint: u16) -> ContactAddress {
        self.impl_hint = impl_hint;
        self
    }

    /// Whether the replica accepts state-modifying invocations.
    pub fn accepts_writes(&self) -> bool {
        self.flags & ADDR_FLAG_WRITES != 0
    }

    /// Serializes into `w`.
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.endpoint.host.0);
        w.put_u16(self.endpoint.port);
        w.put_u16(self.protocol);
        w.put_u16(self.impl_hint);
        w.put_u8(self.flags);
    }

    /// Deserializes from `r`.
    pub fn decode(r: &mut WireReader<'_>) -> Result<ContactAddress, WireError> {
        Ok(ContactAddress {
            endpoint: Endpoint::new(HostId(r.u32()?), r.u16()?),
            protocol: r.u16()?,
            impl_hint: r.u16()?,
            flags: r.u8()?,
        })
    }
}

impl fmt::Display for ContactAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/proto{}{}",
            self.endpoint,
            self.protocol,
            if self.accepts_writes() { "+w" } else { "" }
        )
    }
}

/// The level of a GLS domain in the hierarchy (paper Figure 2). The GLS
/// hierarchy mirrors the network topology tiers.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Level {
    /// Leaf domain: one site (campus / MAN).
    Site,
    /// One country.
    Country,
    /// One region (continent).
    Region,
    /// The single root domain spanning the whole network.
    Root,
}

impl Level {
    /// All levels, bottom-up.
    pub const ALL: [Level; 4] = [Level::Site, Level::Country, Level::Region, Level::Root];

    /// Index usable for per-level configuration arrays.
    pub fn index(self) -> usize {
        match self {
            Level::Site => 0,
            Level::Country => 1,
            Level::Region => 2,
            Level::Root => 3,
        }
    }

    /// Wire tag.
    pub fn tag(self) -> u8 {
        self.index() as u8
    }

    /// Decodes a wire tag.
    pub fn from_tag(t: u8) -> Result<Level, WireError> {
        Ok(match t {
            0 => Level::Site,
            1 => Level::Country,
            2 => Level::Region,
            3 => Level::Root,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Errors surfaced to GLS clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlsError {
    /// The object has no registered contact address anywhere.
    NotFound,
    /// No response after all retries (datagram loss or dead nodes).
    Timeout,
    /// The forwarding-pointer tree was inconsistent mid-operation.
    Inconsistent,
}

impl fmt::Display for GlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlsError::NotFound => write!(f, "object not registered"),
            GlsError::Timeout => write!(f, "location service did not respond"),
            GlsError::Inconsistent => write!(f, "forwarding pointers inconsistent"),
        }
    }
}

impl Error for GlsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_ids_unique_per_stream() {
        let mut rng = Rng::new(1);
        let a = ObjectId::generate(&mut rng);
        let b = ObjectId::generate(&mut rng);
        assert_ne!(a, b);
        let mut rng2 = Rng::new(1);
        assert_eq!(ObjectId::generate(&mut rng2), a);
    }

    #[test]
    fn subnode_index_in_range_and_spread() {
        let mut rng = Rng::new(2);
        let k = 7u32;
        let mut counts = vec![0u32; k as usize];
        for _ in 0..7000 {
            let oid = ObjectId::generate(&mut rng);
            let idx = oid.subnode_index(k);
            assert!(idx < k);
            counts[idx as usize] += 1;
        }
        // Roughly uniform: each subnode within 3x of fair share.
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 333 && c < 3000, "subnode {i} got {c}");
        }
    }

    #[test]
    fn subnode_index_stable() {
        let oid = ObjectId(42);
        assert_eq!(oid.subnode_index(5), oid.subnode_index(5));
        assert_eq!(oid.subnode_index(1), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn subnode_zero_panics() {
        ObjectId(1).subnode_index(0);
    }

    #[test]
    fn contact_address_round_trip() {
        let addr =
            ContactAddress::new(Endpoint::new(HostId(9), 2112), 3, ADDR_FLAG_WRITES).with_impl(7);
        let mut w = WireWriter::new();
        addr.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let back = ContactAddress::decode(&mut r).unwrap();
        assert_eq!(back, addr);
        assert_eq!(back.impl_hint, 7);
        assert!(back.accepts_writes());
        r.expect_end().unwrap();
    }

    #[test]
    fn contact_address_flags() {
        let addr = ContactAddress::new(Endpoint::new(HostId(1), 1), 1, 0);
        assert!(!addr.accepts_writes());
        assert!(addr.to_string().contains("proto1"));
    }

    #[test]
    fn level_tags_round_trip() {
        for l in Level::ALL {
            assert_eq!(Level::from_tag(l.tag()).unwrap(), l);
        }
        assert!(Level::from_tag(9).is_err());
    }

    #[test]
    fn display_forms() {
        let oid = ObjectId(0xabc);
        assert!(oid.to_string().ends_with("abc"));
        assert!(format!("{oid:?}").starts_with("oid:"));
        assert!(GlsError::NotFound.to_string().contains("not registered"));
    }
}
