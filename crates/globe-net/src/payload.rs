//! Cheaply-clonable message bytes for stream delivery.
//!
//! Broadcast fan-out is the engine's hottest write path: one encoded
//! frame goes to N receivers. With `Vec<u8>` messages every receiver
//! costs a full copy; with [`Payload`] the bytes live once behind an
//! `Arc` and every clone is a reference-count bump. A payload can also
//! be a *window* into a larger buffer, which lets the TCP backend hand
//! out frames extracted from a receive chunk without copying them.
//!
//! Conversion from `Vec<u8>` moves the vector behind the `Arc` without
//! copying its contents, so `ctx.send(conn, encoded_vec)` stays
//! allocation-equivalent to the old API while `payload.clone()` becomes
//! free. Datagrams intentionally keep plain `Vec<u8>`: they are small,
//! never fanned out, and the owned type keeps mutation simple.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply-clonable bytes: a shared buffer plus a window.
#[derive(Clone)]
pub struct Payload {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Payload {
    /// An empty payload (no allocation is shared, but the `Arc` header
    /// still exists; use sparingly on hot paths).
    pub fn empty() -> Payload {
        Payload::from(Vec::new())
    }

    /// Length of the visible window.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the visible window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The visible bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// A sub-window of this payload sharing the same buffer. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> Payload {
        assert!(start <= end && end <= self.len(), "slice out of range");
        Payload {
            buf: Arc::clone(&self.buf),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the visible bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Recovers the owned bytes: reuses the backing vector when this is
    /// the only reference to a full-buffer payload, copies otherwise.
    pub fn into_vec(self) -> Vec<u8> {
        if self.start == 0 {
            match Arc::try_unwrap(self.buf) {
                Ok(mut v) => {
                    v.truncate(self.end);
                    return v;
                }
                Err(buf) => return buf[self.start..self.end].to_vec(),
            }
        }
        self.to_vec()
    }
}

impl From<Vec<u8>> for Payload {
    /// Moves the vector behind the `Arc` — the bytes are not copied.
    fn from(v: Vec<u8>) -> Payload {
        let end = v.len();
        Payload {
            buf: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(b: &[u8]) -> Payload {
        Payload::from(b.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(b: &[u8; N]) -> Payload {
        Payload::from(b.to_vec())
    }
}

impl Deref for Payload {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_shares_not_copies() {
        let v = vec![1u8, 2, 3, 4];
        let ptr = v.as_ptr();
        let p = Payload::from(v);
        assert_eq!(p.as_slice().as_ptr(), ptr, "bytes must not move");
        let q = p.clone();
        assert_eq!(q.as_slice().as_ptr(), ptr, "clone must share");
        assert_eq!(p, q);
    }

    #[test]
    fn slice_is_a_window() {
        let p = Payload::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = p.slice(2, 5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let ss = s.slice(1, 2);
        assert_eq!(ss.as_slice(), &[3]);
        assert_eq!(ss.as_slice().as_ptr(), unsafe {
            p.as_slice().as_ptr().add(3)
        });
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_out_of_range_panics() {
        Payload::from(vec![1u8, 2]).slice(0, 3);
    }

    #[test]
    fn into_vec_reuses_unique_full_buffer() {
        let v = vec![9u8; 64];
        let ptr = v.as_ptr();
        let p = Payload::from(v);
        let back = p.into_vec();
        assert_eq!(back.as_ptr(), ptr, "unique full-window payload must unwrap");

        let p = Payload::from(vec![1u8, 2, 3, 4]);
        let window = p.slice(1, 3);
        assert_eq!(window.into_vec(), vec![2, 3]); // copies: not full-window
        let q = p.clone();
        assert_eq!(p.into_vec(), vec![1, 2, 3, 4]); // copies: not unique
        drop(q);
    }

    #[test]
    fn equality_against_byte_types() {
        let p = Payload::from(vec![1u8, 2, 3]);
        assert_eq!(p, vec![1u8, 2, 3]);
        assert_eq!(p, *[1u8, 2, 3].as_slice());
        assert_ne!(p, Payload::from(vec![1u8, 2]));
        assert!(p.slice(0, 0).is_empty());
        assert_eq!(Payload::empty().len(), 0);
    }
}
