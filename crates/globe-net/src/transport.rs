//! Transport-level types shared between services and the [`crate::world`]
//! event loop: endpoints, connection identifiers and connection events.

use std::fmt;

use crate::topology::HostId;

/// A network endpoint: a service listening on a port of a host.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Endpoint {
    /// The host the service runs on.
    pub host: HostId,
    /// The service's port (see [`crate::ports`]).
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(host: HostId, port: u16) -> Self {
        Endpoint { host, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:{}", self.host.0, self.port)
    }
}

/// Identifies one stream connection, globally unique within a [`crate::World`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// Identifies a pending timer, for cancellation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// Why a connection stopped working.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CloseReason {
    /// The remote service closed the connection in an orderly fashion.
    Normal,
    /// No service was listening on the remote port (connection refused).
    Refused,
    /// The connection attempt timed out (remote host unreachable).
    Timeout,
    /// The remote host crashed while the connection was open.
    Reset,
}

impl fmt::Display for CloseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloseReason::Normal => write!(f, "closed by peer"),
            CloseReason::Refused => write!(f, "connection refused"),
            CloseReason::Timeout => write!(f, "connection timed out"),
            CloseReason::Reset => write!(f, "connection reset"),
        }
    }
}

/// Events delivered to a service about one of its stream connections.
///
/// Lifecycle, client side: [`ConnEvent::Opened`] (after one round trip),
/// then zero or more [`ConnEvent::Msg`], then [`ConnEvent::Closed`].
/// Server side: [`ConnEvent::Incoming`] plays the role of `Opened`.
/// A connection that never becomes established yields a single
/// [`ConnEvent::Closed`] carrying the failure reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnEvent {
    /// Server side: a new connection arrived from `from`. The connection
    /// is established; the service may send immediately.
    Incoming {
        /// The connecting endpoint.
        from: Endpoint,
    },
    /// Client side: the connection to the remote endpoint is established.
    Opened,
    /// One message (streams preserve message boundaries).
    Msg(Vec<u8>),
    /// The connection ended; no further events will be delivered for it.
    Closed(CloseReason),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(HostId(3), 80);
        assert_eq!(e.to_string(), "h3:80");
    }

    #[test]
    fn close_reason_display() {
        assert!(CloseReason::Refused.to_string().contains("refused"));
        assert!(CloseReason::Timeout.to_string().contains("timed out"));
        assert!(CloseReason::Reset.to_string().contains("reset"));
        assert!(CloseReason::Normal.to_string().contains("closed"));
    }

    #[test]
    fn conn_event_equality() {
        assert_eq!(ConnEvent::Opened, ConnEvent::Opened);
        assert_ne!(
            ConnEvent::Msg(vec![1]),
            ConnEvent::Closed(CloseReason::Normal)
        );
    }
}
