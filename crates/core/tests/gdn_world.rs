//! Full-system tests: the complete GDN of paper Figure 3 — moderator
//! publishes packages through the moderator tool, names flow through the
//! Naming Authority into DNS, replicas spread over object servers, and
//! browsers anywhere in the world download through their nearest
//! GDN-enabled HTTPD.

use gdn_core::catalog::{catalog_publish_op, CatalogEntry, CatalogInterface};
use gdn_core::{
    mirrors_publish_op, stats_publish_op, Browser, GdnDeployment, GdnHttpd, GdnOptions, Mirror,
    ModEvent, ModOp, Scenario,
};
use globe_gls::ObjectId;
use globe_net::{
    impl_service_any, ports, ConnEvent, ConnId, Endpoint, HostId, NetParams, Service, ServiceCtx,
    Topology, World,
};
use globe_net::{ns_token, owns_token};
use globe_rts::{
    GlobeClient, GlobeObjectServer, GlobeRuntime, Invocation, OpDone, PropagationMode, RoleSpec,
    RtConn, RtEvent,
};
use globe_sim::{SimDuration, SimTime};

const SEED: u64 = 4242;

fn world() -> (World, GdnDeployment) {
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), SEED);
    let gdn = GdnDeployment::install(&mut world, GdnOptions::default());
    (world, gdn)
}

fn publish(
    world: &mut World,
    gdn: &GdnDeployment,
    driver_host: HostId,
    name: &str,
    files: Vec<(String, Vec<u8>)>,
    scenario: Scenario,
) -> ObjectId {
    let tool = gdn.moderator_tool(
        world.topology(),
        driver_host,
        "alice",
        vec![ModOp::Publish {
            name: name.into(),
            description: format!("package {name}"),
            files,
            scenario,
        }],
    );
    world.add_service(driver_host, ports::DRIVER, tool);
    if world.now() == SimTime::ZERO {
        world.start();
    }
    world.run_for(SimDuration::from_secs(30));
    let tool = world
        .service::<gdn_core::ModeratorTool>(driver_host, ports::DRIVER)
        .expect("moderator tool");
    match tool.results.first() {
        Some(ModEvent::PublishDone {
            result: Ok(oid), ..
        }) => *oid,
        other => panic!("publish failed: {other:?}"),
    }
}

#[test]
fn publish_and_browse_worldwide() {
    let (mut world, gdn) = world();
    let gos = gdn.gos_for(world.topology(), HostId(0));
    publish(
        &mut world,
        &gdn,
        HostId(1),
        "/apps/graphics/gimp",
        vec![
            ("README".into(), b"GNU Image Manipulation Program".to_vec()),
            ("gimp.tar".into(), vec![0xAB; 200_000]),
        ],
        Scenario::single(gos),
    );

    // A browser in the other region: listing, then the file, through its
    // nearest HTTPD.
    let user = HostId(13);
    let httpd = gdn.httpd_for(world.topology(), user);
    assert_eq!(
        world.topology().site_of(httpd.host),
        world.topology().site_of(user),
        "browser must use its site-local access point"
    );
    let browser = Browser::new(
        httpd,
        vec![
            "/pkg/apps/graphics/gimp".into(),
            "/pkg/apps/graphics/gimp?file=README".into(),
            "/pkg/apps/graphics/gimp?file=gimp.tar".into(),
        ],
    )
    .keeping_bodies();
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(60));

    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert!(b.done(), "fetches incomplete: {:?}", b.results);
    assert_eq!(b.results.len(), 3);

    // Listing is HTML with links (paper §4: "reformatted into HTML").
    assert_eq!(b.results[0].status, 200);
    let html = String::from_utf8_lossy(&b.results[0].body);
    assert!(
        html.contains("README") && html.contains("gimp.tar"),
        "{html}"
    );
    assert!(html.contains("?file=README"));

    // File fetches return exact contents.
    assert_eq!(b.results[1].status, 200);
    assert_eq!(b.results[1].body, b"GNU Image Manipulation Program");
    assert_eq!(b.results[2].status, 200);
    assert_eq!(b.results[2].body_len, 200_000);
}

#[test]
fn unknown_package_is_404() {
    let (mut world, gdn) = world();
    world.start();
    let user = HostId(5);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(
        httpd,
        vec![
            "/pkg/apps/doesnotexist".into(),
            "/nonsense".into(),
            "/index.html".into(),
        ],
    );
    world.add_service(user, ports::DRIVER, browser);
    world.run_until(SimTime::from_secs(90));
    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert_eq!(b.results.len(), 3, "{:?}", b.results);
    assert_eq!(b.results[0].status, 404);
    assert_eq!(b.results[1].status, 404);
    assert_eq!(b.results[2].status, 200);
}

#[test]
fn replicated_package_serves_locally_in_each_region() {
    let (mut world, gdn) = world();
    // Master in region 0, slave in region 1 (paper's whole point: a
    // replica near the clients).
    let gos_r0 = gdn.gos_for(world.topology(), HostId(0));
    let gos_r1 = gdn.gos_for(world.topology(), HostId(12));
    publish(
        &mut world,
        &gdn,
        HostId(1),
        "/os/linux/slackware",
        vec![("kernel".into(), vec![7u8; 100_000])],
        Scenario::master_slave(vec![gos_r0, gos_r1], PropagationMode::PushState),
    );

    // Fetch from region 1; measure wide-area bytes before and after.
    let before_world = world.metrics().counter("net.bytes.world");
    let user = HostId(13);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(httpd, vec!["/pkg/os/linux/slackware?file=kernel".into()]);
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(60));

    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert_eq!(b.results[0].status, 200);
    assert_eq!(b.results[0].body_len, 100_000);
    // The 100 KB body must NOT have crossed the intercontinental tier:
    // the HTTPD's proxy reads from the region-local slave. Allow slack
    // for name/location chatter.
    let after_world = world.metrics().counter("net.bytes.world");
    assert!(
        after_world - before_world < 20_000,
        "download crossed the intercontinental link: {} bytes",
        after_world - before_world
    );
}

#[test]
fn update_propagates_to_replicas() {
    let (mut world, gdn) = world();
    let gos_r0 = gdn.gos_for(world.topology(), HostId(0));
    let gos_r1 = gdn.gos_for(world.topology(), HostId(12));
    let oid = publish(
        &mut world,
        &gdn,
        HostId(1),
        "/apps/tex/tetex",
        vec![("tetex.tar".into(), vec![1u8; 1000])],
        Scenario::master_slave(vec![gos_r0, gos_r1], PropagationMode::PushState),
    );

    // Moderator pushes a new file into the existing package.
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(2),
        "alice",
        vec![ModOp::AddFile {
            oid,
            file: "CHANGES".into(),
            data: b"fixed everything".to_vec(),
        }],
    );
    world.add_service(HostId(2), ports::DRIVER, tool);
    world.run_for(SimDuration::from_secs(30));
    let t = world
        .service::<gdn_core::ModeratorTool>(HostId(2), ports::DRIVER)
        .expect("tool");
    assert_eq!(
        t.results.first(),
        Some(&ModEvent::OpDone { result: Ok(()) })
    );

    // The new file is visible via the region-1 access point.
    let user = HostId(14);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser =
        Browser::new(httpd, vec!["/pkg/apps/tex/tetex?file=CHANGES".into()]).keeping_bodies();
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(60));
    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert_eq!(b.results[0].status, 200);
    assert_eq!(b.results[0].body, b"fixed everything");
}

/// The paper-motivating chunk economics at world level: a package
/// replicated by chunk announcements whose v2 shares 9 of 10 file
/// chunks with v1 must re-transfer only the changed one — the slave's
/// announce hits put cross-version dedup at 90%, and the fetched
/// volume for the upgrade stays near one chunk.
#[test]
fn chunked_replication_dedups_shared_version_content() {
    let (mut world, gdn) = world();
    let gos_r0 = gdn.gos_for(world.topology(), HostId(0));
    let gos_r1 = gdn.gos_for(world.topology(), HostId(12));
    // Ten one-chunk files: distinct fill patterns so no two chunks
    // collide by content.
    let files: Vec<(String, Vec<u8>)> = (0..10u8)
        .map(|i| (format!("part-{i}"), vec![0x10 + i; 4096]))
        .collect();
    let oid = publish(
        &mut world,
        &gdn,
        HostId(1),
        "/apps/chunked/demo",
        files,
        Scenario::master_slave(vec![gos_r0, gos_r1], PropagationMode::PushChunks),
    );
    world.run_for(SimDuration::from_secs(15));

    let hits_v1 = world.metrics().counter("rts.chunks.announce_hits");
    let misses_v1 = world.metrics().counter("rts.chunks.announce_misses");
    let fetched_v1 = world.metrics().counter("rts.chunks.bytes_fetched");

    // v2: one of the ten parts changes; the other nine stay
    // bit-identical.
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(2),
        "alice",
        vec![ModOp::AddFile {
            oid,
            file: "part-3".into(),
            data: vec![0xEE; 4096],
        }],
    );
    world.add_service(HostId(2), ports::DRIVER, tool);
    world.run_for(SimDuration::from_secs(30));
    let t = world
        .service::<gdn_core::ModeratorTool>(HostId(2), ports::DRIVER)
        .expect("tool");
    assert_eq!(
        t.results.first(),
        Some(&ModEvent::OpDone { result: Ok(()) })
    );

    let hits = world.metrics().counter("rts.chunks.announce_hits") - hits_v1;
    let misses = world.metrics().counter("rts.chunks.announce_misses") - misses_v1;
    let fetched = world.metrics().counter("rts.chunks.bytes_fetched") - fetched_v1;
    assert!(hits + misses > 0, "upgrade announced no chunks");
    let dedup = hits as f64 / (hits + misses) as f64;
    assert!(
        dedup >= 0.85,
        "v2 shares 90% of v1 yet dedup was {dedup:.3} ({hits} hits, {misses} misses)"
    );
    assert!(
        fetched < 3 * 4096,
        "upgrade fetched {fetched} bytes for a one-chunk change"
    );

    // The slave serves the new part fresh through its region's access
    // point.
    let user = HostId(14);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser =
        Browser::new(httpd, vec!["/pkg/apps/chunked/demo?file=part-3".into()]).keeping_bodies();
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(60));
    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert_eq!(b.results[0].status, 200, "{:?}", b.results[0]);
    assert_eq!(b.results[0].body, vec![0xEE; 4096]);
    assert_eq!(world.metrics().counter("rts.reads.stale"), 0);
}

#[test]
fn remove_package_takes_it_offline() {
    let (mut world, gdn) = world();
    let gos = gdn.gos_for(world.topology(), HostId(0));
    let oid = publish(
        &mut world,
        &gdn,
        HostId(1),
        "/apps/shareware/doom",
        vec![("doom.wad".into(), vec![2u8; 500])],
        Scenario::single(gos),
    );
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(2),
        "alice",
        vec![ModOp::Remove {
            name: "/apps/shareware/doom".into(),
            oid,
            replicas: vec![gos],
        }],
    );
    world.add_service(HostId(2), ports::DRIVER, tool);
    world.run_for(SimDuration::from_secs(30));
    let t = world
        .service::<gdn_core::ModeratorTool>(HostId(2), ports::DRIVER)
        .expect("tool");
    assert_eq!(
        t.results.first(),
        Some(&ModEvent::OpDone { result: Ok(()) }),
        "{:?}",
        t.results
    );

    // A fresh HTTPD (no cached name) cannot find it any more.
    let user = HostId(7);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(httpd, vec!["/pkg/apps/shareware/doom".into()]);
    world.add_service(user, ports::DRIVER, browser);
    world.run_until(SimTime::from_secs(200));
    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert_eq!(b.results[0].status, 404, "{:?}", b.results[0]);
}

#[test]
fn httpd_name_cache_and_lr_reuse_speed_up_repeat_access() {
    let (mut world, gdn) = world();
    let gos = gdn.gos_for(world.topology(), HostId(0));
    publish(
        &mut world,
        &gdn,
        HostId(1),
        "/apps/editors/emacs",
        vec![("emacs.tar".into(), vec![3u8; 10_000])],
        Scenario::single(gos),
    );
    let user = HostId(13);
    let httpd_ep = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(
        httpd_ep,
        vec![
            "/pkg/apps/editors/emacs?file=emacs.tar".into(),
            "/pkg/apps/editors/emacs?file=emacs.tar".into(),
        ],
    );
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(120));
    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert_eq!(b.results.len(), 2);
    assert!(b.results.iter().all(|r| r.status == 200));
    // Second access skips GNS resolution, binding and class loading
    // (paper §3.4 / experiment E9): strictly faster.
    assert!(
        b.results[1].latency.as_nanos() * 2 < b.results[0].latency.as_nanos(),
        "repeat access not faster: {:?}",
        b.results.iter().map(|r| r.latency).collect::<Vec<_>>()
    );
    let httpd = world
        .service::<GdnHttpd>(httpd_ep.host, httpd_ep.port)
        .expect("httpd");
    assert_eq!(httpd.stats.name_cache_hits, 1);
}

/// Publishes a package plus a catalog DSO indexing it (under the given
/// catalog scenario), then drives a browser through catalog listing,
/// catalog search, and the package fetch the catalog links to — the
/// whole flow runs through the HTTPD's typed proxies for two distinct
/// DSO classes.
fn catalog_flow(catalog_scenario: impl Fn(&GdnDeployment, &World) -> Scenario) {
    let (mut world, gdn) = world();
    let gos = gdn.gos_for(world.topology(), HostId(0));
    publish(
        &mut world,
        &gdn,
        HostId(1),
        "/apps/graphics/gimp",
        vec![("README".into(), b"GNU Image Manipulation Program".to_vec())],
        Scenario::single(gos),
    );

    // The catalog is itself a DSO with its own scenario (read-heavy, so
    // typically cache-proxy), published through the class-generic
    // moderator pipeline.
    let scenario = catalog_scenario(&gdn, &world);
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(2),
        "alice",
        vec![catalog_publish_op(
            "/catalog/main",
            vec![
                CatalogEntry {
                    name: "/apps/graphics/gimp".into(),
                    description: "GNU Image Manipulation Program".into(),
                },
                CatalogEntry {
                    name: "/apps/editors/emacs".into(),
                    description: "the extensible editor".into(),
                },
            ],
            scenario,
        )],
    );
    world.add_service(HostId(2), ports::DRIVER, tool);
    world.run_for(SimDuration::from_secs(30));
    let t = world
        .service::<gdn_core::ModeratorTool>(HostId(2), ports::DRIVER)
        .expect("tool");
    assert!(
        matches!(
            t.results.first(),
            Some(ModEvent::PublishDone { result: Ok(_), .. })
        ),
        "catalog publish failed: {:?}",
        t.results
    );

    // A browser in the other region: browse the catalog, search it, and
    // follow its link into the package — all via its nearest HTTPD.
    let user = HostId(13);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(
        httpd,
        vec![
            "/catalog/catalog/main".into(),
            "/catalog/catalog/main?q=image".into(),
            "/pkg/apps/graphics/gimp?file=README".into(),
        ],
    )
    .keeping_bodies();
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(60));

    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert!(b.done(), "fetches incomplete: {:?}", b.results);

    // Listing shows both entries with package links.
    assert_eq!(b.results[0].status, 200, "{:?}", b.results[0]);
    let html = String::from_utf8_lossy(&b.results[0].body);
    assert!(html.contains("href=\"/pkg/apps/graphics/gimp\""), "{html}");
    assert!(html.contains("/apps/editors/emacs"), "{html}");

    // Search narrows to the matching package.
    assert_eq!(b.results[1].status, 200);
    let html = String::from_utf8_lossy(&b.results[1].body);
    assert!(html.contains("gimp") && !html.contains("emacs"), "{html}");

    // The linked package serves its file, digest-verified.
    assert_eq!(b.results[2].status, 200);
    assert_eq!(b.results[2].body, b"GNU Image Manipulation Program");
}

#[test]
fn catalog_browse_search_fetch_under_cache_proxy_scenario() {
    // Cache-proxy scenario: each access point's runtime installs a
    // caching representative of the catalog.
    catalog_flow(|gdn, world| Scenario::cached(gdn.gos_for(world.topology(), HostId(0))));
}

#[test]
fn catalog_browse_search_fetch_under_master_slave_scenario() {
    // Master/slave scenario: a catalog replica in each region.
    catalog_flow(|gdn, world| {
        Scenario::master_slave(
            vec![
                gdn.gos_for(world.topology(), HostId(0)),
                gdn.gos_for(world.topology(), HostId(12)),
            ],
            PropagationMode::PushState,
        )
    });
}

/// Binds one object and fires a single write invocation — the minimal
/// moderator-side driver for post-publish object updates.
struct WriteDriver {
    runtime: GlobeRuntime,
    oid: ObjectId,
    inv: Invocation,
    done: bool,
    failed: Option<String>,
}

impl WriteDriver {
    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        for ev in self.runtime.take_events() {
            match ev {
                RtEvent::BindDone { result: Ok(_), .. } => {
                    let (oid, inv) = (self.oid, self.inv.clone());
                    self.runtime.invoke(ctx, oid, inv, 1);
                }
                RtEvent::BindDone { result: Err(e), .. } => {
                    self.failed = Some(format!("bind: {e}"));
                }
                RtEvent::InvokeDone { result: Ok(_), .. } => self.done = true,
                RtEvent::InvokeDone { result: Err(e), .. } => {
                    self.failed = Some(format!("write: {e}"));
                }
                _ => {}
            }
        }
    }
}

impl Service for WriteDriver {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        let oid = self.oid;
        self.runtime.bind(ctx, oid, 0);
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.runtime.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.runtime.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(_) => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.runtime.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }
    impl_service_any!();
}

/// After its TTL lapses, a catalog cache proxy refreshes by version: the
/// server answers the `Refresh` with a small delta (here: the one new
/// entry) instead of the full state, and the re-read sees the update.
#[test]
fn cache_proxy_refreshes_via_delta_after_ttl() {
    let (mut world, gdn) = world();
    let gos = gdn.gos_for(world.topology(), HostId(0));
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(1),
        "alice",
        vec![catalog_publish_op(
            "/catalog/main",
            vec![CatalogEntry {
                name: "/apps/graphics/gimp".into(),
                description: "GNU Image Manipulation Program".into(),
            }],
            Scenario::cached(gos),
        )],
    );
    world.add_service(HostId(1), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(30));
    let t = world
        .service::<gdn_core::ModeratorTool>(HostId(1), ports::DRIVER)
        .expect("tool");
    let oid = match t.results.first() {
        Some(ModEvent::PublishDone {
            result: Ok(oid), ..
        }) => *oid,
        other => panic!("catalog publish failed: {other:?}"),
    };

    // First browse fills the access point's cache proxy (full state).
    let user = HostId(13);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(httpd, vec!["/catalog/catalog/main".into()]).keeping_bodies();
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(30));
    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert_eq!(b.results[0].status, 200, "{:?}", b.results);

    // Let the cache TTL (60 s) lapse, then register a new package.
    world.run_for(SimDuration::from_secs(90));
    let writer = WriteDriver {
        runtime: gdn.moderator_runtime(HostId(2), "alice"),
        oid,
        inv: CatalogInterface::REGISTER.invocation(&CatalogEntry {
            name: "/apps/editors/emacs".into(),
            description: "the extensible editor".into(),
        }),
        done: false,
        failed: None,
    };
    world.add_service(HostId(2), ports::DRIVER, writer);
    world.run_for(SimDuration::from_secs(30));
    let w = world
        .service::<WriteDriver>(HostId(2), ports::DRIVER)
        .expect("writer");
    assert!(w.done, "catalog update did not complete: {:?}", w.failed);

    let deltas_before = world.metrics().counter("rts.grp.deltas_applied");

    // The expired cache refreshes by version and sees the new entry.
    let browser = Browser::new(httpd, vec!["/catalog/catalog/main".into()]).keeping_bodies();
    world.add_service(user, ports::DRIVER + 1, browser);
    world.run_for(SimDuration::from_secs(30));
    let b = world
        .service::<Browser>(user, ports::DRIVER + 1)
        .expect("browser");
    assert_eq!(b.results[0].status, 200, "{:?}", b.results);
    let html = String::from_utf8_lossy(&b.results[0].body);
    assert!(
        html.contains("emacs"),
        "stale catalog after refresh: {html}"
    );
    assert!(
        world.metrics().counter("rts.grp.deltas_applied") > deltas_before,
        "cache refresh did not use the delta path"
    );
}

#[test]
fn gdn_proxy_on_user_machine_caches_package() {
    let (mut world, gdn) = world();
    let gos = gdn.gos_for(world.topology(), HostId(0));
    publish(
        &mut world,
        &gdn,
        HostId(1),
        "/apps/net/fetchmail",
        vec![("fetchmail".into(), vec![9u8; 5_000])],
        Scenario::cached(gos), // CACHE_TTL scenario
    );
    // The user runs a GDN-enabled proxy on their own machine
    // (paper §4) and the browser talks to it over loopback.
    let user = HostId(16);
    let proxy = gdn.proxy(world.topology(), user);
    world.add_service(user, 8080, proxy);
    let browser = Browser::new(
        Endpoint::new(user, 8080),
        vec![
            "/pkg/apps/net/fetchmail?file=fetchmail".into(),
            "/pkg/apps/net/fetchmail?file=fetchmail".into(),
            "/pkg/apps/net/fetchmail".into(),
        ],
    );
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(120));
    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert_eq!(b.results.len(), 3, "{:?}", b.results);
    assert!(b.results.iter().all(|r| r.status == 200));
    // The proxy's cache-TTL representative served repeats locally.
    assert!(world.metrics().counter("rts.cache.hits") >= 2);
}

#[test]
fn mirrors_route_lists_and_filters_by_region() {
    let (mut world, gdn) = world();
    let gos = gdn.gos_for(world.topology(), HostId(0));
    // A mirror list is an ordinary DSO published through the
    // class-generic moderator pipeline (write-rarely, so cache-proxy).
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(1),
        "alice",
        vec![mirrors_publish_op(
            "/mirrors/global",
            vec![
                Mirror {
                    url: "http://ftp.nl.example/globe".into(),
                    region: 0,
                    bandwidth_mbps: 100,
                },
                Mirror {
                    url: "http://ftp.us.example/globe".into(),
                    region: 1,
                    bandwidth_mbps: 1000,
                },
                Mirror {
                    url: "http://ftp2.us.example/globe".into(),
                    region: 1,
                    bandwidth_mbps: 10,
                },
            ],
            Scenario::cached(gos),
        )],
    );
    world.add_service(HostId(1), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(30));
    let t = world
        .service::<gdn_core::ModeratorTool>(HostId(1), ports::DRIVER)
        .expect("tool");
    assert!(
        matches!(
            t.results.first(),
            Some(ModEvent::PublishDone { result: Ok(_), .. })
        ),
        "mirror-list publish failed: {:?}",
        t.results
    );

    // A browser in the other region: full list, then its region's
    // slice, through its nearest HTTPD.
    let user = HostId(13);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(
        httpd,
        vec![
            "/mirrors/mirrors/global".into(),
            "/mirrors/mirrors/global?region=1".into(),
            "/mirrors/mirrors/global?region=1x".into(),
        ],
    )
    .keeping_bodies();
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(60));

    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert!(b.done(), "fetches incomplete: {:?}", b.results);

    assert_eq!(b.results[0].status, 200, "{:?}", b.results[0]);
    let html = String::from_utf8_lossy(&b.results[0].body);
    assert!(html.contains("http://ftp.nl.example/globe"), "{html}");
    assert!(html.contains("http://ftp.us.example/globe"), "{html}");

    // Region filter keeps only region 1, fattest pipe first.
    assert_eq!(b.results[1].status, 200);
    let html = String::from_utf8_lossy(&b.results[1].body);
    assert!(html.contains("2 mirror(s) in region 1"), "{html}");
    assert!(!html.contains("ftp.nl.example"), "{html}");
    let fat = html.find("http://ftp.us.example").expect("fat mirror");
    let thin = html.find("http://ftp2.us.example").expect("thin mirror");
    assert!(fat < thin, "mirrors not bandwidth-sorted: {html}");

    // A malformed region filter is rejected, not silently widened to
    // the full list.
    assert_eq!(b.results[2].status, 400, "{:?}", b.results[2]);
}

/// Paced reader over one object through a [`GlobeClient`] session: one
/// typed read op per timer tick, recording per-op outcome and the
/// failover attempts each op consumed.
struct ClientDriver {
    client: GlobeClient,
    oid: ObjectId,
    total: u32,
    /// Identical reads fired back-to-back per tick (>1 exercises the
    /// session's read coalescing).
    burst: u32,
    fired: u32,
    ok: u32,
    failed: Vec<String>,
    /// Largest per-op attempt count observed (must stay within the
    /// session's `RetryPolicy`).
    max_attempts: u32,
    /// The replica each completed op reports it was served by, in
    /// completion order.
    seen: Vec<Option<Endpoint>>,
}

const DRIVER_NS: u16 = 0x7901;

impl ClientDriver {
    fn new(client: GlobeClient, oid: ObjectId, total: u32) -> ClientDriver {
        ClientDriver {
            client,
            oid,
            total,
            burst: 1,
            fired: 0,
            ok: 0,
            failed: Vec::new(),
            max_attempts: 0,
            seen: Vec::new(),
        }
    }

    fn with_burst(mut self, burst: u32) -> ClientDriver {
        self.burst = burst;
        self
    }

    fn drain(&mut self, _ctx: &mut ServiceCtx<'_>) {
        for done in self.client.take_events() {
            let OpDone {
                result,
                attempts,
                replica,
                ..
            } = done;
            self.max_attempts = self.max_attempts.max(attempts);
            self.seen.push(replica);
            match result {
                Ok(_) => self.ok += 1,
                Err(e) => self.failed.push(e.to_string()),
            }
        }
    }
}

impl Service for ClientDriver {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), ns_token(DRIVER_NS, 0));
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(DRIVER_NS, token) {
            if self.fired < self.total {
                self.fired += 1;
                let oid = self.oid;
                for _ in 0..self.burst {
                    self.client
                        .op::<gdn_core::package::PackageInterface>(ctx, oid)
                        .invoke(&gdn_core::package::PackageInterface::LIST_CONTENTS, &());
                }
                ctx.set_timer(
                    SimDuration::from_secs(2),
                    ns_token(DRIVER_NS, self.fired as u64),
                );
            }
            self.drain(ctx);
            return;
        }
        if self.client.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.client.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.client.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(_) => {}
        }
    }
    impl_service_any!();
}

/// Kills the bound replica mid-stream: the client session must fail
/// over within its `RetryPolicy` bounds — every read still succeeds,
/// retries are counted, and the freshness oracle never sees a stale
/// read served.
#[test]
fn client_failover_rebinds_within_retry_policy() {
    let topo = Topology::grid(2, 1, 2, 3);
    // Object servers off the first hosts so crashing one leaves the
    // GLS/GNS daemons of its site alive.
    let gos_hosts: Vec<HostId> = topo
        .sites()
        .filter_map(|s| topo.hosts_in_site(s).get(1).copied())
        .collect();
    let mut world = World::new(topo, NetParams::default(), SEED);
    // Short address leases: a crashed replica's GLS entry lingers until
    // its lease expires, so the retry backoff below spans the lease and
    // the healing re-resolve lands inside the policy's attempt budget.
    let gdn = GdnDeployment::install(
        &mut world,
        GdnOptions {
            gos_hosts,
            gls: globe_gls::GlsConfig::default()
                .with_persistence()
                .with_address_ttl(SimDuration::from_secs(15)),
            ..GdnOptions::default()
        },
    );
    // Master in region 0, slave in region 1 — the replica nearest to
    // the reader is the one that will die.
    let replicas = vec![gdn.gos_endpoints[0], gdn.gos_endpoints[2]];
    let oid = publish(
        &mut world,
        &gdn,
        HostId(2),
        "/apps/vital",
        vec![("pkg.tar".into(), vec![5u8; 10_000])],
        Scenario::master_slave(replicas.clone(), PropagationMode::PushState),
    );

    let reader_host = HostId(11);
    let mut client = GlobeClient::new(gdn.anonymous_runtime(reader_host, 0x0200), 0x0500);
    client.config.retry.backoff = SimDuration::from_secs(5);
    let driver = ClientDriver::new(client, oid, 6);
    let max_attempts = driver.client.config.retry.max_attempts;
    world.add_service(reader_host, ports::DRIVER + 3, driver);

    // Two reads land, then the bound (region-local) replica dies.
    world.run_for(SimDuration::from_secs(4));
    world.crash_host(replicas[1].host);
    world.run_for(SimDuration::from_secs(90));

    let d = world
        .service::<ClientDriver>(reader_host, ports::DRIVER + 3)
        .expect("client driver");
    assert_eq!(d.fired, 6);
    assert_eq!(
        d.ok, 6,
        "reads must survive the replica crash: {:?}",
        d.failed
    );
    // The session retried — and stayed inside its policy.
    assert!(
        d.client.stats.retries >= 1,
        "crash mid-stream must cost at least one retry: {:?}",
        d.client.stats
    );
    assert!(
        d.max_attempts >= 1 && d.max_attempts <= max_attempts,
        "attempts {} outside retry policy (max {max_attempts})",
        d.max_attempts
    );
    assert!(
        d.client.stats.rebinds >= 1,
        "healing requires at least one GLS re-resolve: {:?}",
        d.client.stats
    );
    assert!(world.metrics().counter("client.retries") >= d.client.stats.retries);
    // Zero stale reads: failover never served outdated state. Identical
    // reads that piled up behind the failover window coalesce onto one
    // invocation, so the oracle sees one fresh read per *leader*.
    assert_eq!(world.metrics().counter("rts.reads.stale"), 0);
    assert!(world.metrics().counter("rts.reads.fresh") >= 6 - d.client.stats.coalesced);
}

/// Identical in-flight reads through one session share a single
/// invocation: for every burst of N only the leader travels, the other
/// N-1 coalesce onto it — and every coalesced completion still reports
/// the replica (and health bucket) that served the leader.
#[test]
fn identical_inflight_reads_coalesce() {
    let (mut world, gdn) = world();
    let gos = gdn.gos_for(world.topology(), HostId(0));
    let oid = publish(
        &mut world,
        &gdn,
        HostId(2),
        "/apps/shared",
        vec![("pkg.tar".into(), vec![7u8; 4_000])],
        Scenario::single(gos),
    );
    // A reader far from the replica: the leader's invocation is on the
    // wire long enough for the rest of each burst to pile onto it.
    let reader_host = HostId(13);
    let client = GlobeClient::new(gdn.anonymous_runtime(reader_host, 0x0200), 0x0500);
    let driver = ClientDriver::new(client, oid, 3).with_burst(4);
    world.add_service(reader_host, ports::DRIVER + 3, driver);
    world.run_for(SimDuration::from_secs(20));

    let d = world
        .service::<ClientDriver>(reader_host, ports::DRIVER + 3)
        .expect("client driver");
    assert_eq!(d.fired, 3);
    assert_eq!(d.ok, 12, "all burst reads must complete: {:?}", d.failed);
    // 3 bursts × (4 − 1) followers.
    assert_eq!(d.client.stats.coalesced, 9, "{:?}", d.client.stats);
    assert_eq!(world.metrics().counter("client.coalesced"), 9);
    // Followers inherit the leader's serving replica and bucket.
    assert!(
        d.seen.iter().all(|r| r.map(|ep| ep.host) == Some(gos.host)),
        "every completion must name the serving replica: {:?}",
        d.seen
    );
}

/// A replica that keeps failing clients while bound (a crashed host
/// under churn) must end demoted in the session's health ledger, and
/// the candidate ranking steers every subsequent op away from it — no
/// more binds land there even after it comes back up, until its score
/// decays. The healing is faster than the GLS lease: the first
/// refresh-driven rebind re-ranks the remembered candidates by health
/// and lands on the master while the locality lookup still answers
/// with the dead slave.
#[test]
fn flapping_replica_ends_demoted_and_unbound() {
    let topo = Topology::grid(2, 1, 2, 3);
    let gos_hosts: Vec<HostId> = topo
        .sites()
        .filter_map(|s| topo.hosts_in_site(s).get(1).copied())
        .collect();
    let mut world = World::new(topo, NetParams::default(), SEED);
    let gdn = GdnDeployment::install(
        &mut world,
        GdnOptions {
            gos_hosts,
            gls: globe_gls::GlsConfig::default()
                .with_persistence()
                .with_address_ttl(SimDuration::from_secs(15)),
            ..GdnOptions::default()
        },
    );
    let master = gdn.gos_endpoints[0];
    let slave = gdn.gos_endpoints[2];
    let oid = publish(
        &mut world,
        &gdn,
        HostId(2),
        "/apps/flappy",
        vec![("pkg.tar".into(), vec![9u8; 8_000])],
        Scenario::master_slave(vec![master, slave], PropagationMode::PushState),
    );

    let reader_host = HostId(11);
    let mut client = GlobeClient::new(gdn.anonymous_runtime(reader_host, 0x0200), 0x0500);
    // Fail fast (no retries) and keep the binding fresh for 8 s: every
    // tick against the dead slave is a distinct observed failure, and
    // the re-resolve that heals the session happens on the client's own
    // freshness clock, not a retry loop.
    client.config.retry.max_attempts = 0;
    client.config.bind_refresh = SimDuration::from_secs(8);
    let driver = ClientDriver::new(client, oid, 20);
    world.add_service(reader_host, ports::DRIVER + 3, driver);

    // Two clean reads off the (nearer) slave, then it drops. The churn
    // window spans the slave's GLS lease: until the lease expires the
    // locality lookup keeps answering with the (dead, cold) slave —
    // those ops fail fast and pile onto its ledger entry — and the
    // first re-resolve after expiry surfaces the master.
    world.run_for(SimDuration::from_secs(4));
    world.crash_host(slave.host);
    world.run_for(SimDuration::from_secs(30));
    // Back up — but by now the ledger has it cold and the session has
    // re-bound to the master.
    world.recover_host(slave.host);
    world.run_for(SimDuration::from_secs(8));

    let d = world
        .service::<ClientDriver>(reader_host, ports::DRIVER + 3)
        .expect("client driver");
    assert_eq!(d.fired, 20);
    assert!(
        d.failed.len() >= 4,
        "the churn window against the dead slave fails fast: {:?}",
        d.failed
    );
    assert_eq!(d.ok as usize + d.failed.len(), 20);
    // The flapped replica ended demoted in the reader's ledger. (It is
    // not necessarily cold: the session heals onto the master within
    // one refresh period, so the dead slave stops collecting failures
    // early and its score decays for the rest of the run.)
    let now = world.now();
    let bucket = d
        .client
        .runtime()
        .health()
        .iter()
        .find(|(ep, _)| ep.host == slave.host)
        .map(|(_, h)| h.bucket_at(now));
    assert!(
        matches!(
            bucket,
            Some(globe_rts::Bucket::Warm | globe_rts::Bucket::Cold)
        ),
        "flapped replica must end demoted, got {:?}: {:?}",
        bucket,
        d.seen
    );
    // ... and receives no binds: the session healed onto the master and
    // stayed there through the slave's recovery.
    assert_eq!(
        d.seen.last().copied().flatten().map(|ep| ep.host),
        Some(master.host),
        "{:?}",
        d.seen
    );
    assert_eq!(
        d.client.candidate_set(oid, now).current.map(|ep| ep.host),
        Some(master.host)
    );
    assert!(d.client.stats.rebinds >= 1, "{:?}", d.client.stats);
}

/// `GET /stats/top?n=K` surfaces the download-stats ranking over HTTP,
/// served as one client op against the configured stats object.
#[test]
fn stats_top_route_ranks_downloads_over_http() {
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), SEED);
    let gdn = GdnDeployment::install(
        &mut world,
        GdnOptions {
            stats_object: Some("/stats/site".into()),
            ..GdnOptions::default()
        },
    );
    let gos = gdn.gos_for(world.topology(), HostId(0));
    let pkg = |name: &str, body: &[u8]| ModOp::Publish {
        name: name.into(),
        description: format!("package {name}"),
        files: vec![("README".into(), body.to_vec())],
        scenario: Scenario::single(gos),
    };
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(2),
        "alice",
        vec![
            pkg("/apps/graphics/gimp", b"GNU Image Manipulation Program"),
            pkg("/apps/editors/emacs", b"the extensible editor"),
            stats_publish_op("/stats/site", Scenario::single(gos)),
        ],
    );
    world.add_service(HostId(2), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(60));
    let t = world
        .service::<gdn_core::ModeratorTool>(HostId(2), ports::DRIVER)
        .expect("tool");
    assert_eq!(t.results.len(), 3, "{:?}", t.results);
    assert!(t
        .results
        .iter()
        .all(|r| matches!(r, ModEvent::PublishDone { result: Ok(_), .. })));

    // Two fetches of gimp, one of emacs → gimp must rank first.
    let user = HostId(13);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(
        httpd,
        vec![
            "/pkg/apps/graphics/gimp?file=README".into(),
            "/pkg/apps/graphics/gimp?file=README".into(),
            "/pkg/apps/editors/emacs?file=README".into(),
        ],
    );
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(60));
    assert!(world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser")
        .results
        .iter()
        .all(|r| r.status == 200));

    // The ranking over HTTP: full, truncated, and malformed queries.
    let browser = Browser::new(
        httpd,
        vec![
            "/stats/top".into(),
            "/stats/top?n=1".into(),
            "/stats/top?n=x".into(),
        ],
    )
    .keeping_bodies();
    world.add_service(user, ports::DRIVER + 1, browser);
    world.run_for(SimDuration::from_secs(30));
    let b = world
        .service::<Browser>(user, ports::DRIVER + 1)
        .expect("browser");
    assert!(b.done(), "{:?}", b.results);

    assert_eq!(b.results[0].status, 200, "{:?}", b.results[0]);
    let html = String::from_utf8_lossy(&b.results[0].body);
    assert!(html.contains("href=\"/pkg/apps/graphics/gimp\""), "{html}");
    assert!(html.contains("2 download(s)"), "{html}");
    assert!(html.contains("/apps/editors/emacs"), "{html}");

    // n=1 keeps only the most-downloaded package.
    assert_eq!(b.results[1].status, 200);
    let html = String::from_utf8_lossy(&b.results[1].body);
    assert!(html.contains("gimp") && !html.contains("emacs"), "{html}");

    // A malformed limit is rejected, not defaulted.
    assert_eq!(b.results[2].status, 400, "{:?}", b.results[2]);

    // An access point without a stats object has nothing to rank.
    let proxy = gdn.proxy(world.topology(), HostId(16));
    world.add_service(HostId(16), 8080, proxy);
    let browser = Browser::new(Endpoint::new(HostId(16), 8080), vec!["/stats/top".into()]);
    world.add_service(HostId(16), ports::DRIVER + 2, browser);
    world.run_for(SimDuration::from_secs(15));
    let b = world
        .service::<Browser>(HostId(16), ports::DRIVER + 2)
        .expect("browser");
    assert_eq!(b.results[0].status, 404, "{:?}", b.results);
}

#[test]
fn pkg_fetches_record_into_download_stats() {
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), SEED);
    let gdn = GdnDeployment::install(
        &mut world,
        GdnOptions {
            stats_object: Some("/stats/site".into()),
            ..GdnOptions::default()
        },
    );
    let gos = gdn.gos_for(world.topology(), HostId(0));
    publish(
        &mut world,
        &gdn,
        HostId(1),
        "/apps/graphics/gimp",
        vec![("README".into(), b"GNU Image Manipulation Program".to_vec())],
        Scenario::single(gos),
    );
    // The stats object the HTTPDs report into, published *after* the
    // deployment came up — the hook binds lazily.
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(2),
        "alice",
        vec![stats_publish_op("/stats/site", Scenario::single(gos))],
    );
    world.add_service(HostId(2), ports::DRIVER, tool);
    world.run_for(SimDuration::from_secs(30));
    let t = world
        .service::<gdn_core::ModeratorTool>(HostId(2), ports::DRIVER)
        .expect("tool");
    let stats_oid = match t.results.first() {
        Some(ModEvent::PublishDone {
            result: Ok(oid), ..
        }) => *oid,
        other => panic!("stats publish failed: {other:?}"),
    };

    // Two fetches (a file download and a listing) from a far user.
    let user = HostId(13);
    let httpd = gdn.httpd_for(world.topology(), user);
    let browser = Browser::new(
        httpd,
        vec![
            "/pkg/apps/graphics/gimp?file=README".into(),
            "/pkg/apps/graphics/gimp".into(),
        ],
    );
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(60));
    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert!(b.done(), "fetches incomplete: {:?}", b.results);
    assert!(b.results.iter().all(|r| r.status == 200), "{:?}", b.results);

    // The access point recorded both fetches through the hook...
    let httpd_svc = world
        .service::<GdnHttpd>(httpd.host, httpd.port)
        .expect("httpd");
    assert_eq!(
        httpd_svc.stats.downloads_recorded, 2,
        "{:?}",
        httpd_svc.stats
    );
    assert_eq!(world.metrics().counter("httpd.stats.recorded"), 2);

    // ...and the records reached the stats object's replica: one state
    // version per accepted `record` write.
    let gos_svc = world
        .service::<GlobeObjectServer>(gos.host, gos.port)
        .expect("stats gos");
    assert_eq!(gos_svc.runtime.replica_version(stats_oid), Some(2));
    assert!(matches!(
        gos_svc.runtime.replica_role(stats_oid),
        Some(RoleSpec::Standalone)
    ));
}

/// A standalone host-credentialed access point ([`GdnDeployment::access_point`])
/// on a host with no object server: it serves `/pkg` like a deployment
/// HTTPD, records downloads through the stats hook (host credentials
/// pass the write gate), and keeps serving after its bound replica's
/// host crashes — the survivor role the churn sweep cells rely on.
#[test]
fn access_point_serves_and_records_off_the_gos_host() {
    let topo = Topology::grid(2, 1, 1, 3);
    // Object servers off the first hosts (GLS/GNS daemons) and off the
    // last (our access point + browser), mirroring the churn layout.
    let gos_hosts: Vec<HostId> = topo
        .sites()
        .filter_map(|s| topo.hosts_in_site(s).get(1).copied())
        .collect();
    let mut world = World::new(topo, NetParams::default(), SEED);
    let gdn = GdnDeployment::install(
        &mut world,
        GdnOptions {
            gos_hosts,
            stats_object: Some("/stats/site".into()),
            gls: globe_gls::GlsConfig::default()
                .with_persistence()
                .with_address_ttl(SimDuration::from_secs(15)),
            ..GdnOptions::default()
        },
    );
    let replicas = vec![gdn.gos_endpoints[0], gdn.gos_endpoints[1]];
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(2),
        "alice",
        vec![
            ModOp::Publish {
                name: "/apps/vital".into(),
                description: "package /apps/vital".into(),
                files: vec![("README".into(), b"survives churn".to_vec())],
                scenario: Scenario::master_slave(replicas.clone(), PropagationMode::PushState),
            },
            stats_publish_op("/stats/site", Scenario::single(replicas[0])),
        ],
    );
    world.add_service(HostId(2), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(60));
    let t = world
        .service::<gdn_core::ModeratorTool>(HostId(2), ports::DRIVER)
        .expect("tool");
    assert!(
        t.results
            .iter()
            .all(|r| matches!(r, ModEvent::PublishDone { result: Ok(_), .. })),
        "{:?}",
        t.results
    );

    // The access point stands on region 1's driver host — a host
    // running neither an object server nor any directory daemon.
    let ap_host = HostId(5);
    assert!(gdn.gos_endpoints.iter().all(|ep| ep.host != ap_host));
    let mut ap = gdn
        .access_point(world.topology(), ap_host)
        .with_stats_object("/stats/site");
    ap.client.config.retry.backoff = SimDuration::from_secs(5);
    world.add_service(ap_host, ports::HTTP, ap);

    let target = Endpoint::new(ap_host, ports::HTTP);
    let browser = Browser::new(target, vec!["/pkg/apps/vital?file=README".into()]);
    world.add_service(ap_host, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(30));
    assert!(
        world
            .service::<Browser>(ap_host, ports::DRIVER)
            .expect("browser")
            .results
            .iter()
            .all(|r| r.status == 200),
        "pre-crash fetch failed"
    );

    // Kill the region-local replica host: the access point must fail
    // over to the surviving master and keep serving.
    world.crash_host(replicas[1].host);
    let browser = Browser::new(target, vec!["/pkg/apps/vital?file=README".into(); 2]);
    world.add_service(ap_host, ports::DRIVER + 1, browser);
    world.run_for(SimDuration::from_secs(90));
    let b = world
        .service::<Browser>(ap_host, ports::DRIVER + 1)
        .expect("browser");
    assert!(
        b.done() && b.results.iter().all(|r| r.status == 200),
        "reads must survive the replica crash: {:?}",
        b.results
    );

    // Host credentials pass the write gate: every fetch was recorded.
    let ap = world
        .service::<GdnHttpd>(ap_host, ports::HTTP)
        .expect("access point");
    assert_eq!(ap.stats.downloads_recorded, 3, "{:?}", ap.stats);
    assert_eq!(world.metrics().counter("rts.reads.stale"), 0);
}

/// One-shot writer through a [`GlobeClient`] session: fires a single
/// prepared write op one second after start, recording each completion
/// with the attempts it consumed.
struct OneShotWriter {
    client: GlobeClient,
    op: Option<WriteOp>,
    results: Vec<(Result<(), String>, u32)>,
}

enum WriteOp {
    /// Big `ADD_FILE` — an idempotent write (add-or-replace).
    AddFile {
        oid: ObjectId,
        data: Vec<u8>,
        deadline: Option<SimDuration>,
    },
    /// `RECORD` — the download-stats increment, non-idempotent.
    Record { oid: ObjectId, name: String },
}

const WRITE_NS: u16 = 0x7902;

impl OneShotWriter {
    fn new(client: GlobeClient, op: WriteOp) -> OneShotWriter {
        OneShotWriter {
            client,
            op: Some(op),
            results: Vec::new(),
        }
    }

    fn drain(&mut self) {
        for done in self.client.take_events() {
            let OpDone {
                result, attempts, ..
            } = done;
            self.results
                .push((result.map(|_| ()).map_err(|e| e.to_string()), attempts));
        }
    }
}

impl Service for OneShotWriter {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), ns_token(WRITE_NS, 0));
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(WRITE_NS, token) {
            match self.op.take() {
                Some(WriteOp::AddFile {
                    oid,
                    data,
                    deadline,
                }) => {
                    let mut op = self
                        .client
                        .op::<gdn_core::package::PackageInterface>(ctx, oid);
                    if let Some(d) = deadline {
                        op = op.deadline(d);
                    }
                    op.invoke(
                        &gdn_core::package::PackageInterface::ADD_FILE,
                        &gdn_core::package::AddFile {
                            name: "big.bin".into(),
                            data,
                        },
                    );
                }
                Some(WriteOp::Record { oid, name }) => {
                    self.client
                        .op::<gdn_core::stats::DownloadStatsInterface>(ctx, oid)
                        .invoke(
                            &gdn_core::stats::DownloadStatsInterface::RECORD,
                            &gdn_core::stats::RecordDownload { name, bytes: 1 },
                        );
                }
                None => {}
            }
            self.drain();
            return;
        }
        if self.client.handle_timer(ctx, token) {
            self.drain();
        }
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.client.handle_datagram(ctx, from, &payload) {
            self.drain();
        }
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.client.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(),
            RtConn::NotMine(_) => {}
        }
    }
    impl_service_any!();
}

/// A single-site world whose campus LAN is so thin that a megabyte-sized
/// write's serialization delay exceeds the replication protocol's 10 s
/// forward timeout — control traffic (GLS, GNS, binds) stays tiny and
/// fast, so only the big writes fail, and they fail *ambiguously*: the
/// replica executes the write after the sender has already given up.
fn slow_lan_world() -> (World, GdnDeployment) {
    let topo = Topology::grid(1, 1, 1, 4);
    let mut params = NetParams::default();
    params.links[1].bandwidth = 100_000; // 100 kB/s site links
    let mut world = World::new(topo, params, SEED);
    let gdn = GdnDeployment::install(
        &mut world,
        GdnOptions {
            gos_hosts: vec![HostId(1)],
            ..GdnOptions::default()
        },
    );
    (world, gdn)
}

/// A payload whose serialization delay on the thin LAN (~15 s) beats the
/// 10 s forward timeout.
fn oversized_payload() -> Vec<u8> {
    vec![0x5A; 1_500_000]
}

/// The idempotency gate end to end: after an *ambiguous* timeout (the
/// invocation reached the replica, only the reply window expired) an
/// idempotent write burns its whole retry budget, while the
/// non-idempotent stats increment fails fast with zero re-invocations —
/// re-running it blindly could double-count.
#[test]
fn ambiguous_timeout_gates_non_idempotent_writes() {
    let (mut world, gdn) = slow_lan_world();
    let gos = gdn.gos_endpoints[0];
    let pkg_oid = publish(
        &mut world,
        &gdn,
        HostId(2),
        "/apps/slow",
        vec![("README".into(), b"thin pipe".to_vec())],
        Scenario::single(gos),
    );
    let stats_tool = gdn.moderator_tool(
        world.topology(),
        HostId(2),
        "alice",
        vec![stats_publish_op("/stats/slow", Scenario::single(gos))],
    );
    world.add_service(HostId(2), ports::DRIVER + 1, stats_tool);
    world.run_for(SimDuration::from_secs(30));
    let stats_oid = match world
        .service::<gdn_core::ModeratorTool>(HostId(2), ports::DRIVER + 1)
        .expect("stats moderator tool")
        .results
        .first()
    {
        Some(ModEvent::PublishDone {
            result: Ok(oid), ..
        }) => *oid,
        other => panic!("stats publish failed: {other:?}"),
    };

    let writer_host = HostId(3);
    let idempotent = OneShotWriter::new(
        GlobeClient::new(gdn.moderator_runtime(writer_host, "alice"), 0x0500),
        WriteOp::AddFile {
            oid: pkg_oid,
            data: oversized_payload(),
            deadline: None,
        },
    );
    let max_attempts = idempotent.client.config.retry.max_attempts;
    let non_idempotent = OneShotWriter::new(
        GlobeClient::new(gdn.moderator_runtime(writer_host, "alice"), 0x0501),
        WriteOp::Record {
            oid: stats_oid,
            // The name IS the payload: big enough that this increment's
            // serialization also outlives the reply window.
            name: format!("/apps/slow/{}", "x".repeat(1_500_000)),
        },
    );
    world.add_service(writer_host, ports::DRIVER + 2, idempotent);
    world.add_service(writer_host, ports::DRIVER + 3, non_idempotent);
    world.run_for(SimDuration::from_secs(60));

    // The idempotent write retried to exhaustion: every attempt's reply
    // window expired while the payload was still serializing.
    let d = world
        .service::<OneShotWriter>(writer_host, ports::DRIVER + 2)
        .expect("idempotent writer");
    assert_eq!(d.results.len(), 1, "{:?}", d.results);
    let (result, attempts) = &d.results[0];
    let err = result.as_ref().expect_err("oversized write cannot succeed");
    assert!(err.contains("timed out"), "{err}");
    assert_eq!(
        *attempts, max_attempts,
        "idempotent write must burn the retry budget"
    );
    assert_eq!(d.client.stats.retries, u64::from(max_attempts));

    // The non-idempotent increment hit the same ambiguous timeout and
    // was NOT re-invoked: one attempt, zero retries.
    let d = world
        .service::<OneShotWriter>(writer_host, ports::DRIVER + 3)
        .expect("non-idempotent writer");
    assert_eq!(d.results.len(), 1, "{:?}", d.results);
    let (result, attempts) = &d.results[0];
    let err = result
        .as_ref()
        .expect_err("oversized record cannot succeed");
    assert!(err.contains("timed out"), "{err}");
    assert_eq!(*attempts, 0, "non-idempotent writes must not be re-invoked");
    assert_eq!(d.client.stats.retries, 0);
}

/// Per-op deadlines: one op is cancelled while its first attempt is
/// still in flight (deadline < forward timeout), another after its
/// first retry entered a long backoff (forward timeout < deadline <
/// backoff expiry). Both complete with `DeadlineExceeded` well before
/// their underlying machinery would have given up, and the stale
/// backoff timer firing later resurrects nothing.
#[test]
fn op_deadlines_cancel_in_flight_and_backed_off_ops() {
    let (mut world, gdn) = slow_lan_world();
    let gos = gdn.gos_endpoints[0];
    let oid = publish(
        &mut world,
        &gdn,
        HostId(2),
        "/apps/deadline",
        vec![("README".into(), b"thin pipe".to_vec())],
        Scenario::single(gos),
    );

    let writer_host = HostId(3);
    // Cancelled mid-flight: the 4 s deadline beats the 10 s forward
    // timeout, so the op dies on its first attempt.
    let in_flight = OneShotWriter::new(
        GlobeClient::new(gdn.moderator_runtime(writer_host, "alice"), 0x0500),
        WriteOp::AddFile {
            oid,
            data: oversized_payload(),
            deadline: Some(SimDuration::from_secs(4)),
        },
    );
    // Cancelled in backoff: the first attempt times out at ~10 s and
    // schedules a 30 s backoff; the 13 s deadline preempts it.
    let mut backed_off_client =
        GlobeClient::new(gdn.moderator_runtime(writer_host, "alice"), 0x0501);
    backed_off_client.config.retry.backoff = SimDuration::from_secs(30);
    let backed_off = OneShotWriter::new(
        backed_off_client,
        WriteOp::AddFile {
            oid,
            data: oversized_payload(),
            deadline: Some(SimDuration::from_secs(13)),
        },
    );
    world.add_service(writer_host, ports::DRIVER + 2, in_flight);
    world.add_service(writer_host, ports::DRIVER + 3, backed_off);

    // 20 s covers both deadlines but neither the serialization delay
    // (~15 s per attempt) nor the 30 s backoff: any completion seen now
    // can only come from the deadline path.
    world.run_for(SimDuration::from_secs(20));
    for (port, want_attempts) in [(ports::DRIVER + 2, 0), (ports::DRIVER + 3, 1)] {
        let d = world
            .service::<OneShotWriter>(writer_host, port)
            .expect("writer");
        assert_eq!(d.results.len(), 1, "port {port}: {:?}", d.results);
        let (result, attempts) = &d.results[0];
        let err = result.as_ref().expect_err("deadline must cancel the op");
        assert!(err.contains("deadline exceeded"), "{err}");
        assert_eq!(*attempts, want_attempts, "port {port}");
    }
    assert_eq!(world.metrics().counter("client.deadline_exceeded"), 2);

    // The dead ops stay dead: the stale backoff timer and the late
    // replica replies find no pending op.
    world.run_for(SimDuration::from_secs(60));
    for port in [ports::DRIVER + 2, ports::DRIVER + 3] {
        let d = world
            .service::<OneShotWriter>(writer_host, port)
            .expect("writer");
        assert_eq!(d.results.len(), 1, "port {port}: {:?}", d.results);
    }
    assert_eq!(world.metrics().counter("client.deadline_exceeded"), 2);
}
