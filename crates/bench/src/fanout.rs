//! GRP fan-out harness: one master, N slaves, a write-heavy
//! download-stats workload.
//!
//! This is the scenario the delta pipeline was built for (1 master ×
//! {1,8,64} slaves, push-state vs push-delta): a moderator-credentialed
//! driver creates a [`DownloadStatsDso`](gdn_core::DownloadStatsDso)
//! object with a master replica and a slave replica per remaining site,
//! then records downloads sequentially; an anonymous probe near the
//! last slave verifies convergence from its local replica. The
//! [`FanoutReport`] carries the world-level metrics the `grp_fanout`
//! bench and the fan-out world tests compare across propagation modes.

use std::sync::Arc;

use gdn_core::stats::{DownloadStatsInterface, RecordDownload, StatQuery, StatsTotals, STATS_IMPL};
use globe_crypto::cert::{CertAuthority, Credentials, Role};
use globe_crypto::gtls::{Mode, TlsConfig};
use globe_gls::{GlsConfig, GlsDeployment, ObjectId};
use globe_net::{
    impl_service_any, ports, ConnEvent, ConnId, Endpoint, HostId, NetParams, Service, ServiceCtx,
    Topology, World,
};
use globe_rts::{
    protocol_id, DsoInterface, GlobeObjectServer, GlobeRuntime, GosCmd, GosResp, ImplRepository,
    PropagationMode, RoleSpec, RtConn, RtEvent, RuntimeConfig,
};
use globe_sim::SimDuration;

const SEED_SALT: u64 = 0x6F75_7466_616E;

/// What one fan-out run measured.
#[derive(Clone, Debug)]
pub struct FanoutReport {
    /// Propagation mode the master used.
    pub mode: PropagationMode,
    /// Slaves attached to the master.
    pub slaves: usize,
    /// Writes the driver completed (must equal the requested count).
    pub writes_completed: usize,
    /// GRP frame encodes performed anywhere in the world.
    pub grp_encodes: u64,
    /// Bytes produced by those encodes (the fan-out cost that scales
    /// with slave count under `PushState`).
    pub grp_bytes_encoded: u64,
    /// Replica blobs written to stable storage.
    pub stable_puts: u64,
    /// Persists skipped because the state digest was unchanged.
    pub digest_skips: u64,
    /// Persists deferred under the delta checkpoint stride.
    pub persist_deferred: u64,
    /// Deltas spliced into replicas.
    pub deltas_applied: u64,
    /// Freshness-oracle counters for locally served reads.
    pub fresh_reads: u64,
    /// Stale counterpart of `fresh_reads`.
    pub stale_reads: u64,
    /// Totals the probe read from its nearest (slave) replica.
    pub probe_totals: Option<StatsTotals>,
    /// Downloads of the hottest package as seen by the probe.
    pub probe_hot_downloads: u64,
    /// State versions of every slave replica at the end of the run.
    pub slave_versions: Vec<u64>,
}

/// Drives the whole scenario: object + replica creation over the GOS
/// control protocol, then sequential writes through the runtime.
struct FanoutDriver {
    runtime: GlobeRuntime,
    master_gos: Endpoint,
    slave_gos: Vec<Endpoint>,
    mode: PropagationMode,
    writes: usize,
    hot_names: Vec<String>,
    phase: Phase,
    oid: Option<ObjectId>,
    /// Completed writes, readable by the harness.
    done_writes: usize,
    failed: Vec<String>,
}

enum Phase {
    CreateMaster,
    CreateSlaves { remaining: usize },
    Bind,
    Write { next: usize },
    Done,
}

impl FanoutDriver {
    fn send_gos(&mut self, ctx: &mut ServiceCtx<'_>, gos: Endpoint, cmd: GosCmd) {
        let conn = self.runtime.open_app_conn(ctx, gos);
        self.runtime.send_app(ctx, conn, &cmd.encode());
    }

    fn next_write(&mut self, ctx: &mut ServiceCtx<'_>, index: usize) {
        let oid = self.oid.expect("write follows creation");
        let name = self.hot_names[index % self.hot_names.len()].clone();
        let inv = DownloadStatsInterface::RECORD.invocation(&RecordDownload {
            name,
            bytes: 4096 + index as u64,
        });
        self.runtime.invoke(ctx, oid, inv, index as u64);
    }

    fn on_gos_resp(&mut self, ctx: &mut ServiceCtx<'_>, resp: GosResp) {
        let (oid, err) = match resp {
            GosResp::Ok { oid, .. } => (Some(ObjectId(oid)), None),
            GosResp::Err { msg, .. } => (None, Some(msg)),
        };
        if let Some(e) = err {
            self.failed.push(e);
            self.phase = Phase::Done;
            return;
        }
        match self.phase {
            Phase::CreateMaster => {
                self.oid = oid;
                if self.slave_gos.is_empty() {
                    self.phase = Phase::Bind;
                    self.runtime.bind(ctx, self.oid.unwrap(), 0);
                } else {
                    self.phase = Phase::CreateSlaves {
                        remaining: self.slave_gos.len(),
                    };
                    let master = self.master_gos;
                    let object = self.oid.unwrap().0;
                    for gos in self.slave_gos.clone() {
                        self.send_gos(
                            ctx,
                            gos,
                            GosCmd::CreateReplica {
                                req: 1,
                                oid: object,
                                impl_id: STATS_IMPL.0,
                                protocol: protocol_id::MASTER_SLAVE,
                                role: RoleSpec::Slave { master },
                            },
                        );
                    }
                }
            }
            Phase::CreateSlaves { ref mut remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.phase = Phase::Bind;
                    self.runtime.bind(ctx, self.oid.unwrap(), 0);
                }
            }
            _ => {}
        }
    }

    fn on_rt_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: RtEvent) {
        match (&mut self.phase, ev) {
            (Phase::Bind, RtEvent::BindDone { result, .. }) => match result {
                Ok(_) => {
                    self.phase = Phase::Write { next: 1 };
                    self.next_write(ctx, 0);
                }
                Err(e) => {
                    self.failed.push(format!("bind: {e}"));
                    self.phase = Phase::Done;
                }
            },
            (Phase::Write { next }, RtEvent::InvokeDone { result, .. }) => {
                match result {
                    Ok(_) => self.done_writes += 1,
                    Err(e) => self.failed.push(format!("write: {e}")),
                }
                if *next < self.writes {
                    let index = *next;
                    *next += 1;
                    self.next_write(ctx, index);
                } else {
                    self.phase = Phase::Done;
                }
            }
            _ => {}
        }
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        loop {
            let events = self.runtime.take_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                self.on_rt_event(ctx, ev);
            }
        }
    }
}

impl Service for FanoutDriver {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        let master = self.master_gos;
        let mode = self.mode;
        self.send_gos(
            ctx,
            master,
            GosCmd::CreateObject {
                req: 1,
                impl_id: STATS_IMPL.0,
                protocol: protocol_id::MASTER_SLAVE,
                role: RoleSpec::Master { mode },
            },
        );
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.runtime.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.runtime.handle_conn_event(ctx, conn, ev) {
            RtConn::AppData { frames, .. } => {
                for f in frames {
                    if let Ok(resp) = GosResp::decode(&f) {
                        self.on_gos_resp(ctx, resp);
                    }
                }
                self.drain(ctx);
            }
            RtConn::Consumed => self.drain(ctx),
            RtConn::NotMine(_) => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.runtime.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }
    impl_service_any!();
}

/// Reads totals and the hot package's counters once, through a proxy
/// whose nearest replica is the local slave.
struct ReaderProbe {
    runtime: GlobeRuntime,
    oid: ObjectId,
    hot_name: String,
    totals: Option<StatsTotals>,
    hot_downloads: u64,
}

impl ReaderProbe {
    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        loop {
            let events = self.runtime.take_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                match ev {
                    RtEvent::BindDone { result: Ok(_), .. } => {
                        let oid = self.oid;
                        self.runtime.invoke(
                            ctx,
                            oid,
                            DownloadStatsInterface::TOTALS.invocation(&()),
                            1,
                        );
                        let hot = StatQuery {
                            name: self.hot_name.clone(),
                        };
                        self.runtime.invoke(
                            ctx,
                            oid,
                            DownloadStatsInterface::GET_STAT.invocation(&hot),
                            2,
                        );
                    }
                    RtEvent::InvokeDone {
                        token,
                        result: Ok(data),
                        ..
                    } => {
                        if token == 1 {
                            self.totals = DownloadStatsInterface::TOTALS.decode_result(&data).ok();
                        } else if let Ok(stat) =
                            DownloadStatsInterface::GET_STAT.decode_result(&data)
                        {
                            self.hot_downloads = stat.downloads;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

impl Service for ReaderProbe {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        let oid = self.oid;
        self.runtime.bind(ctx, oid, 0);
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.runtime.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.runtime.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(_) => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.runtime.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }
    impl_service_any!();
}

fn client_runtime(
    ca: &CertAuthority,
    repo: &Arc<ImplRepository>,
    gls: &Arc<GlsDeployment>,
    host: HostId,
    identity: Option<(Role, &str, u64)>,
) -> GlobeRuntime {
    let roots = vec![ca.root_cert().clone()];
    let tls_client = match identity {
        Some((role, name, seed)) => TlsConfig::client_with_identity(
            Mode::AuthEncrypt,
            Credentials::issue(ca, name, role, seed),
            roots.clone(),
        ),
        None => TlsConfig::client(Mode::AuthEncrypt, roots.clone()),
    };
    let cfg = RuntimeConfig {
        grp_port: ports::DRIVER,
        tls_server: TlsConfig::client(Mode::AuthEncrypt, roots),
        tls_client,
        accept_incoming: false,
        cache_ttl: SimDuration::from_secs(30),
        writer_roles: RuntimeConfig::default_writer_roles(),
        open_writes: false,
        persist: false,
    };
    GlobeRuntime::new(cfg, Arc::clone(repo), Arc::clone(gls), host, 0x0500)
}

/// Runs the full scenario and returns its measurements.
///
/// Deterministic given `(slaves, mode, writes, seed)`. The workload
/// cycles over eight package names so state size stays flat while the
/// write count grows.
pub fn grp_fanout_run(
    slaves: usize,
    mode: PropagationMode,
    writes: usize,
    seed: u64,
) -> FanoutReport {
    // One site for the master plus one per slave; the driver and probe
    // live on the second host of the last site.
    let sites = (slaves + 1) as u32;
    let topo = Topology::grid(1, 1, sites, 2);
    let mut world = World::new(topo, NetParams::default(), seed ^ SEED_SALT);
    let gls = GlsDeployment::plan(world.topology(), &GlsConfig::default());
    gls.install(&mut world);
    let ca = CertAuthority::new("fanout-root", seed);
    let mut repo = ImplRepository::new();
    DownloadStatsInterface::register(&mut repo);
    let repo = Arc::new(repo);

    let topo = world.topology().clone();
    let site_hosts: Vec<&[HostId]> = topo.sites().map(|s| topo.hosts_in_site(s)).collect();
    let gos_hosts: Vec<HostId> = site_hosts.iter().map(|hs| hs[0]).collect();
    for &host in &gos_hosts {
        let creds = Credentials::issue(
            &ca,
            &format!("gos-{}", host.0),
            Role::Host,
            seed + host.0 as u64,
        );
        let roots = vec![ca.root_cert().clone()];
        let cfg = RuntimeConfig {
            grp_port: ports::GOS_CTL,
            tls_server: TlsConfig::server_auth(Mode::AuthEncrypt, creds.clone(), roots.clone()),
            tls_client: TlsConfig::client_with_identity(Mode::AuthEncrypt, creds, roots),
            accept_incoming: true,
            cache_ttl: SimDuration::from_secs(30),
            writer_roles: RuntimeConfig::default_writer_roles(),
            open_writes: false,
            persist: true,
        };
        let gos = GlobeObjectServer::new(cfg, Arc::clone(&repo), Arc::clone(&gls), host, 0x0100);
        world.add_service(host, ports::GOS_CTL, gos);
    }

    let hot_names: Vec<String> = (0..8).map(|i| format!("/apps/pkg-{i}")).collect();
    let driver_host = *site_hosts.last().unwrap().last().unwrap();
    let driver = FanoutDriver {
        runtime: client_runtime(
            &ca,
            &repo,
            &gls,
            driver_host,
            Some((Role::Moderator, "fanout-mod", seed + 1000)),
        ),
        master_gos: Endpoint::new(gos_hosts[0], ports::GOS_CTL),
        slave_gos: gos_hosts[1..]
            .iter()
            .map(|&h| Endpoint::new(h, ports::GOS_CTL))
            .collect(),
        mode,
        writes,
        hot_names: hot_names.clone(),
        phase: Phase::CreateMaster,
        oid: None,
        done_writes: 0,
        failed: Vec::new(),
    };
    world.add_service(driver_host, ports::DRIVER, driver);
    world.start();

    // Sequential writes: generous deadline, early exit when done.
    let deadline = SimDuration::from_secs(60 + 2 * writes as u64);
    let mut elapsed = SimDuration::from_secs(0);
    loop {
        world.run_for(SimDuration::from_secs(10));
        elapsed += SimDuration::from_secs(10);
        let d = world
            .service::<FanoutDriver>(driver_host, ports::DRIVER)
            .expect("driver");
        if matches!(d.phase, Phase::Done) || elapsed >= deadline {
            break;
        }
    }
    // Let in-flight propagation settle before probing.
    world.run_for(SimDuration::from_secs(30));

    let d = world
        .service::<FanoutDriver>(driver_host, ports::DRIVER)
        .expect("driver");
    assert!(d.failed.is_empty(), "fan-out run failed: {:?}", d.failed);
    let oid = d.oid.expect("object created");
    let writes_completed = d.done_writes;

    // Probe from the last slave's site: its proxy reads locally.
    let probe = ReaderProbe {
        runtime: client_runtime(&ca, &repo, &gls, driver_host, None),
        oid,
        hot_name: hot_names[0].clone(),
        totals: None,
        hot_downloads: 0,
    };
    world.add_service(driver_host, ports::DRIVER + 1, probe);
    world.run_for(SimDuration::from_secs(30));

    let slave_versions: Vec<u64> = gos_hosts[1..]
        .iter()
        .map(|&h| {
            world
                .service::<GlobeObjectServer>(h, ports::GOS_CTL)
                .expect("slave gos")
                .runtime
                .replica_version(oid)
                .unwrap_or(0)
        })
        .collect();
    let probe = world
        .service::<ReaderProbe>(driver_host, ports::DRIVER + 1)
        .expect("probe");
    let m = world.metrics();
    FanoutReport {
        mode,
        slaves,
        writes_completed,
        grp_encodes: m.counter("rts.grp.encodes"),
        grp_bytes_encoded: m.counter("rts.grp.bytes_encoded"),
        stable_puts: m.counter("rts.persist.stable_puts"),
        digest_skips: m.counter("rts.persist.digest_skips"),
        persist_deferred: m.counter("rts.persist.deferred"),
        deltas_applied: m.counter("rts.grp.deltas_applied"),
        fresh_reads: m.counter("rts.reads.fresh"),
        stale_reads: m.counter("rts.reads.stale"),
        probe_totals: probe.totals.clone(),
        probe_hot_downloads: probe.hot_downloads,
        slave_versions,
    }
}
