//! Name types: DNS names and Globe object names, and the mapping between
//! them.
//!
//! The paper's Globe Name Service prototype (§5) maps human-readable,
//! path-style Globe object names (`/nl/vu/cs/globe/somePackage`) onto DNS
//! names (`somePackage.globe.cs.vu.nl`) by reversing the components, then
//! stores the object identifier in a TXT record. For the GDN, names live
//! in a single DNS leaf domain (the *GDN Zone*) so users never see the
//! DNS suffix: `/apps/graphics/Gimp` ↔ `gimp.graphics.apps.<gdn-zone>`.

use std::error::Error;
use std::fmt;

/// Errors from name parsing and validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty, too long, or contained a forbidden character.
    BadLabel(String),
    /// The whole name exceeds the DNS length limit.
    TooLong,
    /// A Globe name must start with `/` and have at least one component.
    BadGlobeName(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::BadLabel(l) => write!(f, "invalid DNS label {l:?}"),
            NameError::TooLong => write!(f, "name exceeds 255 octets"),
            NameError::BadGlobeName(n) => write!(f, "invalid globe name {n:?}"),
        }
    }
}

impl Error for NameError {}

/// Validates one DNS label (paper §5 notes DNS restricts name syntax —
/// enforced here: 1–63 chars of `a-z`, `0-9`, `-`, `_`, lowercased).
fn validate_label(label: &str) -> Result<String, NameError> {
    if label.is_empty() || label.len() > 63 {
        return Err(NameError::BadLabel(label.to_owned()));
    }
    let lower = label.to_ascii_lowercase();
    if !lower
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
    {
        return Err(NameError::BadLabel(label.to_owned()));
    }
    Ok(lower)
}

/// An absolute DNS name: an ordered list of labels, least significant
/// first (`www.vu.nl` is `["www", "vu", "nl"]`). The root is the empty
/// list.
///
/// # Examples
///
/// ```
/// use globe_gns::name::DnsName;
///
/// let n = DnsName::parse("Gimp.graphics.apps.gdn.glb").unwrap();
/// assert_eq!(n.to_string(), "gimp.graphics.apps.gdn.glb.");
/// let zone = DnsName::parse("gdn.glb").unwrap();
/// assert!(n.is_subdomain_of(&zone));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DnsName {
    labels: Vec<String>,
}

impl DnsName {
    /// The DNS root (empty name).
    pub fn root() -> DnsName {
        DnsName { labels: Vec::new() }
    }

    /// Parses a dotted name; a trailing dot is accepted and ignored.
    pub fn parse(s: &str) -> Result<DnsName, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(DnsName::root());
        }
        let labels = s
            .split('.')
            .map(validate_label)
            .collect::<Result<Vec<_>, _>>()?;
        let name = DnsName { labels };
        if name.wire_len() > 255 {
            return Err(NameError::TooLong);
        }
        Ok(name)
    }

    /// Builds a name from labels, least significant first.
    pub fn from_labels<I: IntoIterator<Item = S>, S: AsRef<str>>(
        labels: I,
    ) -> Result<DnsName, NameError> {
        let labels = labels
            .into_iter()
            .map(|l| validate_label(l.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        let name = DnsName { labels };
        if name.wire_len() > 255 {
            return Err(NameError::TooLong);
        }
        Ok(name)
    }

    /// The labels, least significant first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels (0 for the root).
    pub fn depth(&self) -> usize {
        self.labels.len()
    }

    /// Approximate wire length, for the 255-octet limit.
    fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// The parent name (drops the least significant label); `None` at
    /// the root.
    pub fn parent(&self) -> Option<DnsName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DnsName {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Whether `self` is equal to or below `zone`.
    pub fn is_subdomain_of(&self, zone: &DnsName) -> bool {
        if zone.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - zone.labels.len();
        self.labels[offset..] == zone.labels[..]
    }

    /// Prepends `label`, producing a child name.
    pub fn child(&self, label: &str) -> Result<DnsName, NameError> {
        let mut labels = vec![validate_label(label)?];
        labels.extend(self.labels.iter().cloned());
        let name = DnsName { labels };
        if name.wire_len() > 255 {
            return Err(NameError::TooLong);
        }
        Ok(name)
    }

    /// The label immediately below `zone` on the path to `self`.
    ///
    /// Used by authoritative servers to locate the delegation covering a
    /// query. Returns `None` if `self` is not strictly below `zone`.
    pub fn step_below(&self, zone: &DnsName) -> Option<DnsName> {
        if !self.is_subdomain_of(zone) || self.labels.len() == zone.labels.len() {
            return None;
        }
        let keep = zone.labels.len() + 1;
        Some(DnsName {
            labels: self.labels[self.labels.len() - keep..].to_vec(),
        })
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for l in &self.labels {
            write!(f, "{l}.")?;
        }
        Ok(())
    }
}

impl fmt::Debug for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dns:{self}")
    }
}

/// A human-readable Globe object name: `/apps/graphics/Gimp`.
///
/// Globe names form the hierarchical name space of paper §5; they map
/// one-to-one onto DNS names by reversing the components and appending
/// the zone suffix.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobeName {
    components: Vec<String>,
}

impl GlobeName {
    /// Parses `/a/b/c` (components are validated as DNS labels since
    /// they must survive the DNS mapping).
    pub fn parse(s: &str) -> Result<GlobeName, NameError> {
        let Some(rest) = s.strip_prefix('/') else {
            return Err(NameError::BadGlobeName(s.to_owned()));
        };
        if rest.is_empty() {
            return Err(NameError::BadGlobeName(s.to_owned()));
        }
        let components = rest
            .split('/')
            .map(validate_label)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| NameError::BadGlobeName(s.to_owned()))?;
        Ok(GlobeName { components })
    }

    /// The path components, most significant first
    /// (`/apps/graphics/Gimp` → `["apps", "graphics", "gimp"]`).
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Maps this Globe name into DNS space under `zone` (paper §5:
    /// reverse the components, prefix the GDN Zone before handing the
    /// name to DNS).
    pub fn to_dns(&self, zone: &DnsName) -> Result<DnsName, NameError> {
        DnsName::from_labels(
            self.components
                .iter()
                .rev()
                .map(|c| c.as_str())
                .chain(zone.labels().iter().map(|l| l.as_str())),
        )
    }

    /// Reconstructs the Globe name from a DNS name under `zone`.
    pub fn from_dns(name: &DnsName, zone: &DnsName) -> Option<GlobeName> {
        if !name.is_subdomain_of(zone) || name.depth() == zone.depth() {
            return None;
        }
        let n = name.depth() - zone.depth();
        let components: Vec<String> = name.labels()[..n].iter().rev().cloned().collect();
        Some(GlobeName { components })
    }
}

impl fmt::Display for GlobeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for GlobeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "globe:{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = DnsName::parse("WWW.VU.nl").unwrap();
        assert_eq!(n.to_string(), "www.vu.nl.");
        assert_eq!(n.labels(), &["www", "vu", "nl"]);
        assert_eq!(DnsName::parse("www.vu.nl.").unwrap(), n);
        assert_eq!(DnsName::root().to_string(), ".");
        assert_eq!(DnsName::parse("").unwrap(), DnsName::root());
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(DnsName::parse("bad label.nl").is_err());
        assert!(DnsName::parse("ok..nl").is_err());
        assert!(DnsName::parse(&"x".repeat(64)).is_err());
        assert!(DnsName::parse("ütf8.nl").is_err());
    }

    #[test]
    fn rejects_overlong_names() {
        let long = (0..50).map(|_| "abcde").collect::<Vec<_>>().join(".");
        assert_eq!(DnsName::parse(&long).unwrap_err(), NameError::TooLong);
    }

    #[test]
    fn parent_and_child() {
        let n = DnsName::parse("a.b.c").unwrap();
        assert_eq!(n.parent().unwrap().to_string(), "b.c.");
        assert_eq!(DnsName::parse("b.c").unwrap().child("a").unwrap(), n);
        assert!(DnsName::root().parent().is_none());
    }

    #[test]
    fn subdomain_relation() {
        let zone = DnsName::parse("gdn.glb").unwrap();
        let name = DnsName::parse("gimp.apps.gdn.glb").unwrap();
        assert!(name.is_subdomain_of(&zone));
        assert!(zone.is_subdomain_of(&zone));
        assert!(!zone.is_subdomain_of(&name));
        assert!(name.is_subdomain_of(&DnsName::root()));
        assert!(!DnsName::parse("gimp.apps.gdn.org")
            .unwrap()
            .is_subdomain_of(&zone));
    }

    #[test]
    fn step_below_finds_delegation_point() {
        let root = DnsName::root();
        let glb = DnsName::parse("glb").unwrap();
        let deep = DnsName::parse("gimp.apps.gdn.glb").unwrap();
        assert_eq!(deep.step_below(&root).unwrap(), glb);
        assert_eq!(
            deep.step_below(&glb).unwrap(),
            DnsName::parse("gdn.glb").unwrap()
        );
        assert!(glb.step_below(&glb).is_none());
        assert!(glb.step_below(&deep).is_none());
    }

    #[test]
    fn globe_name_parse_display() {
        let g = GlobeName::parse("/apps/graphics/Gimp").unwrap();
        assert_eq!(g.to_string(), "/apps/graphics/gimp");
        assert_eq!(g.components(), &["apps", "graphics", "gimp"]);
        assert!(GlobeName::parse("apps/graphics").is_err());
        assert!(GlobeName::parse("/").is_err());
        assert!(GlobeName::parse("").is_err());
        assert!(GlobeName::parse("/bad label").is_err());
    }

    #[test]
    fn globe_dns_round_trip() {
        let zone = DnsName::parse("gdn.glb").unwrap();
        let g = GlobeName::parse("/apps/graphics/gimp").unwrap();
        let dns = g.to_dns(&zone).unwrap();
        // Paper §5: reversed components under the zone.
        assert_eq!(dns.to_string(), "gimp.graphics.apps.gdn.glb.");
        assert_eq!(GlobeName::from_dns(&dns, &zone).unwrap(), g);
        // A name outside the zone does not map back.
        assert!(GlobeName::from_dns(&dns, &DnsName::parse("other.glb").unwrap()).is_none());
        assert!(GlobeName::from_dns(&zone, &zone).is_none());
    }

    #[test]
    fn paper_example_mapping() {
        // Paper §5: /nl/vu/cs/globe/somePackage → somePackage.globe.cs.vu.nl
        let g = GlobeName::parse("/nl/vu/cs/globe/somePackage").unwrap();
        let dns = g.to_dns(&DnsName::root()).unwrap();
        assert_eq!(dns.to_string(), "somepackage.globe.cs.vu.nl.");
    }
}
