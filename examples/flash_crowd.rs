//! Flash crowd with run-time adaptation (paper §3.1: "the information's
//! replication scenario should adapt to changes in its popularity").
//!
//! A package lives on one server in Europe. A crowd forms in another
//! region; the adaptation controller notices the regional demand spike
//! and commands a replica into that region; response times collapse.
//!
//! Run with: `cargo run --release --example flash_crowd`

use globe::gdn::{GdnDeployment, GdnOptions, ModEvent, ModOp, ModeratorTool, Scenario};
use globe::net::{ports, HostId, NetParams, Topology, World};
use globe::rts::RuntimeConfig;
use globe::sim::{SimDuration, SimTime};
use globe::workloads::{window_stats, AdaptiveController, HttpLoadGen, ManagedObject};

fn main() {
    let topo = Topology::grid(2, 1, 1, 3);
    let mut world = World::new(topo, NetParams::default(), 5);
    let gdn = GdnDeployment::install(&mut world, GdnOptions::default());

    let home_gos = gdn.gos_endpoints[0];
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(1),
        "alice",
        vec![ModOp::Publish {
            name: "/apps/hotstuff".into(),
            description: "about to be slashdotted".into(),
            files: vec![("pkg.tar".into(), vec![9u8; 32 * 1024])],
            scenario: Scenario::single(home_gos),
        }],
    );
    world.add_service(HostId(1), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(30));
    let oid = match world
        .service::<ModeratorTool>(HostId(1), ports::DRIVER)
        .expect("tool")
        .results
        .first()
    {
        Some(ModEvent::PublishDone {
            result: Ok(oid), ..
        }) => *oid,
        other => panic!("publish failed: {other:?}"),
    };

    // The adaptation controller, armed with moderator credentials.
    let cfg = RuntimeConfig {
        grp_port: ports::DRIVER,
        tls_server: gdn.security.anonymous_client(),
        tls_client: gdn.security.moderator_client("ops"),
        accept_incoming: false,
        cache_ttl: SimDuration::from_secs(60),
        writer_roles: RuntimeConfig::default_writer_roles(),
        open_writes: false,
        persist: false,
    };
    let runtime = globe::rts::GlobeRuntime::new(
        cfg,
        std::sync::Arc::clone(&gdn.repo),
        std::sync::Arc::clone(&gdn.gls),
        HostId(2),
        0x0400,
    );
    world.add_service(
        HostId(2),
        ports::DRIVER,
        AdaptiveController::new(
            runtime,
            vec![ManagedObject::package(0, oid, home_gos)],
            vec![gdn.gos_endpoints[0], gdn.gos_endpoints[1]],
            SimDuration::from_secs(10),
            20,
        ),
    );

    // The crowd arrives in region 1.
    let crowd_host = HostId(5);
    let httpd = gdn.httpd_for(world.topology(), crowd_host);
    let t0 = world.now();
    let end = t0 + SimDuration::from_secs(180);
    world.add_service(
        crowd_host,
        ports::DRIVER,
        HttpLoadGen::new(httpd, vec!["/apps/hotstuff".into()], 0.0, 4.0, end, true),
    );
    world.run_until(end + SimDuration::from_secs(30));

    let g = world
        .service::<HttpLoadGen>(crowd_host, ports::DRIVER)
        .expect("crowd");
    println!("flash crowd on /apps/hotstuff (4 req/s from the far region)\n");
    println!("| window (s) | requests | median ms | p99 ms |");
    println!("|---|---|---|---|");
    let mut first_window_median = 0.0;
    let mut last_window_median = f64::MAX;
    for w in 0..6 {
        let from = t0 + SimDuration::from_secs(30 * w);
        let to = from + SimDuration::from_secs(30);
        let s = window_stats(&g.samples, from, to);
        if w == 0 {
            first_window_median = s.median_ms;
        }
        if w == 5 {
            last_window_median = s.median_ms;
        }
        println!(
            "| {}-{} | {} | {:.1} | {:.1} |",
            30 * w,
            30 * (w + 1),
            s.count,
            s.median_ms,
            s.p99_ms
        );
    }
    let added = world.metrics().counter("adapt.replicas_added");
    println!("\nreplicas added by the controller: {added}");
    assert!(added >= 1, "controller must have reacted");
    assert!(
        last_window_median * 5.0 < first_window_median,
        "adaptation must collapse the crowd's response time \
         (first {first_window_median:.1} ms, last {last_window_median:.1} ms)"
    );
    println!(
        "median response collapsed {:.0}x after adaptation",
        first_window_median / last_window_median.max(0.001)
    );
    let _ = SimTime::ZERO;
}
