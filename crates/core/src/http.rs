//! A minimal HTTP/1.0 subset: enough for standard browsers to fetch
//! package listings and files from GDN-enabled HTTPDs (paper §4).
//!
//! Streams in this system preserve message boundaries, so one request
//! or response is one transport message; no chunking or keep-alive
//! negotiation is modelled (documented simplification).

/// A parsed HTTP request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HttpRequest {
    /// Request method (only `GET` is used by the GDN).
    pub method: String,
    /// Request path, e.g. `/pkg/apps/graphics/gimp?file=README`.
    pub path: String,
}

impl HttpRequest {
    /// Builds a GET request message.
    pub fn get(path: &str) -> Vec<u8> {
        format!("GET {path} HTTP/1.0\r\n\r\n").into_bytes()
    }

    /// Parses a request message.
    pub fn parse(data: &[u8]) -> Option<HttpRequest> {
        let text = std::str::from_utf8(data).ok()?;
        let first = text.lines().next()?;
        let mut parts = first.split_whitespace();
        let method = parts.next()?.to_owned();
        let path = parts.next()?.to_owned();
        let version = parts.next()?;
        if !version.starts_with("HTTP/") {
            return None;
        }
        Some(HttpRequest { method, path })
    }

    /// Splits the path into `(route, query)` at the first `?`.
    pub fn split_query(&self) -> (&str, Option<&str>) {
        match self.path.split_once('?') {
            Some((route, q)) => (route, Some(q)),
            None => (self.path.as_str(), None),
        }
    }
}

/// A parsed HTTP response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HttpResponse {
    /// Status code (200, 404, 500, 502...).
    pub status: u16,
    /// Content-Type header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Builds a response message.
    pub fn build(status: u16, content_type: &str, body: &[u8]) -> Vec<u8> {
        let reason = match status {
            200 => "OK",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            504 => "Gateway Timeout",
            _ => "Unknown",
        };
        let mut out = format!(
            "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        out.extend_from_slice(body);
        out
    }

    /// Parses a response message.
    pub fn parse(data: &[u8]) -> Option<HttpResponse> {
        // Headers are ASCII; the body may be binary. Find the separator
        // on bytes.
        let sep = data.windows(4).position(|w| w == b"\r\n\r\n")?;
        let head = std::str::from_utf8(&data[..sep]).ok()?;
        let body = data[sep + 4..].to_vec();
        let mut lines = head.lines();
        let status_line = lines.next()?;
        let mut parts = status_line.split_whitespace();
        let version = parts.next()?;
        if !version.starts_with("HTTP/") {
            return None;
        }
        let status: u16 = parts.next()?.parse().ok()?;
        let mut content_type = String::from("application/octet-stream");
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("content-type") {
                    content_type = v.trim().to_owned();
                }
            }
        }
        Some(HttpResponse {
            status,
            content_type,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let msg = HttpRequest::get("/pkg/apps/graphics/gimp?file=README");
        let req = HttpRequest::parse(&msg).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/pkg/apps/graphics/gimp?file=README");
        let (route, query) = req.split_query();
        assert_eq!(route, "/pkg/apps/graphics/gimp");
        assert_eq!(query, Some("file=README"));
    }

    #[test]
    fn request_without_query() {
        let req = HttpRequest::parse(&HttpRequest::get("/pkg/os/linux")).unwrap();
        assert_eq!(req.split_query(), ("/pkg/os/linux", None));
    }

    #[test]
    fn response_round_trip_binary_body() {
        let body = vec![0u8, 159, 146, 150]; // not valid UTF-8
        let msg = HttpResponse::build(200, "application/octet-stream", &body);
        let resp = HttpResponse::parse(&msg).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, body);
        assert_eq!(resp.content_type, "application/octet-stream");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(HttpRequest::parse(b"\xFF\xFE").is_none());
        assert!(HttpRequest::parse(b"GET").is_none());
        assert!(HttpRequest::parse(b"GET /x NOTHTTP").is_none());
        assert!(HttpResponse::parse(b"junk").is_none());
        assert!(HttpResponse::parse(b"HTTP/1.0 abc OK\r\n\r\n").is_none());
    }

    #[test]
    fn status_reasons() {
        for (code, word) in [
            (404u16, "Not Found"),
            (502, "Bad Gateway"),
            (999, "Unknown"),
        ] {
            let msg = HttpResponse::build(code, "text/plain", b"");
            assert!(String::from_utf8_lossy(&msg).contains(word));
        }
    }
}
