//! Measurement primitives: counters and log-bucketed histograms.
//!
//! Every number reported in `EXPERIMENTS.md` flows through a [`Metrics`]
//! registry. Counters accumulate monotonically (bytes per network tier,
//! protocol message counts, cache hits). Histograms record latency samples
//! with bounded memory using logarithmic major buckets subdivided linearly,
//! in the style of HDR histograms: relative quantile error is bounded by
//! the sub-bucket width (1/32 ≈ 3%), which is far below the effects the
//! experiments measure.
//!
//! # Hot-path design
//!
//! Names are interned: the registry maps each dotted-path key to a dense
//! index once, and all values live in flat vectors. The string API
//! ([`Metrics::inc`], [`Metrics::record`]) does a single hash lookup per
//! call; call sites on the simulation hot path resolve a [`MetricId`] /
//! [`HistogramId`] handle once ([`Metrics::metric_id`],
//! [`Metrics::hist_id`]) and then bump through it
//! ([`Metrics::inc_id`], [`Metrics::record_id`]) with a plain vector
//! index — no hashing, no string compares, no allocation. Reports stay
//! deterministic because [`Metrics::counters`] / [`Metrics::histograms`]
//! sort by name at call time, independent of interning order.

use std::fmt;

use crate::fxhash::FxHashMap;

/// Number of linear sub-buckets per power of two. Must be a power of two.
const SUB_BUCKETS: u64 = 32;
const SUB_SHIFT: u32 = 5; // log2(SUB_BUCKETS)

/// A fixed-memory histogram of `u64` samples with ~3% quantile resolution.
///
/// Buckets are a dense vector indexed by bucket number (grown lazily to
/// the highest magnitude seen), so recording is a bounds check and an
/// add — no tree walk.
///
/// # Examples
///
/// ```
/// use globe_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((450..=550).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    /// Dense bucket counts, indexed by bucket number; the vector length
    /// covers the largest bucket touched so far.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> u32 {
    if v < SUB_BUCKETS {
        // Values below SUB_BUCKETS are exact.
        v as u32
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_SHIFT
        let major = msb - SUB_SHIFT;
        let sub = ((v >> major) - SUB_BUCKETS) as u32; // in [0, SUB_BUCKETS)
        SUB_BUCKETS as u32 + major * SUB_BUCKETS as u32 + sub
    }
}

/// Returns a representative (midpoint) value for a bucket index.
fn bucket_value(idx: u32) -> u64 {
    if idx < SUB_BUCKETS as u32 {
        idx as u64
    } else {
        let rel = idx - SUB_BUCKETS as u32;
        let major = rel / SUB_BUCKETS as u32;
        let sub = (rel % SUB_BUCKETS as u32) as u64;
        let base = (SUB_BUCKETS + sub) << major;
        let width = 1u64 << major;
        base + width / 2
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bump(&mut self, idx: u32, n: u64) {
        let idx = idx as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.bump(bucket_index(v), 1);
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.bump(bucket_index(v), n);
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Returns the arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns the smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Returns the largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns an approximation of the `q`-quantile (`q` in `[0, 1]`),
    /// or 0 if the histogram is empty.
    ///
    /// The returned value is the representative value of the bucket
    /// containing the quantile rank, so the relative error is bounded by
    /// the sub-bucket width (~3%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= target {
                return bucket_value(idx as u32).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, &theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.min(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// A precomputed handle to one counter in a [`Metrics`] registry.
///
/// Resolve once per call site with [`Metrics::metric_id`]; bump with
/// [`Metrics::inc_id`]. Handles are only meaningful against the
/// registry that issued them.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MetricId(u32);

/// A precomputed handle to one histogram in a [`Metrics`] registry
/// (see [`MetricId`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HistogramId(u32);

/// A named registry of counters and histograms.
///
/// Keys are free-form dotted paths (`"net.bytes.region"`,
/// `"gls.lookup.hops"`). The registry is intentionally permissive — any
/// component may create any key — because experiments slice metrics in ways
/// the components cannot anticipate.
///
/// # Examples
///
/// ```
/// use globe_sim::Metrics;
///
/// let mut m = Metrics::new();
/// m.inc("requests", 1);
/// m.record("latency_us", 1500);
/// assert_eq!(m.counter("requests"), 1);
/// assert_eq!(m.histogram("latency_us").unwrap().count(), 1);
///
/// // Hot call sites intern the key once and bump through the handle.
/// let id = m.metric_id("requests");
/// m.inc_id(id, 2);
/// assert_eq!(m.counter("requests"), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counter_index: FxHashMap<Box<str>, u32>,
    counter_names: Vec<Box<str>>,
    counter_values: Vec<u64>,
    hist_index: FxHashMap<Box<str>, u32>,
    hist_names: Vec<Box<str>>,
    hist_values: Vec<Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Interns `key` and returns its counter handle, creating the
    /// counter at zero if needed. Counters that are never incremented
    /// stay invisible to [`Metrics::counters`] and the report.
    pub fn metric_id(&mut self, key: &str) -> MetricId {
        if let Some(&i) = self.counter_index.get(key) {
            return MetricId(i);
        }
        let i = self.counter_values.len() as u32;
        self.counter_index.insert(key.into(), i);
        self.counter_names.push(key.into());
        self.counter_values.push(0);
        MetricId(i)
    }

    /// Adds `by` to the counter behind `id` — a plain vector index.
    #[inline]
    pub fn inc_id(&mut self, id: MetricId, by: u64) {
        self.counter_values[id.0 as usize] += by;
    }

    /// Adds `by` to the counter named `key`, creating it at zero first if
    /// needed. One hash lookup; hot call sites should resolve a
    /// [`MetricId`] once instead.
    pub fn inc(&mut self, key: &str, by: u64) {
        match self.counter_index.get(key) {
            Some(&i) => self.counter_values[i as usize] += by,
            None => {
                let id = self.metric_id(key);
                self.counter_values[id.0 as usize] = by;
            }
        }
    }

    /// Returns the value of a counter (0 if it was never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counter_index
            .get(key)
            .map(|&i| self.counter_values[i as usize])
            .unwrap_or(0)
    }

    /// Interns `key` and returns its histogram handle. Histograms with
    /// no samples stay invisible to [`Metrics::histogram`],
    /// [`Metrics::histograms`] and the report.
    pub fn hist_id(&mut self, key: &str) -> HistogramId {
        if let Some(&i) = self.hist_index.get(key) {
            return HistogramId(i);
        }
        let i = self.hist_values.len() as u32;
        self.hist_index.insert(key.into(), i);
        self.hist_names.push(key.into());
        self.hist_values.push(Histogram::new());
        HistogramId(i)
    }

    /// Records a sample into the histogram behind `id`.
    #[inline]
    pub fn record_id(&mut self, id: HistogramId, v: u64) {
        self.hist_values[id.0 as usize].record(v);
    }

    /// Records a sample into the histogram named `key`. One hash
    /// lookup; hot call sites should resolve a [`HistogramId`] once.
    pub fn record(&mut self, key: &str, v: u64) {
        match self.hist_index.get(key) {
            Some(&i) => self.hist_values[i as usize].record(v),
            None => {
                let id = self.hist_id(key);
                self.hist_values[id.0 as usize].record(v);
            }
        }
    }

    /// Returns the histogram named `key`, if any sample was recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.hist_index
            .get(key)
            .map(|&i| &self.hist_values[i as usize])
            .filter(|h| h.count() > 0)
    }

    /// Iterates over all non-zero counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        let mut order: Vec<u32> = (0..self.counter_names.len() as u32)
            .filter(|&i| self.counter_values[i as usize] != 0)
            .collect();
        order.sort_by(|&a, &b| self.counter_names[a as usize].cmp(&self.counter_names[b as usize]));
        order.into_iter().map(move |i| {
            (
                &*self.counter_names[i as usize],
                self.counter_values[i as usize],
            )
        })
    }

    /// Iterates over all non-empty histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        let mut order: Vec<u32> = (0..self.hist_names.len() as u32)
            .filter(|&i| self.hist_values[i as usize].count() > 0)
            .collect();
        order.sort_by(|&a, &b| self.hist_names[a as usize].cmp(&self.hist_names[b as usize]));
        order
            .into_iter()
            .map(move |i| (&*self.hist_names[i as usize], &self.hist_values[i as usize]))
    }

    /// Sums all counters whose key starts with `prefix`.
    ///
    /// Used for tier roll-ups such as "all wide-area bytes"
    /// (`sum_prefix("net.bytes.")` minus the local tiers).
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counter_names
            .iter()
            .zip(&self.counter_values)
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Merges another registry into this one (counters add, histograms
    /// merge). Keys already interned here are bumped in place without
    /// re-allocating; only genuinely new keys are interned.
    pub fn merge(&mut self, other: &Metrics) {
        for (i, name) in other.counter_names.iter().enumerate() {
            let v = other.counter_values[i];
            if v != 0 {
                self.inc(name, v);
            }
        }
        for (i, name) in other.hist_names.iter().enumerate() {
            let h = &other.hist_values[i];
            if h.count() > 0 {
                let id = self.hist_id(name);
                self.hist_values[id.0 as usize].merge(h);
            }
        }
    }

    /// Renders a human-readable report of every metric, for examples and
    /// debugging. Sorted by name, so the output is identical for any
    /// two registries holding the same values regardless of the order
    /// keys were interned or bumped in.
    pub fn report(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let mut counters = self.counters().peekable();
        if counters.peek().is_some() {
            let _ = writeln!(out, "counters:");
            for (k, v) in counters {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        let mut histograms = self.histograms().peekable();
        if histograms.peek().is_some() {
            let _ = writeln!(out, "histograms:");
            for (k, h) in histograms {
                let _ = writeln!(out, "  {k:<40} {h}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_small_values_exact() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_value_within_relative_error() {
        for &v in &[100u64, 1_000, 10_000, 123_456, 9_999_999, u64::MAX / 2] {
            let rep = bucket_value(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.05, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut prev = 0;
        for v in (0..100_000u64).step_by(37) {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index decreased at v={v}");
            prev = idx;
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 50);
        assert!((h.mean() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.05, "q={q} got={got} expect={expect}");
        }
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_single_value() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.quantile(0.0), h.quantile(1.0));
        let v = h.quantile(0.5);
        assert!((750..=800).contains(&v), "got {v}");
    }

    #[test]
    fn histogram_record_n() {
        let mut h = Histogram::new();
        h.record_n(5, 100);
        h.record_n(9, 0);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 500);
        assert_eq!(h.max(), 5);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1_000_000);
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn metrics_counters_and_histograms() {
        let mut m = Metrics::new();
        m.inc("a.x", 2);
        m.inc("a.x", 3);
        m.inc("a.y", 1);
        m.inc("b", 10);
        m.record("lat", 5);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.sum_prefix("a."), 6);
        assert_eq!(m.sum_prefix("zzz"), 0);
        assert!(m.histogram("lat").is_some());
        assert!(m.histogram("nope").is_none());
    }

    #[test]
    fn metrics_merge() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.inc("c", 1);
        b.inc("c", 2);
        b.inc("d", 5);
        b.record("h", 9);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn report_contains_keys() {
        let mut m = Metrics::new();
        m.inc("net.bytes", 42);
        m.record("lat_us", 1000);
        let r = m.report();
        assert!(r.contains("net.bytes"));
        assert!(r.contains("lat_us"));
    }

    #[test]
    fn ids_bump_the_same_counters_as_strings() {
        let mut m = Metrics::new();
        let id = m.metric_id("net.bytes.region");
        m.inc_id(id, 40);
        m.inc("net.bytes.region", 2);
        assert_eq!(m.counter("net.bytes.region"), 42);
        // Re-interning returns the same handle.
        assert_eq!(m.metric_id("net.bytes.region"), id);

        let hid = m.hist_id("lat");
        m.record_id(hid, 100);
        m.record("lat", 200);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert_eq!(m.hist_id("lat"), hid);
    }

    #[test]
    fn interned_but_untouched_metrics_stay_invisible() {
        let mut m = Metrics::new();
        m.metric_id("quiet.counter");
        m.hist_id("quiet.hist");
        m.inc("loud", 1);
        assert_eq!(m.counters().count(), 1);
        assert_eq!(m.histograms().count(), 0);
        assert!(m.histogram("quiet.hist").is_none());
        let r = m.report();
        assert!(!r.contains("quiet"), "untouched metrics leaked: {r}");
    }

    #[test]
    fn report_is_independent_of_interning_order() {
        let mut a = Metrics::new();
        a.inc("z", 1);
        a.inc("a", 2);
        a.record("h2", 5);
        a.record("h1", 5);
        let mut b = Metrics::new();
        b.record("h1", 5);
        b.inc("a", 2);
        b.record("h2", 5);
        b.inc("z", 1);
        assert_eq!(a.report(), b.report());
        let names: Vec<&str> = a.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "z"]);
    }
}
